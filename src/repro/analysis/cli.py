"""``python -m repro.analysis`` — run the invariant checkers.

Usage::

    python -m repro.analysis [paths ...]
        [--baseline FILE] [--fail-stale] [--json FILE]
        [--rules REP101,REP401] [--list-rules] [--write-baseline FILE]

Exit codes: 0 clean (baselined findings and, without ``--fail-stale``,
stale entries don't fail the run), 1 active findings (or stale entries
under ``--fail-stale``), 2 bad invocation / unreadable baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineError, BaselineResult
from repro.analysis.core import Finding, Project, all_checkers, run_analysis


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checkers for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to analyze (default: src)",
    )
    parser.add_argument("--baseline", help="JSON suppression file (entries need rationales)")
    parser.add_argument(
        "--fail-stale",
        action="store_true",
        help="exit 1 when the baseline has stale entries (CI mode)",
    )
    parser.add_argument("--json", dest="json_out", help="write a machine-readable report here")
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    parser.add_argument(
        "--write-baseline",
        help="write a baseline accepting every current finding, then exit 0",
    )
    return parser


def _select_checkers(rules: str | None):
    suite = all_checkers()
    if not rules:
        return suite
    wanted = {rule.strip().upper() for rule in rules.split(",") if rule.strip()}
    selected = [c for c in suite if wanted & set(c.rule_ids)]
    known = {rule for checker in suite for rule in checker.rule_ids}
    unknown = wanted - known
    if unknown:
        raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return selected


def _report(
    findings: list[Finding],
    result: BaselineResult,
    parse_errors: list[str],
) -> dict:
    counts: dict[str, int] = {}
    for finding in result.active:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": 1,
        "counts": counts,
        "findings": [f.to_dict() for f in result.active],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "stale_baseline": [e.to_dict() for e in result.stale],
        "parse_errors": parse_errors,
        "total": len(findings),
    }


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            ids = ", ".join(checker.rule_ids)
            print(f"{ids}: {checker.invariant}")
        return 0

    try:
        checkers = _select_checkers(args.rules)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    project = Project.from_paths(args.paths)
    if not project.modules:
        print(f"no python files under: {', '.join(args.paths)}", file=sys.stderr)
        return 2
    findings = run_analysis(project, checkers)

    if args.write_baseline:
        document = Baseline.render(findings)
        Path(args.write_baseline).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {len(document['entries'])} baseline entr"
            f"{'y' if len(document['entries']) == 1 else 'ies'} to "
            f"{args.write_baseline} — fill in each rationale"
        )
        return 0

    baseline = Baseline.empty()
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    result = baseline.apply(findings)

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(_report(findings, result, project.errors), indent=2) + "\n",
            encoding="utf-8",
        )

    for error in project.errors:
        print(f"parse error: {error}", file=sys.stderr)
    for finding in result.active:
        print(finding.render())
    for entry in result.stale:
        print(
            f"stale baseline entry: {entry.rule} {entry.path} [{entry.symbol}] "
            f"— no such finding anymore; delete it",
            file=sys.stderr,
        )

    counts: dict[str, int] = {}
    for finding in result.active:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items())) or "none"
    print(
        f"analyzed {len(project.modules)} file(s): "
        f"{len(result.active)} finding(s) ({summary}), "
        f"{len(result.suppressed)} baselined, {len(result.stale)} stale "
        f"baseline entr{'y' if len(result.stale) == 1 else 'ies'}"
    )
    if result.active:
        return 1
    if result.stale and args.fail_stale:
        return 1
    return 0
