"""AST-based invariant checkers for this repository.

PRs 4-5 made the relay a concurrent, socket-served system whose
correctness rests on invariants that no general-purpose linter knows
about: shared relay state mutates only under its lock, no lock is held
across ``call_next`` or blocking I/O, every wire kind is classified and
dispatched, transport failures stay *typed* so failover engages, and
capability flags fail closed. This package machine-checks them — run
``python -m repro.analysis`` before sending a PR; CI runs it on every
push (see the ``analysis`` job) and ``tests/analysis/`` keeps the
checkers themselves honest with one-passing/one-failing fixtures per
rule.

Rules:

- **REP101** unguarded write to registered shared state
- **REP102** sync lock held across a blocking operation / ``await``
- **REP201** blocking call inside an ``async def`` frame
- **REP301** wire-kind registry: unique, exported, classified, dispatched
- **REP401** broad ``except`` without typed re-raise / error answer /
  rationale tag in the transport/relay/driver layers
- **REP501** capability flag granted without the full verb set

Intentional violations live in ``analysis-baseline.json`` at the repo
root, each with a mandatory rationale; the checkers/registries are in
:mod:`repro.analysis.checkers` and :mod:`repro.analysis.invariants`.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError, BaselineResult
from repro.analysis.core import (
    Checker,
    Finding,
    ModuleSource,
    Project,
    all_checkers,
    register,
    run_analysis,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "BaselineResult",
    "Checker",
    "Finding",
    "ModuleSource",
    "Project",
    "all_checkers",
    "register",
    "run_analysis",
]
