"""The checker suite — importing this package registers every checker."""

from repro.analysis.checkers import (  # noqa: F401 - registration imports
    async_safety,
    capabilities,
    error_taxonomy,
    locks,
    wire_kinds,
)
