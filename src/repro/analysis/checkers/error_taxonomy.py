"""REP401 — typed-error taxonomy in the transport/relay/driver layers.

The failover loop (:meth:`RelayService._exchange`) and the capability
gate both route on *exception type*: ``RelayUnavailableError`` engages
failover, ``UnsupportedCapabilityError`` fails closed, everything else
is a bug that must surface. A broad ``except Exception`` that swallows
or re-raises untyped silently converts "the relay misbehaved" into "the
request quietly succeeded/failed", which is exactly the misbehaviour the
paper's trust argument says must stay *detectable*.

Inside the layers listed in
:data:`repro.analysis.invariants.ERROR_TAXONOMY_LAYERS`, a handler for
``Exception`` / ``BaseException`` / a bare ``except:`` is allowed only
when it does one of:

- **re-raise preserving type** — a bare ``raise`` statement;
- **re-raise typed** — ``raise SomethingError(...) [from exc]`` (the
  conventional ``*Error`` suffix marks the repo's typed taxonomy);
- **answer an error envelope** — ``return self._error_envelope(...)``
  (or another registered answer helper): the documented relay contract
  is that a remote peer cannot catch our exceptions, so protocol
  failures are answered, not raised;
- **carry a tagged rationale** — ``# noqa: BLE001 <why>`` on the
  ``except`` line. The tag doubles as ruff's blind-except suppression,
  and the rationale is mandatory: a bare tag is itself a finding.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleSource,
    Project,
    dotted_name,
    iter_functions,
    last_segment,
    register,
    walk_frame,
)
from repro.analysis.invariants import ERROR_ANSWER_HELPERS, ERROR_TAXONOMY_LAYERS

_NOQA_RE = re.compile(r"#\s*noqa:\s*(?P<codes>[A-Z0-9, ]*BLE001[A-Z0-9, ]*)(?P<rest>.*)$")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True  # bare `except:`
    names = []
    if isinstance(node, ast.Tuple):
        names = [dotted_name(el) or "" for el in node.elts]
    else:
        names = [dotted_name(node) or ""]
    return any(last_segment(n) in ("Exception", "BaseException") for n in names if n)


def _noqa_rationale(line_text: str) -> tuple[bool, bool]:
    """(has a BLE001 noqa tag, tag carries a non-empty rationale)."""
    match = _NOQA_RE.search(line_text)
    if match is None:
        return False, False
    rationale = match.group("rest").strip(" -:\t")
    return True, bool(rationale)


class _HandlerBodyScan(ast.NodeVisitor):
    """Looks for an allowed resolution inside one handler body."""

    def __init__(self) -> None:
        self.allowed = False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is None:
            self.allowed = True  # bare re-raise preserves the type
            return
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
        else:
            name = dotted_name(exc)
        if name is not None and last_segment(name).endswith("Error"):
            self.allowed = True

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Call):
            name = dotted_name(node.value.func)
            if name is not None and last_segment(name) in ERROR_ANSWER_HELPERS:
                self.allowed = True
        self.generic_visit(node)


@register
class ErrorTaxonomyChecker(Checker):
    rule_ids = ("REP401",)
    invariant = (
        "broad except blocks in transport/relay/driver layers re-raise "
        "typed, answer an error envelope, or carry a rationale tag"
    )

    def __init__(self, layers: tuple[str, ...] | None = None) -> None:
        self.layers = layers if layers is not None else ERROR_TAXONOMY_LAYERS

    def _in_scope(self, module: ModuleSource) -> bool:
        return any(layer in module.path for layer in self.layers)

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if not self._in_scope(module):
                continue
            for info in iter_functions(module):
                for node in walk_frame(info.node):
                    if not isinstance(node, ast.ExceptHandler):
                        continue
                    if not _is_broad(node):
                        continue
                    self._check_handler(module, info.qualname, node, findings)
        return findings

    def _check_handler(
        self,
        module: ModuleSource,
        qualname: str,
        handler: ast.ExceptHandler,
        findings: list[Finding],
    ) -> None:
        tagged, has_rationale = _noqa_rationale(module.line_text(handler.lineno))
        if tagged and has_rationale:
            return
        if tagged and not has_rationale:
            findings.append(
                Finding(
                    rule="REP401",
                    path=module.path,
                    line=handler.lineno,
                    col=handler.col_offset,
                    symbol=qualname,
                    message=(
                        "broad except carries a bare `# noqa: BLE001` tag — "
                        "the rationale is mandatory (`# noqa: BLE001 <why>`)"
                    ),
                )
            )
            return
        scan = _HandlerBodyScan()
        for stmt in handler.body:
            scan.visit(stmt)
        if scan.allowed:
            return
        findings.append(
            Finding(
                rule="REP401",
                path=module.path,
                line=handler.lineno,
                col=handler.col_offset,
                symbol=qualname,
                message=(
                    "broad except swallows or re-raises untyped — re-raise a "
                    "typed *Error, answer an error envelope, or tag "
                    "`# noqa: BLE001 <rationale>`"
                ),
            )
        )
