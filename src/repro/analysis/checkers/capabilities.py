"""REP501 — capability grants fail closed.

The relay routes transact/subscribe/asset envelopes only to drivers that
declare the capability (``supports_transactions`` / ``supports_events``
/ ``supports_assets``). The abstract :class:`NetworkDriver` defaults are
the fail-closed position: they decline. A class that flips a flag to a
truthy value without implementing the verb set behind it turns
"fail closed" into "declared but broken" — the relay would route real
traffic at a driver that answers every request with the base class's
decline, or worse, crashes mid-protocol (an HTLC counter-lock that can
never be claimed).

The check is MRO-aware across the analyzed project: a grant is satisfied
by a verb defined in the class itself or any project-local ancestor —
except the declining defaults registered in
:data:`repro.analysis.invariants.DECLINING_DEFAULTS`, which never count.
Grants are detected both as class attributes (``supports_x = True``) and
as instance flips anywhere in a method body (``self.supports_x = <expr>``
with any possibly-truthy expression — conditional grants like
``supports_events = reader is not None`` still require the verbs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    register,
)
from repro.analysis.invariants import CAPABILITY_VERBS, DECLINING_DEFAULTS


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    #: capability flag -> line of the granting assignment
    grants: dict[str, int] = field(default_factory=dict)


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_classes(project: Project) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(name=node.name, path=module.path, line=node.lineno)
            info.bases = [b for b in (_base_name(base) for base in node.bases) if b]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods.add(item.name)
                    for sub in ast.walk(item):
                        if isinstance(sub, ast.Assign):
                            for target in sub.targets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                    and target.attr in CAPABILITY_VERBS
                                    and not _is_false(sub.value)
                                ):
                                    info.grants.setdefault(target.attr, sub.lineno)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in CAPABILITY_VERBS
                            and not _is_false(item.value)
                        ):
                            info.grants.setdefault(target.id, item.lineno)
            # Last definition of a name wins, matching Python semantics.
            classes[info.name] = info
    return classes


def _is_false(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def _implements(
    classes: dict[str, _ClassInfo], class_name: str, verb: str
) -> bool:
    """Does ``class_name``'s project-local MRO define ``verb`` for real?"""
    seen: set[str] = set()
    stack = [class_name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        info = classes.get(current)
        if info is None:
            continue  # base outside the project (ABC, object, mixins)
        declining = DECLINING_DEFAULTS.get(current, frozenset())
        if verb in info.methods and verb not in declining:
            return True
        stack.extend(info.bases)
    return False


@register
class CapabilityFailClosedChecker(Checker):
    rule_ids = ("REP501",)
    invariant = (
        "a class granting supports_transactions/events/assets implements "
        "the full matching verb set (MRO-aware, declining defaults excluded)"
    )

    def run(self, project: Project) -> list[Finding]:
        classes = _collect_classes(project)
        findings: list[Finding] = []
        for info in classes.values():
            for flag, line in sorted(info.grants.items(), key=lambda kv: kv[1]):
                missing = [
                    verb
                    for verb in CAPABILITY_VERBS[flag]
                    if not _implements(classes, info.name, verb)
                ]
                if missing:
                    findings.append(
                        Finding(
                            rule="REP501",
                            path=info.path,
                            line=line,
                            col=0,
                            symbol=info.name,
                            message=(
                                f"{info.name} grants {flag} but does not "
                                f"implement: {', '.join(missing)} — the "
                                f"capability gate must fail closed, not "
                                f"route traffic at missing verbs"
                            ),
                        )
                    )
        return findings
