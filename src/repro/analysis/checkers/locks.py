"""REP101/REP102 — lock discipline over the repo's shared mutable state.

The relay is served from many threads at once (PR 5's ``RelayServer``
runs the sync serve path on a worker-thread executor), so the codebase
carries two hand-enforced concurrency invariants:

- **REP101**: every *write* to a registered shared-state attribute (the
  relay's subscription/sink tables, the idempotency record, interceptor
  maps, stats counters, connection pools, discovery registries — see
  :data:`repro.analysis.invariants.GUARDED_STATE`) happens lexically
  inside ``with self.<its lock>:``. Reads are deliberately not flagged —
  the repo's documented contract is "writes serialize, reads may be one
  update stale".

- **REP102**: no *sync* lock is held across a blocking operation —
  ``call_next`` (the rest of the interceptor chain, which may drive proof
  collection or a ledger commit), ``handle_request`` (a full relay
  round-trip), socket I/O, ``time.sleep``, ``Event.wait``, bare
  ``Lock.acquire`` — or an ``await`` expression. Holding a threading
  lock across any of these turns one slow peer into a relay-wide stall
  (and across ``await``, into a guaranteed cross-thread deadlock).

Both rules treat a nested ``def``/``lambda`` as a deferred-execution
boundary: code inside it does not run while the enclosing ``with`` holds
the lock, so it is scanned separately (as its own function) with no lock
held. ``async with`` items are asyncio primitives, not thread locks, and
are intentionally not tracked — awaiting while holding an asyncio lock
is normal single-threaded asyncio.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    Finding,
    FunctionInfo,
    ModuleSource,
    Project,
    dotted_name,
    iter_functions,
    last_segment,
    register,
)
from repro.analysis.invariants import (
    BLOCKING_ATTRS,
    BLOCKING_NAMES,
    GUARDED_STATE,
    LOCK_NAME_HINTS,
    MUTATOR_METHODS,
)


def is_lock_expr(node: ast.AST) -> str | None:
    """The dotted name of a sync-lock context expression, else ``None``."""
    name = dotted_name(node)
    if name is None:
        return None
    tail = last_segment(name).lower()
    if any(hint in tail for hint in LOCK_NAME_HINTS):
        return name
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def blocking_call_label(node: ast.Call) -> str | None:
    """A human label when ``node`` is a blocking call, else ``None``."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in BLOCKING_ATTRS:
        receiver = dotted_name(func.value)
        return f"{receiver}.{func.attr}" if receiver else func.attr
    return None


class _FunctionScanner(ast.NodeVisitor):
    """Scans ONE function body tracking which sync locks are held."""

    def __init__(
        self,
        module: ModuleSource,
        info: FunctionInfo,
        guarded: dict[str, str],
        findings: list[Finding],
        emit_writes: bool,
        emit_blocking: bool,
    ) -> None:
        self.module = module
        self.info = info
        self.guarded = guarded  # attr -> required lock attr (this class)
        self.findings = findings
        self.emit_writes = emit_writes
        self.emit_blocking = emit_blocking
        self.held: list[str] = []  # dotted lock names, innermost last

    # -- boundaries ---------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # deferred execution: scanned as its own function

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    # -- lock tracking ------------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            lock = is_lock_expr(item.context_expr)
            if lock is not None:
                acquired.append(lock)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self.held[-len(acquired):]

    # `async with` holds asyncio primitives, not thread locks: scan the
    # body without extending the held set.

    # -- blocking operations ------------------------------------------------------

    def visit_Await(self, node: ast.Await) -> None:
        if self.emit_blocking and self.held:
            self._flag_blocking(node, "await")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.emit_blocking and self.held:
            label = blocking_call_label(node)
            if label is not None:
                self._flag_blocking(node, label)
        if self.emit_writes:
            self._check_mutator_call(node)
        self.generic_visit(node)

    def _flag_blocking(self, node: ast.AST, label: str) -> None:
        self.findings.append(
            Finding(
                rule="REP102",
                path=self.module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=self.info.qualname,
                message=(
                    f"lock {self.held[-1]!r} held across blocking "
                    f"operation {label!r} — a slow callee stalls every "
                    f"thread contending for the lock"
                ),
            )
        )

    # -- shared-state writes ------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write_target(node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target)

    def _check_write_target(self, target: ast.AST) -> None:
        if not self.emit_writes:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_write_target(element)
            return
        if isinstance(target, ast.Starred):
            self._check_write_target(target.value)
            return
        attr: str | None = None
        node = target
        if isinstance(target, ast.Subscript):
            # self.X[k] = v  /  del self.X[k]
            attr = _self_attr(target.value)
        else:
            attr = _self_attr(target)
        if attr is not None and attr in self.guarded:
            self._require_lock(node, attr, f"write to self.{attr}")

    def _check_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS):
            return
        attr = _self_attr(func.value)
        if attr is not None and attr in self.guarded:
            self._require_lock(node, attr, f"self.{attr}.{func.attr}(...)")

    def _require_lock(self, node: ast.AST, attr: str, what: str) -> None:
        required = self.guarded[attr]
        if any(last_segment(lock) == required for lock in self.held):
            return
        self.findings.append(
            Finding(
                rule="REP101",
                path=self.module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=self.info.qualname,
                message=(
                    f"{what} outside `with self.{required}:` — "
                    f"{self.info.class_name}.{attr} is registered shared "
                    f"state mutated by concurrent serve threads"
                ),
            )
        )


@register
class LockDisciplineChecker(Checker):
    """Runs both lock rules in one pass over every function."""

    rule_ids = ("REP101", "REP102")
    invariant = (
        "registered shared state mutates only under its lock, and no sync "
        "lock is held across call_next, relay/socket I/O, sleeps, or await"
    )

    def __init__(self, guarded_state: dict[str, dict[str, str]] | None = None) -> None:
        self.guarded_state = guarded_state if guarded_state is not None else GUARDED_STATE

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for info in iter_functions(module):
                guarded = (
                    self.guarded_state.get(info.class_name, {})
                    if info.class_name
                    else {}
                )
                emit_writes = bool(guarded) and info.node.name != "__init__"
                scanner = _FunctionScanner(
                    module,
                    info,
                    guarded,
                    findings,
                    emit_writes=emit_writes,
                    emit_blocking=True,
                )
                for stmt in info.node.body:
                    scanner.visit(stmt)
        return findings
