"""REP201 — no blocking calls inside ``async def`` frames.

The asyncio relay server (:mod:`repro.net.server`) multiplexes every
connection on one event loop; a single blocking call inside a coroutine
(``time.sleep``, a sync socket operation, a bare ``Lock.acquire``, a
threading ``Event.wait``) stalls *every* connection, not just the
offender. The repo's pattern for running the synchronous serve path from
async code is ``loop.run_in_executor(...)`` — which this rule does not
flag, because the blocking name is passed as a reference, not called.

Async-native counterparts are fine when awaited: ``await
asyncio.sleep(...)`` and ``await <asyncio primitive>.acquire()`` are the
event-loop-friendly forms, so a blocking-named call that is the direct
operand of an ``await`` is never flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    Finding,
    FunctionInfo,
    ModuleSource,
    Project,
    iter_functions,
    register,
)
from repro.analysis.checkers.locks import blocking_call_label


class _AsyncScanner(ast.NodeVisitor):
    def __init__(self, module: ModuleSource, info: FunctionInfo, findings: list[Finding]) -> None:
        self.module = module
        self.info = info
        self.findings = findings

    # Nested defs are their own frames (scanned separately; a nested sync
    # def inside a coroutine typically targets run_in_executor).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Await(self, node: ast.Await) -> None:
        # The awaited call itself is async-native; scan only its
        # arguments (a blocking call nested in an argument still blocks).
        value = node.value
        if isinstance(value, ast.Call):
            for arg in value.args:
                self.visit(arg)
            for keyword in value.keywords:
                self.visit(keyword.value)
        else:
            self.visit(value)

    def visit_Call(self, node: ast.Call) -> None:
        label = blocking_call_label(node)
        if label is not None:
            self.findings.append(
                Finding(
                    rule="REP201",
                    path=self.module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=self.info.qualname,
                    message=(
                        f"blocking call {label!r} inside `async def "
                        f"{self.info.node.name}` stalls the event loop — "
                        f"await the async form or run_in_executor it"
                    ),
                )
            )
        self.generic_visit(node)


@register
class AsyncSafetyChecker(Checker):
    rule_ids = ("REP201",)
    invariant = "no blocking call runs on an event-loop thread"

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for info in iter_functions(module):
                if not info.is_async:
                    continue
                scanner = _AsyncScanner(module, info, findings)
                for stmt in info.node.body:
                    scanner.visit(stmt)
        return findings
