"""REP301 — the wire-kind registry is closed, classified, and routed.

Every ``MSG_KIND_*`` constant in :mod:`repro.proto.messages` is a wire
contract: caching layers route on it (side-effecting kinds must never be
replayed from cache), the idempotency record keys exactly-once execution
on it, and the relay dispatcher must have a branch for it. A kind that
is added but not classified silently becomes "cacheable and replayable";
one that is classified but not dispatched becomes a dead verb that
answers "unexpected message kind".

Enforced, all against the AST (the modules are never imported):

- every ``MSG_KIND_*`` has a unique integer value;
- every ``MSG_KIND_*`` (and each classification set) is exported from
  ``repro/proto/__init__.py``'s ``__all__``;
- the classification sets ``SIDE_EFFECTING_KINDS`` / ``READ_ONLY_KINDS``
  / ``REPLY_KINDS`` exist and **partition** the kinds: each kind is in
  exactly one;
- every *request* kind (side-effecting or read-only — replies are never
  dispatched) is reachable from a dispatch branch of
  ``RelayService._route``, either by direct ``kind == MSG_KIND_X``
  comparison or via membership in a dispatched set
  (``kind in ASSET_COMMAND_KINDS``).
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleSource,
    Project,
    dotted_name,
    last_segment,
    register,
)
from repro.analysis.invariants import (
    KIND_CLASS_SETS,
    MESSAGES_MODULE,
    PROTO_EXPORTS_MODULE,
    RELAY_MODULE,
)

KIND_PREFIX = "MSG_KIND_"


def _collect_kinds(module: ModuleSource) -> dict[str, tuple[int, object]]:
    """``{constant_name: (lineno, value)}`` for top-level MSG_KIND_*."""
    kinds: dict[str, tuple[int, object]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id.startswith(KIND_PREFIX):
                value = (
                    node.value.value if isinstance(node.value, ast.Constant) else None
                )
                kinds[target.id] = (node.lineno, value)
    return kinds


def _collect_name_sets(module: ModuleSource) -> dict[str, tuple[int, set[str]]]:
    """Top-level ``X = frozenset({NAME, ...})`` assignments, by name."""
    sets: dict[str, tuple[int, set[str]]] = {}
    for node in module.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set")
            and len(value.args) == 1
        ):
            continue
        literal = value.args[0]
        if not isinstance(literal, (ast.Set, ast.List, ast.Tuple)):
            continue
        members = set()
        for element in literal.elts:
            name = dotted_name(element)
            if name is not None:
                members.add(last_segment(name))
        sets[target.id] = (node.lineno, members)
    return sets


def _collect_exports(module: ModuleSource) -> set[str] | None:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    return {
                        el.value
                        for el in node.value.elts
                        if isinstance(el, ast.Constant) and isinstance(el.value, str)
                    }
    return None


def _find_function(tree: ast.AST, name: str) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _dispatched_names(
    route: ast.AST, name_sets: dict[str, tuple[int, set[str]]]
) -> set[str]:
    """Kind constants reachable from comparison branches in ``_route``."""
    dispatched: set[str] = set()
    for node in ast.walk(route):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, comparator in zip(node.ops, node.comparators):
            names = [dotted_name(x) for x in operands]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for name in names:
                    if name is not None and last_segment(name).startswith(KIND_PREFIX):
                        dispatched.add(last_segment(name))
            elif isinstance(op, (ast.In, ast.NotIn)):
                set_name = dotted_name(comparator)
                if set_name is not None:
                    entry = name_sets.get(last_segment(set_name))
                    if entry is not None:
                        dispatched.update(entry[1])
    return dispatched


@register
class WireKindRegistryChecker(Checker):
    rule_ids = ("REP301",)
    invariant = (
        "every MSG_KIND_* is unique, exported, classified in exactly one of "
        "SIDE_EFFECTING/READ_ONLY/REPLY, and request kinds are dispatched"
    )

    def run(self, project: Project) -> list[Finding]:
        messages = project.find(MESSAGES_MODULE)
        if messages is None:
            return []
        findings: list[Finding] = []
        kinds = _collect_kinds(messages)
        name_sets = _collect_name_sets(messages)

        def flag(line: int, message: str, path: str | None = None) -> None:
            findings.append(
                Finding(
                    rule="REP301",
                    path=path or messages.path,
                    line=line,
                    col=0,
                    message=message,
                )
            )

        # Unique values.
        by_value: dict[object, str] = {}
        for name, (line, value) in sorted(kinds.items(), key=lambda kv: kv[1][0]):
            if value in by_value:
                flag(line, f"{name} reuses wire value {value!r} of {by_value[value]}")
            else:
                by_value[value] = name

        # Classification sets exist…
        class_sets: dict[str, set[str]] = {}
        for set_name in KIND_CLASS_SETS:
            entry = name_sets.get(set_name)
            if entry is None:
                flag(
                    1,
                    f"classification set {set_name} is not defined in "
                    f"{MESSAGES_MODULE} — every MSG_KIND_* must be "
                    f"classified side-effecting, read-only, or reply",
                )
            else:
                class_sets[set_name] = entry[1]
                for member in sorted(entry[1] - set(kinds)):
                    flag(
                        entry[0],
                        f"{set_name} lists {member}, which is not a "
                        f"MSG_KIND_* constant of {MESSAGES_MODULE}",
                    )

        # …and partition the kinds.
        if len(class_sets) == len(KIND_CLASS_SETS):
            for name, (line, _value) in sorted(kinds.items(), key=lambda kv: kv[1][0]):
                holders = [s for s, members in class_sets.items() if name in members]
                if not holders:
                    flag(
                        line,
                        f"{name} is not classified — add it to exactly one "
                        f"of {', '.join(KIND_CLASS_SETS)}",
                    )
                elif len(holders) > 1:
                    flag(line, f"{name} is classified twice: {', '.join(holders)}")

        # Exported from repro.proto.
        exports_module = project.find(PROTO_EXPORTS_MODULE)
        if exports_module is not None:
            exports = _collect_exports(exports_module)
            if exports is None:
                flag(1, f"{PROTO_EXPORTS_MODULE} defines no __all__", exports_module.path)
            else:
                for name, (line, _value) in sorted(
                    kinds.items(), key=lambda kv: kv[1][0]
                ):
                    if name not in exports:
                        flag(line, f"{name} is not exported from {PROTO_EXPORTS_MODULE}")
                for set_name in KIND_CLASS_SETS:
                    if set_name in name_sets and set_name not in exports:
                        flag(
                            name_sets[set_name][0],
                            f"{set_name} is not exported from {PROTO_EXPORTS_MODULE}",
                        )

        # Request kinds are dispatched by the relay.
        relay = project.find(RELAY_MODULE)
        if relay is not None and len(class_sets) == len(KIND_CLASS_SETS):
            route = _find_function(relay.tree, "_route")
            if route is None:
                flag(1, f"{RELAY_MODULE} has no _route dispatcher", relay.path)
            else:
                dispatched = _dispatched_names(route, name_sets)
                request_kinds = (
                    class_sets["SIDE_EFFECTING_KINDS"] | class_sets["READ_ONLY_KINDS"]
                )
                for name in sorted(request_kinds & set(kinds)):
                    if name not in dispatched:
                        flag(
                            kinds[name][0],
                            f"request kind {name} has no dispatch branch in "
                            f"RelayService._route — envelopes of this kind "
                            f"would answer 'unexpected message kind'",
                        )
        return findings
