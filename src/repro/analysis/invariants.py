"""The repo-specific invariant registries the checkers consume.

This module is the single place where "what the rules protect" is
declared; the checkers themselves are generic AST machinery. When a
ROADMAP item adds new shared state (a StateStore, a relay-fleet health
table, a proof-verification cache), register it here and the existing
rules start guarding it — no new checker code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# REP101 — lock discipline: registered shared-state attributes and the
# lock that must be held to mutate them. Keyed by class name; values map
# attribute -> required lock attribute (both as seen on ``self``).
# ``__init__`` is exempt (construction precedes sharing).
# ---------------------------------------------------------------------------

GUARDED_STATE: dict[str, dict[str, str]] = {
    # repro/interop/relay.py
    "RelayService": {
        "_served_subscriptions": "_subscriptions_lock",
        "_event_sinks": "_subscriptions_lock",
        "_idempotency": "_idempotency_lock",
        "_idempotency_seq": "_idempotency_lock",
        "_in_flight": "_idempotency_lock",
        "_interceptors": "_chain_lock",
        "_chain": "_chain_lock",
    },
    "RelayStats": {
        name: "_lock"
        for name in (
            "requests_served",
            "requests_rejected",
            "requests_failed",
            "queries_sent",
            "failovers",
            "batches_served",
            "batches_sent",
            "transactions_sent",
            "transactions_served",
            "subscriptions_opened",
            "subscriptions_served",
            "events_published",
            "events_delivered",
            "events_dropped",
            "asset_commands_sent",
            "asset_commands_served",
            "duplicates_suppressed",
        )
    },
    "RateLimiter": {"_timestamps": "_lock", "rejected": "_lock"},
    # repro/api/middleware.py
    "MetricsInterceptor": {
        name: "_mutex"
        for name in (
            "requests_total",
            "errors_total",
            "bytes_in",
            "bytes_out",
            "seconds_total",
            "seconds_max",
            "by_kind",
            "kind_detail",
            "kind_samples",
        )
    },
    "ResponseCacheInterceptor": {
        "_entries": "_mutex",
        "hits": "_mutex",
        "misses": "_mutex",
        "bypassed": "_mutex",
    },
    # repro/net/server.py
    "RelayServerStats": {
        name: "_lock"
        for name in (
            "connections_accepted",
            "connections_closed",
            "frames_served",
            "frames_rejected",
            "in_flight",
            "in_flight_peak",
        )
    },
    # repro/net/client.py
    "TcpRelayEndpoint": {
        "_idle": "_lock",
        "_closed": "_lock",
        "requests_sent": "_lock",
        "connections_dialed": "_lock",
        "transport_failures": "_lock",
    },
    # repro/ops/metrics.py — serve threads report into instruments while
    # the probe thread scrapes them; the registry map itself is shared.
    "_Instrument": {"_series": "_lock"},
    "Counter": {"_series": "_lock"},
    "Gauge": {"_series": "_lock"},
    "Histogram": {"_series": "_lock"},
    "MetricsRegistry": {"_metrics": "_lock", "_collectors": "_lock"},
    # repro/ops/health.py
    "HealthProbe": {"_checks": "_lock"},
    # repro/ops/logging.py
    "JsonLogCapture": {"records": "_records_lock"},
    # repro/store/memory.py
    "MemoryStore": {
        "_data": "_lock",
        "batches_applied": "_lock",
        "ops_applied": "_lock",
    },
    # repro/store/sqlite.py — the WAL handle, sqlite connection, image
    # and pending-ops cache are all shared by concurrent serve threads.
    "SqliteStore": {
        "_data": "_lock",
        "_pending": "_lock",
        "_wal": "_lock",
        "_conn": "_lock",
        "batches_applied": "_lock",
        "checkpoints": "_lock",
    },
    # repro/store/wal.py
    "WriteAheadLog": {
        "_file": "_lock",
        "appends": "_lock",
        "bytes_appended": "_lock",
        "truncations": "_lock",
    },
    # repro/interop/discovery.py
    "InMemoryRegistry": {"_relays": "_lock"},
    "FileRegistry": {"addresses_skipped": "_lock"},
    # repro/net/transport.py
    "LocalTransport": {"_endpoints": "_lock"},
    "AddressResolver": {"_transports": "_lock"},
    # repro/net/balancer.py — pool membership, the hash ring, balancing
    # counters and per-member in-flight accounting are all touched by
    # concurrent request threads plus the readiness monitor thread.
    "EndpointPool": {
        "_members": "_lock",
        "_ring": "_lock",
        "p2c_decisions": "_lock",
        "sticky_decisions": "_lock",
        "evictions": "_lock",
        "restores": "_lock",
    },
    "BalancedDiscovery": {"_pools": "_lock", "_monitors": "_lock"},
    # repro/assets/metrics.py — one ExchangeMetrics is shared by every
    # concurrently-running exchange/cycle coordinator plus the ops scrape.
    "ExchangeMetrics": {
        "_started": "_lock",
        "_settled": "_lock",
        "_transitions": "_lock",
        "_refund_legs": "_lock",
        "_aborts": "_lock",
        "_latencies": "_lock",
    },
    # repro/pubchain/chain.py — the block tree, fork-choice tip, and the
    # replay caches are shared by submitters, miners, and driver reads.
    "SimulatedPublicChain": {
        "_blocks": "_lock",
        "_tip": "_lock",
        "_block_nonce": "_lock",
        "_writesets": "_lock",
        "_tx_height": "_lock",
        "_state_cache": "_lock",
        "_orgs": "_lock",
        "_observers": "_lock",
        "_contracts": "_lock",
    },
}

#: Attribute-call names that mutate their receiver (``self.x.append(...)``
#: counts as a write to ``x``).
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

# ---------------------------------------------------------------------------
# REP102 / REP201 — blocking operations. A *sync* lock must never be held
# across any of these, and none of them may run inside an ``async def``
# frame (they stall the event loop / every other coroutine).
# ---------------------------------------------------------------------------

#: Callable *attribute* names treated as blocking wherever they appear.
BLOCKING_ATTRS = frozenset(
    {
        "sleep",  # time.sleep / clock.sleep
        "sendall",
        "recv",
        "recv_into",
        "accept",
        "connect",
        "create_connection",
        "handle_request",  # a full relay round-trip (possibly over TCP)
        "round_trip",
        "wait",  # threading.Event.wait
        "acquire",  # bare Lock.acquire (use `with lock:` instead)
    }
)

#: Plain names treated as blocking calls (continuation of the chain).
BLOCKING_NAMES = frozenset({"call_next"})

#: Receivers whose otherwise-blocking attributes are async-native and
#: therefore fine when awaited (``await asyncio.sleep`` et al.).
ASYNC_NATIVE_ROOTS = frozenset({"asyncio"})

#: A `with` context expression is treated as a sync lock when its dotted
#: name's last segment contains one of these substrings.
LOCK_NAME_HINTS = ("lock", "mutex")

# ---------------------------------------------------------------------------
# REP401 — typed-error taxonomy: layers where a broad `except Exception`
# must either re-raise typed, answer an error envelope, or carry a
# `# noqa: BLE001 <rationale>` tag.
# ---------------------------------------------------------------------------

ERROR_TAXONOMY_LAYERS = (
    "repro/interop/",
    "repro/net/",
    "repro/api/",
    "repro/assets/",
    "repro/store/",
    "repro/ops/",
    "repro/pubchain/",
)

#: Helper calls whose return value IS the error answer (an error envelope
#: or a non-OK protocol ack) — `return self._error_envelope(...)` inside
#: a broad handler is the relay's documented way to surface failure to a
#: remote peer that cannot catch our exceptions.
ERROR_ANSWER_HELPERS = frozenset(
    {
        "_error_envelope",
        "error_reply",
        "_event_ack",
        "_error",
        "_denied",
    }
)

# ---------------------------------------------------------------------------
# REP501 — capability fail-closed: a class granting `supports_X` must
# implement the full verb set of X somewhere in its (project-local) MRO.
# ---------------------------------------------------------------------------

CAPABILITY_VERBS: dict[str, tuple[str, ...]] = {
    "supports_transactions": ("execute_transaction",),
    "supports_events": ("open_event_tap", "close_event_tap"),
    "supports_assets": (
        "lock_asset",
        "claim_asset",
        "unlock_asset",
        "asset_status",
    ),
}

#: Verb definitions that DON'T count as implementations: the abstract
#: driver's defaults for these decline or no-op (that is the fail-closed
#: default), so a subclass granting the capability must override them.
#: The base's asset verbs are real implementations (they delegate to the
#: attached AssetLedgerPort), hence their absence here.
DECLINING_DEFAULTS: dict[str, frozenset[str]] = {
    "NetworkDriver": frozenset(
        {"execute_transaction", "open_event_tap", "close_event_tap"}
    ),
}

# ---------------------------------------------------------------------------
# REP301 — wire-kind registry: canonical module locations.
# ---------------------------------------------------------------------------

MESSAGES_MODULE = "repro/proto/messages.py"
PROTO_EXPORTS_MODULE = "repro/proto/__init__.py"
RELAY_MODULE = "repro/interop/relay.py"

#: The classification sets every MSG_KIND_* constant must fall into
#: (exactly one of them).
KIND_CLASS_SETS = ("SIDE_EFFECTING_KINDS", "READ_ONLY_KINDS", "REPLY_KINDS")

#: Set names whose membership in a relay dispatch test (``kind in X``)
#: marks every member as dispatched.
DISPATCH_SET_NAMES = ("ASSET_COMMAND_KINDS", "SIDE_EFFECTING_KINDS", "READ_ONLY_KINDS")
