"""The unified application-facing gateway façade.

:class:`InteropGateway` is the one entry point a production application
needs: fluent single queries, pipelined/batched query sets, and access to
the relay's middleware chain — all over the same trusted-data-transfer
machinery the paper specifies (the gateway never weakens the protocol; it
only changes how requests are *composed*).

Example::

    gateway = InteropGateway(app_identity, relay, "swt",
                             ledger_gateway=network.gateway)

    # one-shot fluent query
    result = gateway.query(ADDR).with_args("PO-1").confidential().execute()

    # pipelined batch: one envelope round-trip per target network
    handles = [
        gateway.query(ADDR).with_args(ref).submit() for ref in refs
    ]
    documents = [handle.result() for handle in handles]

The legacy surface (:class:`repro.interop.InteropClient`) remains fully
supported; the gateway wraps a client and exposes it via :attr:`client`.
"""

from __future__ import annotations

from repro.api.batch import QueryHandle, QuerySet
from repro.api.builder import QueryBuilder
from repro.fabric.gateway import Gateway
from repro.fabric.identity import Identity
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.relay import RelayInterceptor, RelayService


class InteropGateway:
    """Façade over one identity's cross-network query capabilities."""

    def __init__(
        self,
        identity: Identity | None = None,
        relay: RelayService | None = None,
        network_id: str | None = None,
        ledger_gateway: Gateway | None = None,
        client: InteropClient | None = None,
    ) -> None:
        if client is None:
            if identity is None or relay is None or network_id is None:
                raise TypeError(
                    "InteropGateway needs either a ready InteropClient or "
                    "(identity, relay, network_id)"
                )
            client = InteropClient(identity, relay, network_id, gateway=ledger_gateway)
        self._client = client
        self._ambient: QuerySet | None = None

    @classmethod
    def from_client(cls, client: InteropClient) -> "InteropGateway":
        """Wrap an existing legacy client without rebuilding it."""
        return cls(client=client)

    # -- composition --------------------------------------------------------------

    @property
    def client(self) -> InteropClient:
        return self._client

    @property
    def relay(self) -> RelayService:
        return self._client.relay

    @property
    def identity(self) -> Identity:
        return self._client.identity

    @property
    def network_id(self) -> str:
        return self._client.network_id

    def use(self, *interceptors: RelayInterceptor) -> "InteropGateway":
        """Install middleware on the underlying relay; returns ``self``."""
        self.relay.use(*interceptors)
        return self

    # -- query surface ------------------------------------------------------------

    def query(self, address: str) -> QueryBuilder:
        """Fluent builder whose ``submit()`` joins the ambient query set.

        The ambient set flushes when any of its handles is awaited (or via
        :meth:`dispatch`); submissions after a flush start a fresh set.
        Builders created before any ``submit()`` all bind to the same set —
        only a flush retires it.
        """
        if self._ambient is None or self._ambient.flushed:
            self._ambient = QuerySet(self._client)
        return self._ambient.query(address)

    def batch(self) -> QuerySet:
        """An explicit, independently-flushed query set."""
        return QuerySet(self._client)

    def dispatch(self) -> list[QueryHandle]:
        """Flush the ambient query set now; returns the resolved handles."""
        if self._ambient is None:
            return []
        ambient, self._ambient = self._ambient, None
        return ambient.flush()

    # -- legacy passthroughs ------------------------------------------------------

    def remote_query(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
        verify_locally: bool = True,
    ) -> RemoteQueryResult:
        """Synchronous single query (same contract as the legacy client)."""
        return self._client.remote_query(
            address_text, args, policy, confidential, verify_locally
        )

    def remote_query_batch(
        self, requests: list[tuple[str, list[str]]], **options
    ) -> list[RemoteQueryResult]:
        """Batched convenience that raises on the first failed member."""
        return self._client.remote_query_batch(requests, **options)
