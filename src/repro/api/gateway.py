"""The unified application-facing gateway façade.

:class:`InteropGateway` is the one entry point a production application
needs: all three §2 interoperability primitives — fluent single and
pipelined/batched *queries*, proof-verified *transactions*, and verified
*event subscriptions* — plus access to the relay's middleware chain, all
over the same trusted-data-transfer machinery the paper specifies (the
gateway never weakens the protocol; it only changes how requests are
*composed*).

Example::

    gateway = InteropGateway(app_identity, relay, "swt",
                             ledger_gateway=network.gateway)

    # one-shot fluent query
    result = gateway.query(ADDR).with_args("PO-1").confidential().execute()

    # pipelined batch: one envelope round-trip per target network
    handles = [
        gateway.query(ADDR).with_args(ref).submit() for ref in refs
    ]
    documents = [handle.result() for handle in handles]

    # cross-network transaction, attested over the committed tx id/block
    outcome = gateway.transact(TX_ADDR).with_args("PO-2", "goods").execute()

    # notify-then-verify event stream over relay envelopes
    stream = gateway.subscribe("stl/trade-logistics/TradeLensCC",
                               "BillOfLadingIssued", verifier=verifier)

The primitives multiplex over a default :class:`GatewaySession` (one
identity, one relay chain, one shared policy cache); ``session()`` opens
independent sessions. The legacy surface
(:class:`repro.interop.InteropClient`) remains fully supported; the
gateway wraps a client and exposes it via :attr:`client`.
"""

from __future__ import annotations

from repro.api.batch import QueryHandle, QuerySet, TransactionSet
from repro.api.builder import (
    CycleBuilder,
    ExchangeBuilder,
    QueryBuilder,
    TransactionBuilder,
)
from repro.api.session import GatewaySession
from repro.api.streams import EventVerifier, VerifiedEventStream
from repro.fabric.gateway import Gateway
from repro.fabric.identity import Identity
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.relay import RelayInterceptor, RelayService


class InteropGateway:
    """Façade over one identity's cross-network capabilities."""

    def __init__(
        self,
        identity: Identity | None = None,
        relay: RelayService | None = None,
        network_id: str | None = None,
        ledger_gateway: Gateway | None = None,
        client: InteropClient | None = None,
    ) -> None:
        if client is None:
            if identity is None or relay is None or network_id is None:
                raise TypeError(
                    "InteropGateway needs either a ready InteropClient or "
                    "(identity, relay, network_id)"
                )
            client = InteropClient(identity, relay, network_id, gateway=ledger_gateway)
        self._client = client
        self._session = GatewaySession(client)

    @classmethod
    def from_client(cls, client: InteropClient) -> "InteropGateway":
        """Wrap an existing legacy client without rebuilding it."""
        return cls(client=client)

    # -- composition --------------------------------------------------------------

    @property
    def client(self) -> InteropClient:
        return self._client

    @property
    def relay(self) -> RelayService:
        return self._client.relay

    @property
    def identity(self) -> Identity:
        return self._client.identity

    @property
    def network_id(self) -> str:
        return self._client.network_id

    def use(self, *interceptors: RelayInterceptor) -> "InteropGateway":
        """Install middleware on the underlying relay; returns ``self``."""
        self.relay.use(*interceptors)
        return self

    # -- sessions -----------------------------------------------------------------

    @property
    def default_session(self) -> GatewaySession:
        """The session backing the gateway's one-liner surface."""
        return self._session

    def session(self) -> GatewaySession:
        """Open an independent multiplexed session (own ambient sets,
        policy cache, and subscription lifecycle) over the same client."""
        return GatewaySession(self._client)

    # -- primitive i: query -------------------------------------------------------

    def query(self, address: str) -> QueryBuilder:
        """Fluent builder whose ``submit()`` joins the ambient query set.

        The ambient set flushes when any of its handles is awaited (or via
        :meth:`dispatch`); submissions after a flush start a fresh set.
        Builders created before any ``submit()`` all bind to the same set —
        only a flush retires it.
        """
        return self._session.query(address)

    def batch(self) -> QuerySet:
        """An explicit, independently-flushed query set."""
        return self._session.batch()

    def dispatch(self) -> list[QueryHandle]:
        """Flush the ambient sets now; returns the resolved handles."""
        return self._session.dispatch()

    # -- primitive ii: transact ---------------------------------------------------

    def transact(self, address: str) -> TransactionBuilder:
        """Fluent builder for a cross-network transaction (§5 extension).

        Same pipeline model as :meth:`query`: ``submit()`` joins the
        ambient transaction set, ``execute()`` runs immediately. Results
        carry attestations over the committed transaction id and block.
        """
        return self._session.transact(address)

    def transaction_batch(self) -> TransactionSet:
        """An explicit, independently-flushed transaction set."""
        return self._session.transaction_batch()

    # -- primitive iii: subscribe -------------------------------------------------

    def subscribe(
        self,
        address: str,
        event_name: str,
        verifier: EventVerifier | None = None,
    ) -> VerifiedEventStream:
        """Subscribe to a remote chaincode event via relay envelopes.

        ``address`` is ``network/ledger/chaincode`` (three segments);
        ``verifier`` configures the notify-then-verify upgrade each
        notification goes through before reaching the stream's iterator.
        """
        return self._session.subscribe(address, event_name, verifier=verifier)

    # -- primitive iv: atomic asset exchange --------------------------------------

    def exchange(self) -> ExchangeBuilder:
        """Fluent builder for a two-party atomic asset exchange (HTLC).

        The gateway's identity initiates: it offers an asset on its own
        network, proof-verifies the counterparty's escrow, and reveals the
        exchange secret only after that verification. Lock/claim/unlock
        commands ride ``MSG_KIND_ASSET_*`` relay envelopes through the
        same discovery, failover, and interceptor path as queries.
        """
        return self._session.exchange()

    def exchange_cycle(self) -> CycleBuilder:
        """Fluent builder for an N-party cyclic atomic swap (A→B→…→A).

        The gateway's identity is party 0: it escrows the ring's first
        leg, holds the one secret every leg is armed with, and opens the
        backward claim walk after proof-verifying that the hashlock
        survived the whole ring. Timelocks decrement by a fixed hop gap
        so each claimant's upstream window outlives its own.
        """
        return self._session.exchange_cycle()

    # -- legacy passthroughs ------------------------------------------------------

    def remote_query(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
        verify_locally: bool = True,
    ) -> RemoteQueryResult:
        """Synchronous single query (same contract as the legacy client)."""
        return self._client.remote_query(
            address_text, args, policy, confidential, verify_locally
        )

    def remote_query_batch(
        self, requests: list[tuple[str, list[str]]], **options
    ) -> list[RemoteQueryResult]:
        """Batched convenience that raises on the first failed member."""
        return self._client.remote_query_batch(requests, **options)

    def remote_transact(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
    ):
        """Synchronous single transaction (same contract as the legacy
        :class:`~repro.interop.transactions.RemoteTransactionClient`)."""
        return self._session.transaction_client.remote_transact(
            address_text, args, policy=policy, confidential=confidential
        )
