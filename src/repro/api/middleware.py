"""Composable relay interceptors (the gateway-side middleware chain).

A relay's request path is a chain of interceptors terminated by the kind
dispatcher (:meth:`RelayService._dispatch`). Each interceptor is a callable
``(ctx, call_next) -> bytes`` installed with :meth:`RelayService.use`; the
first installed runs outermost. The chain machinery and the
:class:`RateLimitInterceptor` (the paper's §5 DoS shedding, refactored out
of the relay core) live in :mod:`repro.interop.relay` and are re-exported
here; this module adds the operational interceptors a production gateway
needs: metrics, request logging, and response caching.

Example::

    relay = RelayService("stl", registry)
    metrics = MetricsInterceptor()
    relay.use(
        RateLimitInterceptor(RateLimiter(100, 1.0)),
        metrics,
        RequestLoggingInterceptor(),
        ResponseCacheInterceptor(ttl_seconds=0.5),
    )
"""

from __future__ import annotations

import logging
from collections import OrderedDict, deque

from repro.crypto.hashing import sha256
from repro.interop.relay import (  # noqa: F401 - re-exported chain primitives
    RateLimiter,
    RateLimitInterceptor,
    RelayContext,
    RelayHandler,
    RelayInterceptor,
)
from repro.proto.messages import (
    MSG_KIND_ASSET_ACK,
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_STATUS,
    MSG_KIND_ASSET_UNLOCK,
    MSG_KIND_BATCH_REQUEST,
    MSG_KIND_BATCH_RESPONSE,
    MSG_KIND_ERROR,
    MSG_KIND_EVENT_ACK,
    MSG_KIND_EVENT_PUBLISH,
    MSG_KIND_EVENT_SUBSCRIBE,
    MSG_KIND_EVENT_UNSUBSCRIBE,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    SIDE_EFFECTING_HEADER,
    SIDE_EFFECTING_KINDS,
    STATUS_OK,
    AssetAckMsg,
    RelayEnvelope,
)
from repro.utils.clock import Clock, SystemClock

logger = logging.getLogger("repro.relay")

#: Human-readable envelope-kind labels for metrics/log rendering.
KIND_NAMES = {
    0: "undecodable",
    MSG_KIND_QUERY_REQUEST: "query",
    MSG_KIND_QUERY_RESPONSE: "query_response",
    MSG_KIND_ERROR: "error",
    MSG_KIND_BATCH_REQUEST: "batch",
    MSG_KIND_BATCH_RESPONSE: "batch_response",
    MSG_KIND_TRANSACT_REQUEST: "transact",
    MSG_KIND_TRANSACT_RESPONSE: "transact_response",
    MSG_KIND_EVENT_SUBSCRIBE: "event_subscribe",
    MSG_KIND_EVENT_PUBLISH: "event_publish",
    MSG_KIND_EVENT_UNSUBSCRIBE: "event_unsubscribe",
    MSG_KIND_EVENT_ACK: "event_ack",
    MSG_KIND_ASSET_LOCK: "asset_lock",
    MSG_KIND_ASSET_CLAIM: "asset_claim",
    MSG_KIND_ASSET_UNLOCK: "asset_unlock",
    MSG_KIND_ASSET_STATUS: "asset_status",
    MSG_KIND_ASSET_ACK: "asset_ack",
}


def kind_name(kind: int) -> str:
    return KIND_NAMES.get(kind, f"kind-{kind}")


class Interceptor:
    """Optional base class: subclass and override :meth:`handle`.

    Plain callables work just as well — this base only adds the
    ``__call__``/``handle`` indirection for subclasses that want instance
    state (counters, caches).
    """

    def __call__(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        return self.handle(ctx, call_next)

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        return call_next(ctx)


class SerializingInterceptor(Interceptor):
    """Serializes the rest of the chain behind one lock.

    The in-process ledger substrates are not thread-safe; installing this
    interceptor outermost makes a relay safe to share across threads
    (concurrent exchange legs, batch fan-outs) by making each served
    request atomic per relay, while traffic to *different* networks'
    relays still overlaps.
    """

    def __init__(self) -> None:
        import threading

        self._lock = threading.RLock()

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        with self._lock:
            return call_next(ctx)


_REPLY_VERDICT_KEY = "_repro.reply_is_error"


def _reply_is_error(ctx: RelayContext, reply: bytes) -> bool:
    """Whether ``reply`` reports a failure, decoded once per request.

    Error envelopes always do; asset acks carry their verdict *inside*
    the ack (an on-ledger refusal is answered with a non-OK
    ``MSG_KIND_ASSET_ACK``, not an error envelope, so the caller can tell
    governance/contract refusals from transport failures) and are decoded
    one level deeper. Stacked interceptors inspect the same reply object
    on the way out; the verdict is memoized on the context so the
    decoding happens at most once per chain traversal.
    """
    cached = ctx.metadata.get(_REPLY_VERDICT_KEY)
    if isinstance(cached, tuple) and cached[0] is reply:
        return cached[1]
    try:
        envelope = RelayEnvelope.decode(reply)
        if envelope.kind == MSG_KIND_ASSET_ACK:
            verdict = AssetAckMsg.decode(envelope.payload).status != STATUS_OK
        else:
            verdict = envelope.kind == MSG_KIND_ERROR
    except Exception:  # noqa: BLE001 - an unparseable reply counts as an error outcome, which is the verdict itself
        verdict = True
    ctx.metadata[_REPLY_VERDICT_KEY] = (reply, verdict)
    return verdict


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list.

    The single definition of "pNN" for the repo: the metrics snapshot and
    the benchmarks both use it, so reported percentiles never diverge.
    """
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, int(fraction * len(sorted_samples))))
    return sorted_samples[rank]


class MetricsInterceptor(Interceptor):
    """Per-kind request counters, byte counts, and latency distribution.

    Latency is kept as a bounded per-kind sample reservoir (the most
    recent ``sample_window`` requests of each kind), from which
    :meth:`snapshot` derives p50/p95/max — the operator-facing view of
    whether queries, batches, transactions, event, or asset traffic is
    slow, and how heavy its tail is.
    """

    def __init__(self, clock: Clock | None = None, sample_window: int = 2048) -> None:
        import threading

        if sample_window < 1:
            raise ValueError("sample_window must be >= 1")
        self._clock = clock or SystemClock()
        self._sample_window = sample_window
        #: Guards counter/sample updates against concurrent handle() calls
        #: and against snapshot() readers on other threads.
        self._mutex = threading.Lock()
        self.requests_total = 0
        self.errors_total = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.seconds_total = 0.0
        self.seconds_max = 0.0
        self.by_kind: dict[int, int] = {}
        #: Per-kind detail: kind -> {requests, errors, seconds_total,
        #: seconds_max} — so an operator can tell at a glance whether it
        #: is queries, batches, transactions, or event traffic that is
        #: slow or failing.
        self.kind_detail: dict[int, dict[str, float]] = {}
        #: Per-kind latency samples (seconds), newest-last, bounded.
        self.kind_samples: dict[int, deque[float]] = {}
        #: Registry instruments, wired by :meth:`bind_registry`
        #: (:func:`repro.ops.exporters.register_relay` calls it). The
        #: instruments carry their own locks; unbound, nothing changes.
        self._m_requests = None
        self._m_errors = None
        self._m_latency = None

    def bind_registry(self, registry) -> None:
        """Mirror this interceptor's observations into a
        :class:`~repro.ops.MetricsRegistry` (Prometheus export)."""
        self._m_requests = registry.counter(
            "repro_relay_requests_total",
            "Requests served through the relay interceptor chain.",
            ("relay_id", "kind"),
        )
        self._m_errors = registry.counter(
            "repro_relay_errors_total",
            "Requests answered with an error outcome.",
            ("relay_id", "kind"),
        )
        self._m_latency = registry.histogram(
            "repro_relay_request_seconds",
            "Serve latency through the interceptor chain, per message kind.",
            ("relay_id", "kind"),
        )

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        started = self._clock.now()
        reply = call_next(ctx)
        elapsed = self._clock.now() - started
        is_error = _reply_is_error(ctx, reply)
        if self._m_requests is not None:
            labels = {"relay_id": ctx.relay.relay_id, "kind": kind_name(ctx.kind)}
            self._m_requests.inc(**labels)
            self._m_latency.observe(elapsed, **labels)
            if is_error:
                self._m_errors.inc(**labels)
        with self._mutex:
            self.requests_total += 1
            self.bytes_in += len(ctx.raw)
            self.bytes_out += len(reply)
            self.seconds_total += elapsed
            self.seconds_max = max(self.seconds_max, elapsed)
            self.by_kind[ctx.kind] = self.by_kind.get(ctx.kind, 0) + 1
            detail = self.kind_detail.setdefault(
                ctx.kind,
                {"requests": 0, "errors": 0, "seconds_total": 0.0, "seconds_max": 0.0},
            )
            detail["requests"] += 1
            detail["seconds_total"] += elapsed
            detail["seconds_max"] = max(detail["seconds_max"], elapsed)
            self.kind_samples.setdefault(
                ctx.kind, deque(maxlen=self._sample_window)
            ).append(elapsed)
            if is_error:
                self.errors_total += 1
                detail["errors"] += 1
        return reply

    def snapshot(self) -> dict:
        """A plain-dict rendering suitable for export/printing.

        ``by_kind`` keeps the historical ``{kind: count}`` shape;
        ``kinds`` adds the per-message-kind breakdown keyed by readable
        name, each with request/error counts and latency stats including
        p50/p95 over the kind's bounded sample window.
        """
        with self._mutex:
            totals = {
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "seconds_total": self.seconds_total,
                "seconds_max": self.seconds_max,
                "by_kind": dict(self.by_kind),
            }
            details = {kind: dict(detail) for kind, detail in self.kind_detail.items()}
            samples_by_kind = {
                kind: list(samples) for kind, samples in self.kind_samples.items()
            }
        kinds = {}
        for kind, detail in sorted(details.items()):
            requests = int(detail["requests"])
            samples = sorted(samples_by_kind.get(kind, ()))
            kinds[kind_name(kind)] = {
                "requests": requests,
                "errors": int(detail["errors"]),
                "seconds_total": detail["seconds_total"],
                "seconds_mean": (
                    detail["seconds_total"] / requests if requests else 0.0
                ),
                "seconds_p50": percentile(samples, 0.50),
                "seconds_p95": percentile(samples, 0.95),
                "seconds_max": detail["seconds_max"],
            }
        totals["seconds_mean"] = (
            totals["seconds_total"] / totals["requests_total"]
            if totals["requests_total"]
            else 0.0
        )
        totals["kinds"] = kinds
        return totals


class RequestLoggingInterceptor(Interceptor):
    """Per-request records as a thin adapter over the ops logging plane.

    Each served request emits one structured record on the
    ``repro.relay`` logger — the ops plane's JSON formatter renders it
    (and its :class:`~repro.ops.logging.TraceContextFilter` stamps the
    active trace id, since the interceptor chain runs inside
    :meth:`RelayService.handle_request`'s trace activation). The bounded
    in-memory ``records`` deque is kept for tests and quick inspection;
    it holds the same field set the log record carries.
    """

    def __init__(
        self,
        log: logging.Logger | None = None,
        max_records: int = 1024,
        clock: Clock | None = None,
    ) -> None:
        self._log = log or logger
        self._clock = clock or SystemClock()
        self.records: deque[dict] = deque(maxlen=max_records)

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        started = self._clock.now()
        reply = call_next(ctx)
        record = {
            "relay_id": ctx.relay.relay_id,
            "request_id": ctx.request_id,
            "kind": ctx.kind,
            "outcome": "error" if _reply_is_error(ctx, reply) else "ok",
            "seconds": self._clock.now() - started,
            "bytes_in": len(ctx.raw),
            "bytes_out": len(reply),
        }
        self.records.append(record)
        self._log.debug("request served", extra=dict(record, kind_label=kind_name(ctx.kind)))
        return reply


class ResponseCacheInterceptor(Interceptor):
    """Short-TTL cache of successful replies, keyed by the raw request.

    Because every client query carries a fresh nonce, identical raw bytes
    only occur on retries and failover replays — exactly the traffic a
    gateway wants to absorb without re-driving proof collection. Error
    envelopes are never cached.

    Side-effecting envelopes are never cached *or served from cache*:
    serving a stored reply to a replayed transaction would claim a commit
    that never re-happened, and a replayed (un)subscribe or event push
    must actually mutate subscription state. The check routes on the
    envelope alone — the kind (:data:`SIDE_EFFECTING_KINDS`) plus the
    :data:`SIDE_EFFECTING_HEADER` marker that the sending relay sets on
    batch envelopes carrying transaction members — so the cache never
    needs to decode payloads.

    Thread-safe: a concurrently-serving relay (:class:`repro.net.RelayServer`)
    runs the chain on many worker threads, so the bounded entry map and
    the hit/miss counters mutate under one lock. The lock is never held
    across ``call_next`` — concurrent misses of the same key may both
    execute (harmless for cacheable, side-effect-free envelopes; the
    relay's idempotency record owns exactly-once for everything else).
    """

    def __init__(
        self,
        ttl_seconds: float = 1.0,
        max_entries: int = 256,
        clock: Clock | None = None,
    ) -> None:
        import threading

        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.ttl_seconds = ttl_seconds
        self.max_entries = max_entries
        self._clock = clock or SystemClock()
        self._mutex = threading.Lock()
        self._entries: OrderedDict[bytes, tuple[float, bytes]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypassed = 0

    @staticmethod
    def _cacheable(ctx: RelayContext) -> bool:
        envelope = ctx.envelope
        if envelope is None:
            # Undecodable bytes take the normal path: they always answer
            # with an error envelope, which is never stored anyway.
            return True
        if envelope.kind in SIDE_EFFECTING_KINDS:
            return False
        if envelope.destination_network.endswith("#tx"):
            # Legacy wire shape: a QUERY_REQUEST addressed to the
            # '<net>#tx' pseudo-network executes a transaction.
            return False
        return envelope.headers.get(SIDE_EFFECTING_HEADER) != "true"

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        if not self._cacheable(ctx):
            with self._mutex:
                self.bypassed += 1
            return call_next(ctx)
        key = sha256(ctx.raw)
        now = self._clock.now()
        with self._mutex:
            entry = self._entries.get(key)
            if entry is not None:
                expires, reply = entry
                if now < expires:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return reply
                del self._entries[key]
            self.misses += 1
        reply = call_next(ctx)
        if not _reply_is_error(ctx, reply):
            with self._mutex:
                self._entries[key] = (now + self.ttl_seconds, reply)
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        return reply

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)
