"""Composable relay interceptors (the gateway-side middleware chain).

A relay's request path is a chain of interceptors terminated by the kind
dispatcher (:meth:`RelayService._dispatch`). Each interceptor is a callable
``(ctx, call_next) -> bytes`` installed with :meth:`RelayService.use`; the
first installed runs outermost. The chain machinery and the
:class:`RateLimitInterceptor` (the paper's §5 DoS shedding, refactored out
of the relay core) live in :mod:`repro.interop.relay` and are re-exported
here; this module adds the operational interceptors a production gateway
needs: metrics, request logging, and response caching.

Example::

    relay = RelayService("stl", registry)
    metrics = MetricsInterceptor()
    relay.use(
        RateLimitInterceptor(RateLimiter(100, 1.0)),
        metrics,
        RequestLoggingInterceptor(),
        ResponseCacheInterceptor(ttl_seconds=0.5),
    )
"""

from __future__ import annotations

import logging
from collections import OrderedDict, deque

from repro.crypto.hashing import sha256
from repro.interop.relay import (  # noqa: F401 - re-exported chain primitives
    RateLimiter,
    RateLimitInterceptor,
    RelayContext,
    RelayHandler,
    RelayInterceptor,
)
from repro.proto.messages import MSG_KIND_ERROR, RelayEnvelope
from repro.utils.clock import Clock, SystemClock

logger = logging.getLogger("repro.relay")


class Interceptor:
    """Optional base class: subclass and override :meth:`handle`.

    Plain callables work just as well — this base only adds the
    ``__call__``/``handle`` indirection for subclasses that want instance
    state (counters, caches).
    """

    def __call__(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        return self.handle(ctx, call_next)

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        return call_next(ctx)


_REPLY_VERDICT_KEY = "_repro.reply_is_error"


def _reply_is_error(ctx: RelayContext, reply: bytes) -> bool:
    """Whether ``reply`` is an error envelope, decoded once per request.

    Stacked interceptors inspect the same reply object on the way out;
    the verdict is memoized on the context so the envelope is decoded at
    most once per chain traversal.
    """
    cached = ctx.metadata.get(_REPLY_VERDICT_KEY)
    if isinstance(cached, tuple) and cached[0] is reply:
        return cached[1]
    try:
        verdict = RelayEnvelope.decode(reply).kind == MSG_KIND_ERROR
    except Exception:
        verdict = True
    ctx.metadata[_REPLY_VERDICT_KEY] = (reply, verdict)
    return verdict


class MetricsInterceptor(Interceptor):
    """Per-kind request counters, byte counts, and latency accumulation."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or SystemClock()
        self.requests_total = 0
        self.errors_total = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.seconds_total = 0.0
        self.seconds_max = 0.0
        self.by_kind: dict[int, int] = {}

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        started = self._clock.now()
        reply = call_next(ctx)
        elapsed = self._clock.now() - started
        self.requests_total += 1
        self.bytes_in += len(ctx.raw)
        self.bytes_out += len(reply)
        self.seconds_total += elapsed
        self.seconds_max = max(self.seconds_max, elapsed)
        self.by_kind[ctx.kind] = self.by_kind.get(ctx.kind, 0) + 1
        if _reply_is_error(ctx, reply):
            self.errors_total += 1
        return reply

    def snapshot(self) -> dict:
        """A plain-dict rendering suitable for export/printing."""
        mean = self.seconds_total / self.requests_total if self.requests_total else 0.0
        return {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "seconds_total": self.seconds_total,
            "seconds_mean": mean,
            "seconds_max": self.seconds_max,
            "by_kind": dict(self.by_kind),
        }


class RequestLoggingInterceptor(Interceptor):
    """Structured per-request records, kept in memory and mirrored to
    the ``repro.relay`` :mod:`logging` logger."""

    def __init__(
        self,
        log: logging.Logger | None = None,
        max_records: int = 1024,
        clock: Clock | None = None,
    ) -> None:
        self._log = log or logger
        self._clock = clock or SystemClock()
        self.records: deque[dict] = deque(maxlen=max_records)

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        started = self._clock.now()
        reply = call_next(ctx)
        record = {
            "relay_id": ctx.relay.relay_id,
            "request_id": ctx.request_id,
            "kind": ctx.kind,
            "outcome": "error" if _reply_is_error(ctx, reply) else "ok",
            "seconds": self._clock.now() - started,
            "bytes_in": len(ctx.raw),
            "bytes_out": len(reply),
        }
        self.records.append(record)
        self._log.debug(
            "%s served %s request %s: %s in %.6fs",
            record["relay_id"],
            record["kind"],
            record["request_id"] or "<unknown>",
            record["outcome"],
            record["seconds"],
        )
        return reply


class ResponseCacheInterceptor(Interceptor):
    """Short-TTL cache of successful replies, keyed by the raw request.

    Because every client query carries a fresh nonce, identical raw bytes
    only occur on retries and failover replays — exactly the traffic a
    gateway wants to absorb without re-driving proof collection. Error
    envelopes are never cached.
    """

    def __init__(
        self,
        ttl_seconds: float = 1.0,
        max_entries: int = 256,
        clock: Clock | None = None,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.ttl_seconds = ttl_seconds
        self.max_entries = max_entries
        self._clock = clock or SystemClock()
        self._entries: OrderedDict[bytes, tuple[float, bytes]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def handle(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        key = sha256(ctx.raw)
        now = self._clock.now()
        entry = self._entries.get(key)
        if entry is not None:
            expires, reply = entry
            if now < expires:
                self.hits += 1
                self._entries.move_to_end(key)
                return reply
            del self._entries[key]
        self.misses += 1
        reply = call_next(ctx)
        if not _reply_is_error(ctx, reply):
            self._entries[key] = (now + self.ttl_seconds, reply)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return reply

    def __len__(self) -> int:
        return len(self._entries)
