"""Pipelined execution: specs, handles, sets, and batch executors.

The pipeline model: applications *submit* any number of queries or
transactions (getting a future-style handle each), and the whole set is
*flushed* in one go — members sharing a target network travel in a single
``MSG_KIND_BATCH_REQUEST`` envelope, so N requests cost one discovery
lookup, one round-trip, and one failover loop per target instead of N.
Transaction members are marked with the wire-level ``invocation``
discriminator and served sequentially by the source's transaction driver
(commit ordering); query members fan concurrently.

Partial-failure semantics hold end to end: one failed member (bad address,
denied access, unsatisfiable policy, driver error, invalidated commit)
surfaces on *its* handle; the rest complete normally. Only a
transport-level failure (no relay reachable for a target) poisons that
target's members.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InteropError
from repro.ops.trace import ensure_trace
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.transactions import (
    RemoteTransactionClient,
    RemoteTransactionResult,
)
from repro.proto.address import parse_address

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.api.builder import QueryBuilder, TransactionBuilder

logger = logging.getLogger("repro.api")


@dataclass
class QuerySpec:
    """One fully-specified member of a batch (what a builder produces)."""

    address: str
    args: list[str] = field(default_factory=list)
    policy: str | None = None
    confidential: bool = True
    verify_locally: bool = True


class QueryHandle:
    """Future-style handle for one submitted query.

    ``result()`` flushes the owning :class:`QuerySet` on first use, then
    returns the :class:`RemoteQueryResult` or re-raises the member's
    failure. ``exception()`` inspects the failure without raising.
    """

    def __init__(self, queryset: "QuerySet", spec: QuerySpec) -> None:
        self._queryset = queryset
        self.spec = spec
        self._done = False
        self._result: RemoteQueryResult | None = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        return self._done

    def result(self) -> RemoteQueryResult:
        if not self._done:
            self._queryset.flush()
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self) -> BaseException | None:
        if not self._done:
            self._queryset.flush()
        return self._exception

    def _resolve(self, result: RemoteQueryResult | None, exception: BaseException | None) -> None:
        self._result = result
        self._exception = exception
        self._done = True


class QuerySet:
    """A set of queries flushed together as per-target batch envelopes.

    ``policy_cache`` (optional) shares resolved CMDAC verification
    policies across sets — a :class:`~repro.api.GatewaySession` passes its
    own so queries, transactions, and re-flushes all amortize the lookup.
    """

    def __init__(
        self, client: InteropClient, policy_cache: dict[str, str] | None = None
    ) -> None:
        self._client = client
        self._policy_cache = policy_cache
        self._pending: list[QueryHandle] = []
        self._flushed = False

    @property
    def flushed(self) -> bool:
        """True once :meth:`flush` has run (until a new member is added)."""
        return self._flushed

    def query(self, address: str) -> "QueryBuilder":
        """Start a fluent builder whose ``submit()`` lands in this set."""
        from repro.api.builder import QueryBuilder

        return QueryBuilder(self._client, address, queryset=self)

    def add(self, spec: QuerySpec) -> QueryHandle:
        """Enqueue one spec; returns its handle (resolved on flush)."""
        handle = QueryHandle(self, spec)
        self._pending.append(handle)
        self._flushed = False
        return handle

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[QueryHandle, ...]:
        return tuple(self._pending)

    def flush(self) -> list[QueryHandle]:
        """Execute every pending member in batched envelopes.

        Returns the flushed handles (all resolved); never raises for a
        member failure — inspect each handle.
        """
        handles, self._pending = self._pending, []
        self._flushed = True
        if handles:
            BatchExecutor(self._client, policy_cache=self._policy_cache).execute(
                handles
            )
        return handles

    def results(self) -> list[RemoteQueryResult]:
        """Flush and return every result, raising on the first failure."""
        return [handle.result() for handle in self.flush()]


class BatchExecutor:
    """Prepares, ships, and finalizes a set of handles.

    Amortizes per-target costs: the CMDAC verification-policy lookup is
    resolved once per target network (members with an explicit policy skip
    it), and the relay groups members per target into single batch
    envelopes (:meth:`RelayService.remote_query_batch`).
    """

    def __init__(
        self, client: InteropClient, policy_cache: dict[str, str] | None = None
    ) -> None:
        self._client = client
        self._policy_cache = policy_cache

    def execute(self, handles: list[QueryHandle]) -> None:
        # One trace for the whole flush: every member batch envelope (and
        # the serving relays' logs) correlates to this flush call.
        with ensure_trace():
            self._execute_traced(handles)

    def _execute_traced(self, handles: list[QueryHandle]) -> None:
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("flushing query set", extra={"members": len(handles)})
        policy_cache = self._policy_cache if self._policy_cache is not None else {}
        by_target: dict[str, list[tuple[QueryHandle, object]]] = {}
        for handle in handles:
            spec = handle.spec
            try:
                policy = spec.policy
                if policy is None:
                    target = parse_address(spec.address).network
                    if target not in policy_cache:
                        policy_cache[target] = self._client.lookup_policy(target)
                    policy = policy_cache[target]
                prepared = self._client.prepare_query(
                    spec.address,
                    list(spec.args),
                    policy=policy,
                    confidential=spec.confidential,
                    verify_locally=spec.verify_locally,
                )
            except Exception as exc:  # noqa: BLE001 - resolves onto the handle
                handle._resolve(None, exc)
                continue
            by_target.setdefault(prepared.target_network, []).append((handle, prepared))
        for target, members in by_target.items():
            try:
                responses = self._client.relay.remote_query_batch(
                    [prepared.query for _, prepared in members]
                )
            except InteropError as exc:
                for handle, _ in members:
                    handle._resolve(None, exc)
                continue
            for (handle, prepared), response in zip(members, responses):
                try:
                    handle._resolve(
                        self._client.finalize_response(prepared, response), None
                    )
                except Exception as exc:  # noqa: BLE001 - resolves onto the handle
                    handle._resolve(None, exc)


@dataclass
class TransactionSpec:
    """One fully-specified cross-network transaction (builder output)."""

    address: str
    args: list[str] = field(default_factory=list)
    policy: str | None = None
    confidential: bool = True


class TransactionHandle:
    """Future-style handle for one submitted cross-network transaction.

    Same contract as :class:`QueryHandle`: ``result()`` flushes the owning
    :class:`TransactionSet` on first use, then returns the
    :class:`RemoteTransactionResult` — whose attestations cover the
    committed tx id/block — or re-raises the member's failure.
    """

    def __init__(self, txset: "TransactionSet", spec: TransactionSpec) -> None:
        self._txset = txset
        self.spec = spec
        self._done = False
        self._result: RemoteTransactionResult | None = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        return self._done

    def result(self) -> RemoteTransactionResult:
        if not self._done:
            self._txset.flush()
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self) -> BaseException | None:
        if not self._done:
            self._txset.flush()
        return self._exception

    def _resolve(
        self,
        result: RemoteTransactionResult | None,
        exception: BaseException | None,
    ) -> None:
        self._result = result
        self._exception = exception
        self._done = True


class TransactionSet:
    """Transactions flushed together as per-target batch envelopes.

    Members sharing a target travel in one ``MSG_KIND_BATCH_REQUEST``
    envelope marked side-effecting; the source commits them sequentially
    in submission order and each member's attestations cover its own
    committed outcome.
    """

    def __init__(
        self,
        transaction_client: RemoteTransactionClient,
        policy_cache: dict[str, str] | None = None,
    ) -> None:
        self._tx_client = transaction_client
        self._policy_cache = policy_cache
        self._pending: list[TransactionHandle] = []
        self._flushed = False

    @property
    def flushed(self) -> bool:
        return self._flushed

    def transact(self, address: str) -> "TransactionBuilder":
        """Start a fluent builder whose ``submit()`` lands in this set."""
        from repro.api.builder import TransactionBuilder

        return TransactionBuilder(self._tx_client, address, txset=self)

    def add(self, spec: TransactionSpec) -> TransactionHandle:
        handle = TransactionHandle(self, spec)
        self._pending.append(handle)
        self._flushed = False
        return handle

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[TransactionHandle, ...]:
        return tuple(self._pending)

    def flush(self) -> list[TransactionHandle]:
        handles, self._pending = self._pending, []
        self._flushed = True
        if handles:
            TransactionExecutor(
                self._tx_client, policy_cache=self._policy_cache
            ).execute(handles)
        return handles

    def results(self) -> list[RemoteTransactionResult]:
        """Flush and return every result, raising on the first failure."""
        return [handle.result() for handle in self.flush()]


class TransactionExecutor:
    """Prepares, ships, and finalizes a set of transaction handles.

    Mirrors :class:`BatchExecutor`: CMDAC policy lookups resolve once per
    target, and members group into per-target batch envelopes through
    :meth:`RelayService.remote_query_batch` (whose members are marked with
    the transaction ``invocation`` so the serving relay routes them to its
    transaction driver and never serves them from cache).
    """

    def __init__(
        self,
        transaction_client: RemoteTransactionClient,
        policy_cache: dict[str, str] | None = None,
    ) -> None:
        self._tx_client = transaction_client
        self._policy_cache = policy_cache

    def execute(self, handles: list[TransactionHandle]) -> None:
        with ensure_trace():
            self._execute_traced(handles)

    def _execute_traced(self, handles: list[TransactionHandle]) -> None:
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("flushing transaction set", extra={"members": len(handles)})
        policy_cache = self._policy_cache if self._policy_cache is not None else {}
        client = self._tx_client.client
        by_target: dict[str, list[tuple[TransactionHandle, object]]] = {}
        for handle in handles:
            spec = handle.spec
            try:
                policy = spec.policy
                if policy is None:
                    target = parse_address(spec.address).network
                    if target not in policy_cache:
                        policy_cache[target] = client.lookup_policy(target)
                    policy = policy_cache[target]
                prepared = self._tx_client.prepare_transaction(
                    spec.address,
                    list(spec.args),
                    policy=policy,
                    confidential=spec.confidential,
                )
            except Exception as exc:  # noqa: BLE001 - resolves onto the handle
                handle._resolve(None, exc)
                continue
            by_target.setdefault(prepared.target_network, []).append((handle, prepared))
        for target, members in by_target.items():
            try:
                responses = self._tx_client.relay.remote_query_batch(
                    [prepared.query for _, prepared in members]
                )
            except InteropError as exc:
                for handle, _ in members:
                    handle._resolve(None, exc)
                continue
            for (handle, prepared), response in zip(members, responses):
                try:
                    handle._resolve(
                        self._tx_client.finalize_transaction(prepared, response),
                        None,
                    )
                except Exception as exc:  # noqa: BLE001 - resolves onto the handle
                    handle._resolve(None, exc)
