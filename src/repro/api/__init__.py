"""repro.api: the unified application-facing gateway layer.

This package is the production surface over the paper's relay machinery
(:mod:`repro.interop`): one façade object, fluent query building, batched
pipelined execution, and a composable relay middleware chain.

- :class:`InteropGateway` — the façade: ``gateway.query(addr)...`` for
  fluent singles, ``gateway.batch()`` / ``submit()`` handles for pipelined
  batches that share one envelope round-trip per target network.
- :class:`QueryBuilder` / :class:`QuerySpec` — fluent query description.
- :class:`QuerySet` / :class:`QueryHandle` — future-style pipelining with
  partial-failure semantics (one bad member never poisons the rest).
- :mod:`repro.api.middleware` — relay interceptors: rate limiting
  (refactored from the relay core), metrics, request logging, response
  caching. Install with ``relay.use(...)``.

The legacy entry points (``InteropClient.remote_query``, the
``RelayService`` constructor's ``rate_limiter=``) keep working unchanged;
they are thin shims over this layer's machinery.
"""

from repro.api.batch import BatchExecutor, QueryHandle, QuerySet, QuerySpec
from repro.api.builder import QueryBuilder
from repro.api.gateway import InteropGateway
from repro.api.middleware import (
    Interceptor,
    MetricsInterceptor,
    RateLimitInterceptor,
    RelayContext,
    RequestLoggingInterceptor,
    ResponseCacheInterceptor,
)

__all__ = [
    "InteropGateway",
    "QueryBuilder",
    "QuerySpec",
    "QuerySet",
    "QueryHandle",
    "BatchExecutor",
    "Interceptor",
    "RelayContext",
    "RateLimitInterceptor",
    "MetricsInterceptor",
    "RequestLoggingInterceptor",
    "ResponseCacheInterceptor",
]
