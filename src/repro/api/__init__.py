"""repro.api: the unified application-facing gateway layer.

This package is the production surface over the paper's relay machinery
(:mod:`repro.interop`): one façade object exposing all three §2
interoperability primitives — query, transact, and publish/subscribe —
with fluent building, batched pipelined execution, verified event
streaming, and a composable relay middleware chain.

- :class:`InteropGateway` — the façade: ``gateway.query(addr)...`` and
  ``gateway.transact(addr)...`` for fluent singles, ``batch()`` /
  ``transaction_batch()`` / ``submit()`` handles for pipelined batches
  that share one envelope round-trip per target network, and
  ``gateway.subscribe(...)`` for relay-envelope event delivery.
- :class:`GatewaySession` — multiplexes the three primitives over one
  relay connection state: per-session auth, shared interceptor chain,
  shared CMDAC policy cache, subscription lifecycle.
- :class:`AsyncGateway` — the async-native entry point for asyncio
  services fronting socket relays (:mod:`repro.net`): ``await
  aquery(...)`` / ``atransact(...)`` plus ``agather(...)`` batch
  flushes, layered over the same session machinery via the loop's
  executor (the async path can never drift from the sync protocol).
- :class:`QueryBuilder` / :class:`TransactionBuilder` and their specs —
  fluent request description.
- :class:`QuerySet` / :class:`QueryHandle`, :class:`TransactionSet` /
  :class:`TransactionHandle` — future-style pipelining with
  partial-failure semantics (one bad member never poisons the rest).
- :class:`VerifiedEventStream` / :class:`EventVerifier` — notify-then-
  verify: every unauthenticated notification is upgraded to trusted data
  via a proof-carrying query before it reaches the application iterator.
- :class:`ExchangeBuilder` — ``gateway.exchange()``: two-party atomic
  asset exchange via hash-time-locked contracts (:mod:`repro.assets`),
  with proof-verified lock confirmations riding the same query plane.
- :class:`CycleBuilder` — ``gateway.exchange_cycle()``: the N-party
  generalization — an A→B→…→A ring of escrows under one hashlock with
  per-hop decremented timelocks and journaled crash recovery.
- :mod:`repro.api.middleware` — relay interceptors: rate limiting
  (refactored from the relay core), metrics, request logging, response
  caching (which never serves side-effecting envelopes). Install with
  ``relay.use(...)``.

The legacy entry points (``InteropClient.remote_query``,
``RemoteTransactionClient.remote_transact``, ``EventBridge.subscribe``,
the ``RelayService`` constructor's ``rate_limiter=``) keep working
unchanged; they are thin shims over this layer's machinery.
"""

from repro.api.batch import (
    BatchExecutor,
    QueryHandle,
    QuerySet,
    QuerySpec,
    TransactionExecutor,
    TransactionHandle,
    TransactionSet,
    TransactionSpec,
)
from repro.api.async_gateway import AsyncGateway
from repro.api.builder import (
    CycleBuilder,
    ExchangeBuilder,
    QueryBuilder,
    TransactionBuilder,
)
from repro.api.gateway import InteropGateway
from repro.api.session import GatewaySession
from repro.api.streams import (
    EventVerifier,
    RejectedEvent,
    VerifiedEvent,
    VerifiedEventStream,
)
from repro.api.middleware import (
    Interceptor,
    MetricsInterceptor,
    RateLimitInterceptor,
    RelayContext,
    RequestLoggingInterceptor,
    ResponseCacheInterceptor,
    SerializingInterceptor,
)

__all__ = [
    "AsyncGateway",
    "InteropGateway",
    "GatewaySession",
    "QueryBuilder",
    "QuerySpec",
    "QuerySet",
    "QueryHandle",
    "BatchExecutor",
    "TransactionBuilder",
    "TransactionSpec",
    "TransactionSet",
    "TransactionHandle",
    "TransactionExecutor",
    "ExchangeBuilder",
    "CycleBuilder",
    "EventVerifier",
    "VerifiedEvent",
    "VerifiedEventStream",
    "RejectedEvent",
    "Interceptor",
    "RelayContext",
    "RateLimitInterceptor",
    "MetricsInterceptor",
    "RequestLoggingInterceptor",
    "ResponseCacheInterceptor",
    "SerializingInterceptor",
]
