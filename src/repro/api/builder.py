"""The fluent query and transaction builders.

One builder describes one cross-network request::

    gateway.query("stl/trade-logistics/TradeLensCC/GetBillOfLading") \\
        .with_args("PO-1") \\
        .with_policy("AND(org:seller-org, org:carrier-org)") \\
        .confidential() \\
        .submit()            # -> QueryHandle, pipelined with its QuerySet

    gateway.transact("stl/trade-logistics/TradeLensCC/CreateShipment") \\
        .with_args("PO-2", "goods") \\
        .submit()            # -> TransactionHandle, same pipeline model

``submit()`` enqueues the request into the builder's set (the session's
ambient set, unless the builder came from an explicit ``batch()`` /
``transaction_batch()`` set) and returns a future-style handle;
``execute()`` bypasses batching and runs the request immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.batch import (
    QueryHandle,
    QuerySpec,
    TransactionHandle,
    TransactionSpec,
)
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.transactions import (
    RemoteTransactionClient,
    RemoteTransactionResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.batch import QuerySet, TransactionSet


class QueryBuilder:
    """Accumulates one query's parameters; immutable-feeling fluent API.

    Every mutator returns ``self``, so calls chain; a builder can be
    submitted or executed once per configuration (re-submitting enqueues a
    fresh copy of the current spec).
    """

    def __init__(
        self,
        client: InteropClient,
        address: str,
        queryset: "QuerySet | None" = None,
    ) -> None:
        self._client = client
        self._queryset = queryset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True
        self._verify_locally = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "QueryBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "QueryBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "QueryBuilder":
        """Request end-to-end encryption of result and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "QueryBuilder":
        """Disable confidentiality (results travel unencrypted)."""
        return self.confidential(False)

    def verify_locally(self, flag: bool = True) -> "QueryBuilder":
        """Toggle client-side pre-validation of the returned proof."""
        self._verify_locally = flag
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self) -> QuerySpec:
        """The spec this builder currently describes."""
        return QuerySpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
            verify_locally=self._verify_locally,
        )

    def submit(self) -> QueryHandle:
        """Enqueue into the bound query set; returns a pipelined handle."""
        if self._queryset is None:
            raise RuntimeError(
                "this builder is not bound to a QuerySet; create it via "
                "gateway.query(...) or queryset.query(...)"
            )
        return self._queryset.add(self.build())

    def execute(self) -> RemoteQueryResult:
        """Run the query immediately (no batching), returning its result."""
        spec = self.build()
        return self._client.remote_query(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
            verify_locally=spec.verify_locally,
        )


class TransactionBuilder:
    """Accumulates one cross-network transaction's parameters.

    Same fluent contract as :class:`QueryBuilder`; the terminal operations
    return proof-verified :class:`RemoteTransactionResult` values whose
    attestations cover the committed transaction id and block.
    """

    def __init__(
        self,
        transaction_client: RemoteTransactionClient,
        address: str,
        txset: "TransactionSet | None" = None,
    ) -> None:
        self._tx_client = transaction_client
        self._txset = txset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "TransactionBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "TransactionBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "TransactionBuilder":
        """Request end-to-end encryption of outcome and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "TransactionBuilder":
        """Disable confidentiality (outcomes travel unencrypted)."""
        return self.confidential(False)

    # -- terminal operations ------------------------------------------------------

    def build(self) -> TransactionSpec:
        """The spec this builder currently describes."""
        return TransactionSpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
        )

    def submit(self) -> TransactionHandle:
        """Enqueue into the bound transaction set; returns a handle."""
        if self._txset is None:
            raise RuntimeError(
                "this builder is not bound to a TransactionSet; create it "
                "via gateway.transact(...) or transaction_set.transact(...)"
            )
        return self._txset.add(self.build())

    def execute(self) -> RemoteTransactionResult:
        """Run the transaction immediately (no batching)."""
        spec = self.build()
        return self._tx_client.remote_transact(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
        )


class ExchangeBuilder:
    """Fluent description of one cross-network atomic asset exchange.

    Assembles an :class:`repro.assets.AssetExchangeCoordinator`::

        exchange = (
            gateway.exchange()
            .offer("fabnet/trade/assetscc", "GOLD-1")       # my asset
            .ask("quornet/state/asset-vault", "OIL-9")      # their asset
            .with_counterparty(their_client)
            .with_timeouts(offer=600.0, counter=300.0)
            .with_policies(offer="AND(org:a, org:b)", ask="org:op-org-1")
            .build()
        )
        result = exchange.run()    # or drive step() by step

    Asset addresses are ``network/ledger/contract`` (three segments — the
    HTLC verbs travel as envelope kinds, not function names). The offer
    asset must live on this session's network; the counterparty is the
    other party's :class:`~repro.interop.client.InteropClient` (or any
    object exposing ``.client``, e.g. a :class:`GatewaySession`).
    """

    def __init__(self, client: InteropClient) -> None:
        self._initiator = client
        self._offer: "tuple[str, str] | None" = None
        self._ask: "tuple[str, str] | None" = None
        self._responder: InteropClient | None = None
        self._offer_timeout = 600.0
        self._counter_timeout = 300.0
        self._offer_policy: str | None = None
        self._ask_policy: str | None = None

    # -- fluent mutators ----------------------------------------------------------

    def offer(self, address: str, asset_id: str) -> "ExchangeBuilder":
        """The asset this party escrows (on its own network)."""
        self._offer = (address, asset_id)
        return self

    def ask(self, address: str, asset_id: str) -> "ExchangeBuilder":
        """The counterparty asset received in return."""
        self._ask = (address, asset_id)
        return self

    def with_counterparty(self, party) -> "ExchangeBuilder":
        """The responder: an ``InteropClient`` or anything with ``.client``."""
        self._responder = getattr(party, "client", party)
        return self

    def with_timeouts(self, offer: float, counter: float) -> "ExchangeBuilder":
        """Lock lifetimes in seconds; ``counter`` must be < ``offer``."""
        self._offer_timeout = float(offer)
        self._counter_timeout = float(counter)
        return self

    def with_policies(
        self, offer: str | None = None, ask: str | None = None
    ) -> "ExchangeBuilder":
        """Verification policies for the proof-carrying lock confirmations
        (``offer`` verifies the offer-side lock, ``ask`` the counter lock;
        ``None`` falls back to the CMDAC-recorded policy)."""
        self._offer_policy = offer
        self._ask_policy = ask
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self):
        """Assemble the coordinator (validates both legs and timeouts)."""
        from repro.assets.coordinator import AssetExchangeCoordinator, AssetSpec

        if self._offer is None or self._ask is None:
            raise RuntimeError("an exchange needs both offer(...) and ask(...)")
        if self._responder is None:
            raise RuntimeError("an exchange needs with_counterparty(...)")
        return AssetExchangeCoordinator(
            initiator=self._initiator,
            responder=self._responder,
            offer=AssetSpec.parse(*self._offer),
            ask=AssetSpec.parse(*self._ask),
            offer_timeout=self._offer_timeout,
            counter_timeout=self._counter_timeout,
            offer_policy=self._offer_policy,
            ask_policy=self._ask_policy,
        )

    def run(self):
        """Build and drive the full happy path; returns the result."""
        return self.build().run()
