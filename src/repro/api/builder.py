"""The fluent query and transaction builders.

One builder describes one cross-network request::

    gateway.query("stl/trade-logistics/TradeLensCC/GetBillOfLading") \\
        .with_args("PO-1") \\
        .with_policy("AND(org:seller-org, org:carrier-org)") \\
        .confidential() \\
        .submit()            # -> QueryHandle, pipelined with its QuerySet

    gateway.transact("stl/trade-logistics/TradeLensCC/CreateShipment") \\
        .with_args("PO-2", "goods") \\
        .submit()            # -> TransactionHandle, same pipeline model

``submit()`` enqueues the request into the builder's set (the session's
ambient set, unless the builder came from an explicit ``batch()`` /
``transaction_batch()`` set) and returns a future-style handle;
``execute()`` bypasses batching and runs the request immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.batch import (
    QueryHandle,
    QuerySpec,
    TransactionHandle,
    TransactionSpec,
)
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.transactions import (
    RemoteTransactionClient,
    RemoteTransactionResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.batch import QuerySet, TransactionSet


class QueryBuilder:
    """Accumulates one query's parameters; immutable-feeling fluent API.

    Every mutator returns ``self``, so calls chain; a builder can be
    submitted or executed once per configuration (re-submitting enqueues a
    fresh copy of the current spec).
    """

    def __init__(
        self,
        client: InteropClient,
        address: str,
        queryset: "QuerySet | None" = None,
    ) -> None:
        self._client = client
        self._queryset = queryset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True
        self._verify_locally = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "QueryBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "QueryBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "QueryBuilder":
        """Request end-to-end encryption of result and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "QueryBuilder":
        """Disable confidentiality (results travel unencrypted)."""
        return self.confidential(False)

    def verify_locally(self, flag: bool = True) -> "QueryBuilder":
        """Toggle client-side pre-validation of the returned proof."""
        self._verify_locally = flag
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self) -> QuerySpec:
        """The spec this builder currently describes."""
        return QuerySpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
            verify_locally=self._verify_locally,
        )

    def submit(self) -> QueryHandle:
        """Enqueue into the bound query set; returns a pipelined handle."""
        if self._queryset is None:
            raise RuntimeError(
                "this builder is not bound to a QuerySet; create it via "
                "gateway.query(...) or queryset.query(...)"
            )
        return self._queryset.add(self.build())

    def execute(self) -> RemoteQueryResult:
        """Run the query immediately (no batching), returning its result."""
        spec = self.build()
        return self._client.remote_query(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
            verify_locally=spec.verify_locally,
        )


class TransactionBuilder:
    """Accumulates one cross-network transaction's parameters.

    Same fluent contract as :class:`QueryBuilder`; the terminal operations
    return proof-verified :class:`RemoteTransactionResult` values whose
    attestations cover the committed transaction id and block.
    """

    def __init__(
        self,
        transaction_client: RemoteTransactionClient,
        address: str,
        txset: "TransactionSet | None" = None,
    ) -> None:
        self._tx_client = transaction_client
        self._txset = txset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "TransactionBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "TransactionBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "TransactionBuilder":
        """Request end-to-end encryption of outcome and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "TransactionBuilder":
        """Disable confidentiality (outcomes travel unencrypted)."""
        return self.confidential(False)

    # -- terminal operations ------------------------------------------------------

    def build(self) -> TransactionSpec:
        """The spec this builder currently describes."""
        return TransactionSpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
        )

    def submit(self) -> TransactionHandle:
        """Enqueue into the bound transaction set; returns a handle."""
        if self._txset is None:
            raise RuntimeError(
                "this builder is not bound to a TransactionSet; create it "
                "via gateway.transact(...) or transaction_set.transact(...)"
            )
        return self._txset.add(self.build())

    def execute(self) -> RemoteTransactionResult:
        """Run the transaction immediately (no batching)."""
        spec = self.build()
        return self._tx_client.remote_transact(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
        )
