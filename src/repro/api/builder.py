"""The fluent query and transaction builders.

One builder describes one cross-network request::

    gateway.query("stl/trade-logistics/TradeLensCC/GetBillOfLading") \\
        .with_args("PO-1") \\
        .with_policy("AND(org:seller-org, org:carrier-org)") \\
        .confidential() \\
        .submit()            # -> QueryHandle, pipelined with its QuerySet

    gateway.transact("stl/trade-logistics/TradeLensCC/CreateShipment") \\
        .with_args("PO-2", "goods") \\
        .submit()            # -> TransactionHandle, same pipeline model

``submit()`` enqueues the request into the builder's set (the session's
ambient set, unless the builder came from an explicit ``batch()`` /
``transaction_batch()`` set) and returns a future-style handle;
``execute()`` bypasses batching and runs the request immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.batch import (
    QueryHandle,
    QuerySpec,
    TransactionHandle,
    TransactionSpec,
)
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.transactions import (
    RemoteTransactionClient,
    RemoteTransactionResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.batch import QuerySet, TransactionSet


class QueryBuilder:
    """Accumulates one query's parameters; immutable-feeling fluent API.

    Every mutator returns ``self``, so calls chain; a builder can be
    submitted or executed once per configuration (re-submitting enqueues a
    fresh copy of the current spec).
    """

    def __init__(
        self,
        client: InteropClient,
        address: str,
        queryset: "QuerySet | None" = None,
    ) -> None:
        self._client = client
        self._queryset = queryset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True
        self._verify_locally = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "QueryBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "QueryBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "QueryBuilder":
        """Request end-to-end encryption of result and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "QueryBuilder":
        """Disable confidentiality (results travel unencrypted)."""
        return self.confidential(False)

    def verify_locally(self, flag: bool = True) -> "QueryBuilder":
        """Toggle client-side pre-validation of the returned proof."""
        self._verify_locally = flag
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self) -> QuerySpec:
        """The spec this builder currently describes."""
        return QuerySpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
            verify_locally=self._verify_locally,
        )

    def submit(self) -> QueryHandle:
        """Enqueue into the bound query set; returns a pipelined handle."""
        if self._queryset is None:
            raise RuntimeError(
                "this builder is not bound to a QuerySet; create it via "
                "gateway.query(...) or queryset.query(...)"
            )
        return self._queryset.add(self.build())

    def execute(self) -> RemoteQueryResult:
        """Run the query immediately (no batching), returning its result."""
        spec = self.build()
        return self._client.remote_query(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
            verify_locally=spec.verify_locally,
        )


class TransactionBuilder:
    """Accumulates one cross-network transaction's parameters.

    Same fluent contract as :class:`QueryBuilder`; the terminal operations
    return proof-verified :class:`RemoteTransactionResult` values whose
    attestations cover the committed transaction id and block.
    """

    def __init__(
        self,
        transaction_client: RemoteTransactionClient,
        address: str,
        txset: "TransactionSet | None" = None,
    ) -> None:
        self._tx_client = transaction_client
        self._txset = txset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "TransactionBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "TransactionBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "TransactionBuilder":
        """Request end-to-end encryption of outcome and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "TransactionBuilder":
        """Disable confidentiality (outcomes travel unencrypted)."""
        return self.confidential(False)

    # -- terminal operations ------------------------------------------------------

    def build(self) -> TransactionSpec:
        """The spec this builder currently describes."""
        return TransactionSpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
        )

    def submit(self) -> TransactionHandle:
        """Enqueue into the bound transaction set; returns a handle."""
        if self._txset is None:
            raise RuntimeError(
                "this builder is not bound to a TransactionSet; create it "
                "via gateway.transact(...) or transaction_set.transact(...)"
            )
        return self._txset.add(self.build())

    def execute(self) -> RemoteTransactionResult:
        """Run the transaction immediately (no batching)."""
        spec = self.build()
        return self._tx_client.remote_transact(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
        )


class ExchangeBuilder:
    """Fluent description of one cross-network atomic asset exchange.

    Assembles an :class:`repro.assets.AssetExchangeCoordinator`::

        exchange = (
            gateway.exchange()
            .offer("fabnet/trade/assetscc", "GOLD-1")       # my asset
            .ask("quornet/state/asset-vault", "OIL-9")      # their asset
            .with_counterparty(their_client)
            .with_timeouts(offer=600.0, counter=300.0)
            .with_policies(offer="AND(org:a, org:b)", ask="org:op-org-1")
            .build()
        )
        result = exchange.run()    # or drive step() by step

    Asset addresses are ``network/ledger/contract`` (three segments — the
    HTLC verbs travel as envelope kinds, not function names). The offer
    asset must live on this session's network; the counterparty is the
    other party's :class:`~repro.interop.client.InteropClient` (or any
    object exposing ``.client``, e.g. a :class:`GatewaySession`).
    """

    def __init__(self, client: InteropClient) -> None:
        self._initiator = client
        self._offer: "tuple[str, str] | None" = None
        self._ask: "tuple[str, str] | None" = None
        self._responder: InteropClient | None = None
        self._offer_timeout = 600.0
        self._counter_timeout = 300.0
        self._offer_policy: str | None = None
        self._ask_policy: str | None = None
        self._metrics = None

    # -- fluent mutators ----------------------------------------------------------

    def offer(self, address: str, asset_id: str) -> "ExchangeBuilder":
        """The asset this party escrows (on its own network)."""
        self._offer = (address, asset_id)
        return self

    def ask(self, address: str, asset_id: str) -> "ExchangeBuilder":
        """The counterparty asset received in return."""
        self._ask = (address, asset_id)
        return self

    def with_counterparty(self, party) -> "ExchangeBuilder":
        """The responder: an ``InteropClient`` or anything with ``.client``."""
        self._responder = getattr(party, "client", party)
        return self

    def with_timeouts(self, offer: float, counter: float) -> "ExchangeBuilder":
        """Lock lifetimes in seconds; ``counter`` must be < ``offer``."""
        self._offer_timeout = float(offer)
        self._counter_timeout = float(counter)
        return self

    def with_policies(
        self, offer: str | None = None, ask: str | None = None
    ) -> "ExchangeBuilder":
        """Verification policies for the proof-carrying lock confirmations
        (``offer`` verifies the offer-side lock, ``ask`` the counter lock;
        ``None`` falls back to the CMDAC-recorded policy)."""
        self._offer_policy = offer
        self._ask_policy = ask
        return self

    def with_metrics(self, metrics) -> "ExchangeBuilder":
        """Report into a shared :class:`repro.assets.ExchangeMetrics`."""
        self._metrics = metrics
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self):
        """Assemble the coordinator (validates both legs and timeouts)."""
        from repro.assets.coordinator import AssetExchangeCoordinator, AssetSpec

        if self._offer is None or self._ask is None:
            raise RuntimeError("an exchange needs both offer(...) and ask(...)")
        if self._responder is None:
            raise RuntimeError("an exchange needs with_counterparty(...)")
        return AssetExchangeCoordinator(
            initiator=self._initiator,
            responder=self._responder,
            offer=AssetSpec.parse(*self._offer),
            ask=AssetSpec.parse(*self._ask),
            offer_timeout=self._offer_timeout,
            counter_timeout=self._counter_timeout,
            offer_policy=self._offer_policy,
            ask_policy=self._ask_policy,
            metrics=self._metrics,
        )

    def run(self):
        """Build and drive the full happy path; returns the result."""
        return self.build().run()


class CycleBuilder:
    """Fluent description of one N-party cyclic atomic swap.

    Assembles a :class:`repro.assets.CycleCoordinator`::

        cycle = (
            gateway.exchange_cycle()
            .leg("fabnet/trade/assetscc", "GOLD-1")          # my escrow
            .leg("quornet/state/asset-vault", "OIL-9", party=bob)
            .leg("cordanet/vault/asset-vault", "ART-7", party=carol)
            .with_window(timeout=900.0, hop_gap=150.0)
            .journal_to(store)
            .build()
        )
        result = cycle.run()     # or drive lock_next()/claim_next()

    Legs are declared in ring order; the first leg belongs to this
    session's identity (party 0, who holds the secret), every later leg
    names its escrowing party (an
    :class:`~repro.interop.client.InteropClient` or anything exposing
    ``.client``). Asset addresses are ``network/ledger/contract``, and
    each leg's asset must live on its party's own network.
    """

    def __init__(self, client: InteropClient) -> None:
        self._initiator = client
        self._legs: list[tuple[str, str, InteropClient, str | None]] = []
        self._timeout = 900.0
        self._hop_gap = 150.0
        self._verify_margin: float | None = None
        self._store = None
        self._cycle_id: str | None = None
        self._metrics = None

    # -- fluent mutators ----------------------------------------------------------

    def leg(
        self,
        address: str,
        asset_id: str,
        party=None,
        policy: str | None = None,
    ) -> "CycleBuilder":
        """Append one leg of the ring: an asset escrowed by ``party``.

        ``party`` defaults to this session's client for the first leg
        (and is required afterwards); ``policy`` is the verification
        policy for proof-carrying readbacks of this leg's network
        (``None`` = the CMDAC-recorded policy).
        """
        if party is None:
            if self._legs:
                raise RuntimeError(
                    "every leg after the first must name its party"
                )
            client = self._initiator
        else:
            client = getattr(party, "client", party)
        self._legs.append((address, asset_id, client, policy))
        return self

    def with_window(self, timeout: float, hop_gap: float) -> "CycleBuilder":
        """Leg 0's lock lifetime and the per-hop timelock decrement."""
        self._timeout = float(timeout)
        self._hop_gap = float(hop_gap)
        return self

    def with_margin(self, verify_margin: float) -> "CycleBuilder":
        """Minimum remaining lock lifetime a party requires before acting."""
        self._verify_margin = float(verify_margin)
        return self

    def journal_to(self, store, cycle_id: str | None = None) -> "CycleBuilder":
        """Journal every transition to ``store`` (a
        :class:`repro.store.StateStore`) so the cycle survives a crash."""
        self._store = store
        if cycle_id is not None:
            self._cycle_id = cycle_id
        return self

    def with_metrics(self, metrics) -> "CycleBuilder":
        """Report into a shared :class:`repro.assets.ExchangeMetrics`."""
        self._metrics = metrics
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self):
        """Assemble the coordinator (validates the ring and its windows)."""
        from repro.assets.coordinator import AssetSpec
        from repro.assets.cycles import CycleCoordinator

        if len(self._legs) < 2:
            raise RuntimeError(
                f"a cycle needs at least two leg(...) calls, got "
                f"{len(self._legs)}"
            )
        return CycleCoordinator(
            parties=[client for _, _, client, _ in self._legs],
            specs=[
                AssetSpec.parse(address, asset_id)
                for address, asset_id, _, _ in self._legs
            ],
            cycle_timeout=self._timeout,
            hop_gap=self._hop_gap,
            policies=[policy for _, _, _, policy in self._legs],
            verify_margin=self._verify_margin,
            store=self._store,
            cycle_id=self._cycle_id,
            metrics=self._metrics,
        )

    def run(self):
        """Build and drive the full happy path; returns the result."""
        return self.build().run()
