"""The fluent query builder.

One builder describes one cross-network query::

    gateway.query("stl/trade-logistics/TradeLensCC/GetBillOfLading") \\
        .with_args("PO-1") \\
        .with_policy("AND(org:seller-org, org:carrier-org)") \\
        .confidential() \\
        .submit()            # -> QueryHandle, pipelined with its QuerySet

``submit()`` enqueues the query into the builder's :class:`QuerySet` (the
gateway's ambient set, unless the builder came from an explicit
``gateway.batch()`` set) and returns a future-style handle; ``execute()``
bypasses batching and runs the query immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.batch import QueryHandle, QuerySpec
from repro.interop.client import InteropClient, RemoteQueryResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.batch import QuerySet


class QueryBuilder:
    """Accumulates one query's parameters; immutable-feeling fluent API.

    Every mutator returns ``self``, so calls chain; a builder can be
    submitted or executed once per configuration (re-submitting enqueues a
    fresh copy of the current spec).
    """

    def __init__(
        self,
        client: InteropClient,
        address: str,
        queryset: "QuerySet | None" = None,
    ) -> None:
        self._client = client
        self._queryset = queryset
        self._address = address
        self._args: list[str] = []
        self._policy: str | None = None
        self._confidential = True
        self._verify_locally = True

    # -- fluent mutators ----------------------------------------------------------

    def with_args(self, *args: str) -> "QueryBuilder":
        """Set the remote function's arguments (replaces prior args)."""
        self._args = [str(arg) for arg in args]
        return self

    def with_policy(self, expression: str) -> "QueryBuilder":
        """Pin an explicit verification policy instead of the CMDAC's."""
        self._policy = expression
        return self

    def confidential(self, flag: bool = True) -> "QueryBuilder":
        """Request end-to-end encryption of result and proof (default)."""
        self._confidential = flag
        return self

    def plain(self) -> "QueryBuilder":
        """Disable confidentiality (results travel unencrypted)."""
        return self.confidential(False)

    def verify_locally(self, flag: bool = True) -> "QueryBuilder":
        """Toggle client-side pre-validation of the returned proof."""
        self._verify_locally = flag
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self) -> QuerySpec:
        """The spec this builder currently describes."""
        return QuerySpec(
            address=self._address,
            args=list(self._args),
            policy=self._policy,
            confidential=self._confidential,
            verify_locally=self._verify_locally,
        )

    def submit(self) -> QueryHandle:
        """Enqueue into the bound query set; returns a pipelined handle."""
        if self._queryset is None:
            raise RuntimeError(
                "this builder is not bound to a QuerySet; create it via "
                "gateway.query(...) or queryset.query(...)"
            )
        return self._queryset.add(self.build())

    def execute(self) -> RemoteQueryResult:
        """Run the query immediately (no batching), returning its result."""
        spec = self.build()
        return self._client.remote_query(
            spec.address,
            spec.args,
            policy=spec.policy,
            confidential=spec.confidential,
            verify_locally=spec.verify_locally,
        )
