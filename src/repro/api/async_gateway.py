"""Async-native gateway surface over the same session machinery.

With relays living on real sockets (:mod:`repro.net`), the natural
application shape becomes an asyncio service that awaits cross-network
calls instead of blocking a thread per request. :class:`AsyncGateway`
layers that surface over the *existing* synchronous machinery — the same
:class:`~repro.api.GatewaySession`, the same prepared-query/finalize
halves, the same proof verification — by running each blocking call on
the event loop's default executor. Nothing is re-implemented, so the
async path can never drift from the protocol the sync path enforces.

Example::

    gateway = InteropGateway.from_client(client)
    agw = AsyncGateway(gateway)

    result = await agw.aquery(ADDR, ["PO-1"], policy=POLICY)

    # N concurrent singles (each its own envelope, overlapped in flight):
    results = await asyncio.gather(*[
        agw.aquery(ADDR, [ref], policy=POLICY) for ref in refs
    ])

    # ... or one pipelined batch envelope per target network:
    results = await agw.agather([(ADDR, [ref]) for ref in refs],
                                policy=POLICY)

    outcome = await agw.atransact(TX_ADDR, ["PO-2", "goods"], policy=POLICY)

Concurrency note: with the PR-5 relay-side locking, concurrent ``aquery``
calls through one gateway are safe end to end; the serving side bounds
its own parallelism (the :class:`~repro.net.RelayServer` worker pool, the
driver's ``batch_concurrency``, or a
:class:`~repro.api.SerializingInterceptor` in front of a substrate that
needs one).
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.api.gateway import InteropGateway
from repro.interop.client import InteropClient, RemoteQueryResult


class AsyncGateway:
    """Awaitable facade over an :class:`InteropGateway`.

    Wraps either a ready gateway or a bare legacy client. Every method is
    a coroutine; blocking protocol work (crypto, transport round-trips)
    runs on the loop's default thread-pool executor, so the event loop
    stays free to multiplex other traffic.
    """

    def __init__(self, gateway: InteropGateway) -> None:
        self._gateway = gateway
        self._session = gateway.default_session

    @classmethod
    def from_client(cls, client: InteropClient) -> "AsyncGateway":
        return cls(InteropGateway.from_client(client))

    @property
    def gateway(self) -> InteropGateway:
        """The synchronous gateway this facade delegates to."""
        return self._gateway

    @staticmethod
    async def _call(fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        if kwargs:
            import functools

            fn = functools.partial(fn, *args, **kwargs)
            return await loop.run_in_executor(None, fn)
        return await loop.run_in_executor(None, fn, *args)

    # -- primitive i: query -------------------------------------------------------

    async def aquery(
        self,
        address: str,
        args: Sequence[str] = (),
        policy: str | None = None,
        confidential: bool = True,
        verify_locally: bool = True,
    ) -> RemoteQueryResult:
        """One trusted cross-network query, awaited.

        Same contract (and same typed errors) as
        :meth:`InteropClient.remote_query`.
        """
        return await self._call(
            self._gateway.client.remote_query,
            address,
            list(args),
            policy,
            confidential,
            verify_locally,
        )

    async def agather(
        self,
        requests: Sequence[tuple[str, Sequence[str]]],
        **options,
    ) -> list[RemoteQueryResult]:
        """N queries as pipelined batch envelopes, awaited together.

        Members sharing a target network travel in ONE batch envelope
        (one discovery lookup, one failover loop), exactly like the sync
        gateway's ambient set; the whole flush runs off-loop. ``options``
        forward to each member (``policy``, ``confidential``,
        ``verify_locally``). Raises on the first failed member — for
        per-member partial failure, fall back to ``asyncio.gather`` over
        :meth:`aquery` calls with ``return_exceptions=True``.
        """
        normalized = [(address, list(args)) for address, args in requests]
        return await self._call(
            self._gateway.client.remote_query_batch, normalized, **options
        )

    # -- primitive ii: transact ---------------------------------------------------

    async def atransact(
        self,
        address: str,
        args: Sequence[str] = (),
        policy: str | None = None,
        confidential: bool = True,
    ):
        """One cross-network transaction, awaited.

        Same contract as the legacy
        :meth:`~repro.interop.transactions.RemoteTransactionClient.remote_transact`:
        the result's attestations cover the committed tx id and block.
        """
        return await self._call(
            self._session.transaction_client.remote_transact,
            address,
            list(args),
            policy=policy,
            confidential=confidential,
        )
