"""Verified event streams: notify-then-verify as an iterator.

A cross-network event notification is *unauthenticated* — it travels as a
compact ``MSG_KIND_EVENT_PUBLISH`` envelope with no proof, because events
are hints, not data. The paper's trust argument ("only attestation proofs
are believed") is preserved by upgrading every notification to trusted
data before the application sees it: a :class:`VerifiedEventStream` runs
a follow-up proof-carrying query per notification (the
:class:`EventVerifier` describes how), and only notifications whose
verified result passes the consistency check reach the iterator. A
tampered or fabricated notification — one whose follow-up query fails or
whose verified data does not cover it — lands in :attr:`rejected` instead.

Verification is deliberately *lazy* (at iteration, not delivery):
delivery happens synchronously inside the source network's block commit,
and re-entering the relay machinery mid-commit to verify would nest one
network's consensus inside another's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import DiscoveryError, ProtocolError, RelayUnavailableError
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.events import RemoteEventNotification
from repro.proto.messages import EventNotificationMsg


def _default_check(
    notification: RemoteEventNotification, result: RemoteQueryResult
) -> bool:
    """The verified document must cover the notification payload."""
    return notification.payload in result.data


@dataclass
class EventVerifier:
    """How to upgrade one notification into trusted data.

    ``address`` is the proof-carrying query to run; ``args`` maps the
    notification to the query's arguments (e.g. extract a document ref
    from the payload); ``check`` decides whether the verified result
    really covers the notification (default: payload containment). The
    query runs with the full trusted-transfer machinery — attestation
    proof, client-side verification — under ``policy`` (``None`` = the
    locally-recorded CMDAC policy).
    """

    address: str
    args: Callable[[RemoteEventNotification], list[str]]
    policy: str | None = None
    confidential: bool = True
    check: Callable[[RemoteEventNotification, RemoteQueryResult], bool] | None = None


@dataclass(frozen=True)
class VerifiedEvent:
    """A notification plus the proof-backed query result that vouches for it."""

    notification: RemoteEventNotification
    verification: RemoteQueryResult

    @property
    def data(self) -> bytes:
        """The *trusted* data (from the verification query, not the push)."""
        return self.verification.data


@dataclass(frozen=True)
class RejectedEvent:
    """A notification that failed its upgrade to trusted data."""

    notification: RemoteEventNotification
    reason: str


class VerifiedEventStream:
    """One live subscription's application-facing iterator.

    The relay pushes raw notifications into the stream as matching events
    commit on the source network; iterating (or :meth:`take`) verifies
    each pending notification with the configured :class:`EventVerifier`
    and yields only :class:`VerifiedEvent` values. Rejections accumulate
    in :attr:`rejected` with their reason.
    """

    def __init__(
        self,
        client: InteropClient,
        source_network: str,
        chaincode: str,
        event_name: str,
        verifier: EventVerifier | None = None,
        on_close: Callable[["VerifiedEventStream"], None] | None = None,
    ) -> None:
        self._client = client
        self.source_network = source_network
        self.chaincode = chaincode
        self.event_name = event_name
        self.verifier = verifier
        self._on_close = on_close
        #: Assigned by the session once the subscribe round-trip completes.
        self.subscription_id = ""
        self._pending: deque[RemoteEventNotification] = deque()
        self.rejected: list[RejectedEvent] = []
        #: Verification attempts deferred by a transport outage (the
        #: notification stays pending rather than being wrongly rejected).
        self.deferrals = 0
        self.closed = False

    # -- delivery (called by the relay's event sink) -------------------------------

    def _deliver(self, message: EventNotificationMsg) -> None:
        self._pending.append(
            RemoteEventNotification(
                source_network=message.source_network,
                chaincode=message.chaincode,
                name=message.name,
                payload=message.payload,
                block_number=message.block_number,
                tx_id=message.tx_id,
            )
        )

    # -- consumption ---------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Raw notifications delivered but not yet verified."""
        return len(self._pending)

    @property
    def raw_pending(self) -> tuple[RemoteEventNotification, ...]:
        """The unverified backlog — *untrusted*; for introspection only."""
        return tuple(self._pending)

    def take(self) -> VerifiedEvent | None:
        """Verify and return the next pending notification.

        Skips (and records) rejected notifications; returns ``None`` when
        the pending backlog is drained.
        """
        if self.verifier is None:
            raise ProtocolError(
                "stream has no EventVerifier; configure one at subscribe "
                "time (raw notifications are untrusted by design)"
            )
        while self._pending:
            notification = self._pending.popleft()
            try:
                event = self._verify(notification)
            except (RelayUnavailableError, DiscoveryError):
                # A transport outage on the verification path disproves
                # nothing: keep the notification pending (front of the
                # queue, preserving order) and yield nothing for now —
                # the next take() retries once the path recovers.
                self._pending.appendleft(notification)
                self.deferrals += 1
                return None
            except Exception as exc:  # noqa: BLE001 - a forged notification
                # must never crash the consumer: verifier.args/check choking
                # on malformed payloads (e.g. undecodable bytes) is itself
                # evidence of tampering, and lands in rejected like any
                # failed verification query.
                self.rejected.append(
                    RejectedEvent(notification, f"verification failed: {exc}")
                )
                continue
            if event is None:
                self.rejected.append(
                    RejectedEvent(
                        notification,
                        "verified data does not cover the notification",
                    )
                )
                continue
            return event
        return None

    def __iter__(self) -> Iterator[VerifiedEvent]:
        """Drain the current backlog, yielding verified events."""
        while True:
            event = self.take()
            if event is None:
                return
            yield event

    def _verify(self, notification: RemoteEventNotification) -> VerifiedEvent | None:
        verifier = self.verifier
        assert verifier is not None  # guarded by take()
        result = self._client.remote_query(
            verifier.address,
            verifier.args(notification),
            policy=verifier.policy,
            confidential=verifier.confidential,
        )
        check = verifier.check or _default_check
        if not check(notification, result):
            return None
        return VerifiedEvent(notification=notification, verification=result)

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe on the source relay and stop delivery."""
        if self.closed:
            return
        self.closed = True
        if self._on_close is not None:
            self._on_close(self)

    def __enter__(self) -> "VerifiedEventStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
