"""The multiplexed gateway session: all three §2 primitives, one state.

"Networks should expose the following operations for interoperability:
(i) query the state of a different network, (ii) carry out transactions
on different networks, and (iii) publish and subscribe to events of other
networks" (§2). A :class:`GatewaySession` is the one object an
application holds to do all three, multiplexed over a single relay
connection state:

- **per-session auth** — one identity signs, decrypts, and is
  exposure-checked for every query, transaction, and subscription;
- **shared interceptor chain** — all traffic leaves through the same
  relay, so rate limiting, metrics, logging, and caching observe the
  session as one stream;
- **shared policy/discovery amortization** — CMDAC verification-policy
  lookups resolve once per target network and are reused across queries,
  transactions, and re-flushes; relay-level discovery and failover are
  shared per flush exactly as for PR 1's batched queries.

Sessions are cheap: a long-lived service holds one per principal; the
:class:`~repro.api.InteropGateway` façade keeps a default session for its
one-liner surface. Closing a session tears down its live subscriptions on
the source relays.
"""

from __future__ import annotations

import logging

from repro.api.batch import (
    QueryHandle,
    QuerySet,
    TransactionHandle,
    TransactionSet,
)
from repro.api.builder import (
    CycleBuilder,
    ExchangeBuilder,
    QueryBuilder,
    TransactionBuilder,
)
from repro.api.streams import EventVerifier, VerifiedEventStream
from repro.errors import AddressError
from repro.interop.client import InteropClient
from repro.interop.relay import RelayService
from repro.interop.transactions import RemoteTransactionClient
from repro.ops.trace import ensure_trace
from repro.proto.messages import (
    PROTOCOL_VERSION,
    AuthInfo,
    EventSubscribeRequest,
    NetworkAddressMsg,
)

logger = logging.getLogger("repro.api")


class GatewaySession:
    """One principal's multiplexed query/transact/subscribe surface."""

    def __init__(
        self,
        client: InteropClient,
        transaction_client: RemoteTransactionClient | None = None,
    ) -> None:
        self._client = client
        self._tx_client = (
            transaction_client
            if transaction_client is not None
            else RemoteTransactionClient(client)
        )
        #: CMDAC verification policies resolved once per target network,
        #: shared by every query and transaction flush of this session.
        self._policy_cache: dict[str, str] = {}
        self._ambient_queries: QuerySet | None = None
        self._ambient_transactions: TransactionSet | None = None
        self._streams: list[VerifiedEventStream] = []
        self.closed = False

    # -- composition --------------------------------------------------------------

    @property
    def client(self) -> InteropClient:
        return self._client

    @property
    def transaction_client(self) -> RemoteTransactionClient:
        return self._tx_client

    @property
    def relay(self) -> RelayService:
        return self._client.relay

    @property
    def identity(self):
        return self._client.identity

    @property
    def network_id(self) -> str:
        return self._client.network_id

    @property
    def streams(self) -> tuple[VerifiedEventStream, ...]:
        """This session's live (unclosed) event streams."""
        return tuple(stream for stream in self._streams if not stream.closed)

    # -- primitive i: query -------------------------------------------------------

    def query(self, address: str) -> QueryBuilder:
        """Fluent builder whose ``submit()`` joins the ambient query set."""
        if self._ambient_queries is None or self._ambient_queries.flushed:
            self._ambient_queries = QuerySet(
                self._client, policy_cache=self._policy_cache
            )
        return self._ambient_queries.query(address)

    def batch(self) -> QuerySet:
        """An explicit, independently-flushed query set."""
        return QuerySet(self._client, policy_cache=self._policy_cache)

    # -- primitive ii: transact ---------------------------------------------------

    def transact(self, address: str) -> TransactionBuilder:
        """Fluent builder whose ``submit()`` joins the ambient transaction set."""
        if (
            self._ambient_transactions is None
            or self._ambient_transactions.flushed
        ):
            self._ambient_transactions = TransactionSet(
                self._tx_client, policy_cache=self._policy_cache
            )
        return self._ambient_transactions.transact(address)

    def transaction_batch(self) -> TransactionSet:
        """An explicit, independently-flushed transaction set."""
        return TransactionSet(self._tx_client, policy_cache=self._policy_cache)

    # -- primitive iii: subscribe -------------------------------------------------

    def subscribe(
        self,
        address: str,
        event_name: str,
        verifier: EventVerifier | None = None,
    ) -> VerifiedEventStream:
        """Subscribe to a remote chaincode event; returns a verified stream.

        ``address`` names the source chaincode as ``network/ledger/contract``
        (three segments — the event, unlike a query, addresses no function);
        ``event_name`` is the chaincode event (``*`` matches any). The
        subscribe round-trip rides a ``MSG_KIND_EVENT_SUBSCRIBE`` envelope
        through discovery, failover, and the interceptor chain, and is
        exposure-checked by the source ECC under ``event:<name>``. Raises
        :class:`AccessDeniedError` on governance denial.

        ``verifier`` configures the notify-then-verify upgrade; without
        one the stream only exposes its (untrusted) raw backlog.
        """
        segments = address.split("/")
        if len(segments) != 3 or not all(segments):
            raise AddressError(
                f"event address {address!r} must be network/ledger/chaincode"
            )
        network, ledger, chaincode = segments
        identity = self._client.identity
        request = EventSubscribeRequest(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=network, ledger=ledger, contract=chaincode, function=""
            ),
            event_name=event_name,
            auth=AuthInfo(
                requesting_network=self._client.network_id,
                requesting_org=identity.org,
                requestor=identity.name,
                certificate=identity.certificate.to_bytes(),
                public_key=identity.keypair.public.to_bytes(),
            ),
        )
        stream = VerifiedEventStream(
            self._client,
            source_network=network,
            chaincode=chaincode,
            event_name=event_name,
            verifier=verifier,
            on_close=self._close_stream,
        )
        with ensure_trace():
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "subscribing to remote events",
                    extra={"address": address, "event_name": event_name},
                )
            stream.subscription_id = self.relay.remote_subscribe(
                request, stream._deliver
            )
        self._streams.append(stream)
        return stream

    # -- primitive iv: atomic asset exchange --------------------------------------

    def exchange(self) -> ExchangeBuilder:
        """Fluent builder for a two-party atomic asset exchange (HTLC).

        This session's identity is the *initiator*: it offers an asset on
        its own network and generates the exchange secret. See
        :class:`repro.api.ExchangeBuilder` for the full surface.
        """
        return ExchangeBuilder(self._client)

    def exchange_cycle(self) -> CycleBuilder:
        """Fluent builder for an N-party cyclic atomic swap.

        This session's identity is *party 0*: it escrows the first leg,
        holds the cycle secret, and opens the backward claim walk. See
        :class:`repro.api.CycleBuilder` for the full surface.
        """
        return CycleBuilder(self._client)

    def _close_stream(self, stream: VerifiedEventStream) -> None:
        self.relay.remote_unsubscribe(
            stream.source_network, stream.subscription_id
        )
        if stream in self._streams:
            self._streams.remove(stream)

    # -- lifecycle ----------------------------------------------------------------

    def dispatch(self) -> list[QueryHandle | TransactionHandle]:
        """Flush both ambient sets now; returns the resolved handles."""
        handles: list[QueryHandle | TransactionHandle] = []
        if self._ambient_queries is not None:
            ambient, self._ambient_queries = self._ambient_queries, None
            handles.extend(ambient.flush())
        if self._ambient_transactions is not None:
            ambient_tx, self._ambient_transactions = (
                self._ambient_transactions,
                None,
            )
            handles.extend(ambient_tx.flush())
        return handles

    def close(self) -> None:
        """Tear down every live subscription of this session."""
        if self.closed:
            return
        self.closed = True
        for stream in list(self._streams):
            stream.close()

    def __enter__(self) -> "GatewaySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
