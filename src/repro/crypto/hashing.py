"""Hash and MAC helpers used across the library."""

from __future__ import annotations

import hashlib
import hmac as _hmac


def sha256(*chunks: bytes) -> bytes:
    """SHA-256 over the concatenation of ``chunks``."""
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk)
    return digest.digest()


def sha256_hex(*chunks: bytes) -> str:
    """Hex-encoded :func:`sha256`."""
    return sha256(*chunks).hex()


def hmac_sha256(key: bytes, *chunks: bytes) -> bytes:
    """HMAC-SHA256 of ``chunks`` under ``key``."""
    mac = _hmac.new(key, digestmod=hashlib.sha256)
    for chunk in chunks:
        mac.update(chunk)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte comparison (wraps :func:`hmac.compare_digest`)."""
    return _hmac.compare_digest(a, b)
