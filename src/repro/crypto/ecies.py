"""ECIES-style hybrid public-key encryption.

The paper's protocol requires source-network peers to encrypt both the
query *result* and the signed proof *metadata* with the remote client's
public key, so that an untrusted relay can neither read the data nor
exfiltrate a verifiable proof (§4.3). This module provides that
public-key encryption:

1. generate an ephemeral P-256 key pair,
2. ECDH against the recipient public key,
3. HKDF the shared x-coordinate into a 64-byte AEAD key,
4. seal the plaintext with ChaCha20 + HMAC-SHA256.

Wire layout: ``ephemeral_pubkey (65) || aead_box``.
"""

from __future__ import annotations

from repro.crypto import ec
from repro.crypto.aead import KEY_LEN, open_, seal
from repro.crypto.kdf import hkdf
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.errors import DecryptionError

_EPHEMERAL_LEN = 65
_HKDF_INFO = b"repro/ecies/v1"


def _derive_key(shared_point: ec.AffinePoint, ephemeral_pub: bytes) -> bytes:
    if shared_point is None:
        raise DecryptionError("ECDH produced the point at infinity")
    shared_x = shared_point[0].to_bytes(32, "big")
    # Bind the key to the ephemeral public key to prevent benign malleability.
    return hkdf(shared_x, KEY_LEN, salt=ephemeral_pub, info=_HKDF_INFO)


def ecies_encrypt(
    recipient: PublicKey,
    plaintext: bytes,
    associated_data: bytes = b"",
    ephemeral: KeyPair | None = None,
) -> bytes:
    """Encrypt ``plaintext`` so only the holder of ``recipient``'s private key can read it."""
    if ephemeral is None:
        ephemeral = generate_keypair()
    shared = ec.scalar_mult(ephemeral.private.d, recipient.point)
    ephemeral_pub = ephemeral.public.to_bytes()
    key = _derive_key(shared, ephemeral_pub)
    return ephemeral_pub + seal(key, plaintext, associated_data)


def ecies_decrypt(
    recipient: PrivateKey,
    box: bytes,
    associated_data: bytes = b"",
) -> bytes:
    """Decrypt a box produced by :func:`ecies_encrypt`."""
    if len(box) < _EPHEMERAL_LEN:
        raise DecryptionError("ciphertext too short for an ECIES box")
    ephemeral_pub = box[:_EPHEMERAL_LEN]
    ephemeral_point = PublicKey.from_bytes(ephemeral_pub)
    shared = ec.scalar_mult(recipient.d, ephemeral_point.point)
    key = _derive_key(shared, ephemeral_pub)
    return open_(key, box[_EPHEMERAL_LEN:], associated_data)
