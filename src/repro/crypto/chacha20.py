"""ChaCha20 stream cipher (RFC 8439).

A compact pure-Python implementation. Encryption and decryption are the
same XOR-keystream operation. Used only through the AEAD construction in
:mod:`repro.crypto.aead`; never use a raw stream cipher without a MAC.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _chacha20_block(key_words: tuple[int, ...], counter: int, nonce_words: tuple[int, ...]) -> bytes:
    state = list(_CONSTANTS) + list(key_words) + [counter] + list(nonce_words)
    working = state.copy()
    for _ in range(10):  # 20 rounds: 10 column+diagonal double-rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16I", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encrypts and decrypts).

    ``key`` must be 32 bytes, ``nonce`` 12 bytes (RFC 8439 layout).
    """
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    out = bytearray(len(data))
    counter = initial_counter
    for offset in range(0, len(data), 64):
        block = _chacha20_block(key_words, counter, nonce_words)
        chunk = data[offset : offset + 64]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ block[i]
        counter = (counter + 1) & _MASK32
    return bytes(out)
