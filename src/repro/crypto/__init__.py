"""Cryptographic substrate.

Pure-Python implementations of the primitives the interoperability protocol
relies on:

- SHA-256 hashing and Merkle trees (:mod:`repro.crypto.hashing`,
  :mod:`repro.crypto.merkle`)
- NIST P-256 elliptic-curve arithmetic (:mod:`repro.crypto.ec`)
- ECDSA with RFC 6979 deterministic nonces (:mod:`repro.crypto.ecdsa`)
- HKDF key derivation (:mod:`repro.crypto.kdf`)
- ChaCha20 + HMAC-SHA256 authenticated encryption (:mod:`repro.crypto.aead`)
- ECIES-style hybrid public-key encryption (:mod:`repro.crypto.ecies`)
- Simplified X.509-style certificates and CAs (:mod:`repro.crypto.certs`)

These play the roles that Fabric's MSP X.509/ECDSA stack plays in the
paper: CA-rooted identities, endorsement signatures, and end-to-end
encryption of query results and proof metadata.
"""

from repro.crypto.hashing import sha256, hmac_sha256
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.crypto.ecdsa import sign, verify
from repro.crypto.ecies import ecies_decrypt, ecies_encrypt
from repro.crypto.certs import Certificate, CertificateAuthority
from repro.crypto.merkle import MerkleTree

__all__ = [
    "sha256",
    "hmac_sha256",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "sign",
    "verify",
    "ecies_encrypt",
    "ecies_decrypt",
    "Certificate",
    "CertificateAuthority",
    "MerkleTree",
]
