"""NIST P-256 (secp256r1) elliptic-curve arithmetic.

A small, self-contained implementation of the curve group used by
Hyperledger Fabric MSP identities. Points are exposed as affine
``(x, y)`` tuples with ``None`` representing the point at infinity;
internally, scalar multiplication uses Jacobian coordinates to avoid a
modular inversion per addition.

This module implements *math only*; key handling and signatures live in
:mod:`repro.crypto.keys` and :mod:`repro.crypto.ecdsa`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import InvalidKeyError

# Curve parameters for NIST P-256 (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551

AffinePoint = Optional[Tuple[int, int]]
_JacobianPoint = Tuple[int, int, int]

_INFINITY_J: _JacobianPoint = (1, 1, 0)

GENERATOR: AffinePoint = (GX, GY)


def inverse_mod(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd ``pow``."""
    if value % modulus == 0:
        raise ZeroDivisionError("no inverse for 0")
    return pow(value, -1, modulus)


def is_on_curve(point: AffinePoint) -> bool:
    """Check that ``point`` satisfies the curve equation (or is infinity)."""
    if point is None:
        return True
    x, y = point
    if not (0 <= x < P and 0 <= y < P):
        return False
    return (y * y - (x * x * x + A * x + B)) % P == 0


def _to_jacobian(point: AffinePoint) -> _JacobianPoint:
    if point is None:
        return _INFINITY_J
    return (point[0], point[1], 1)


def _from_jacobian(point: _JacobianPoint) -> AffinePoint:
    x, y, z = point
    if z == 0:
        return None
    z_inv = inverse_mod(z, P)
    z_inv2 = (z_inv * z_inv) % P
    return ((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jacobian_double(point: _JacobianPoint) -> _JacobianPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _INFINITY_J
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x + A * z * z * z * z) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jacobian_add(p1: _JacobianPoint, p2: _JacobianPoint) -> _JacobianPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1z1 = (z1 * z1) % P
    z2z2 = (z2 * z2) % P
    u1 = (x1 * z2z2) % P
    u2 = (x2 * z1z1) % P
    s1 = (y1 * z2 * z2z2) % P
    s2 = (y2 * z1 * z1z1) % P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY_J
        return _jacobian_double(p1)
    h = (u2 - u1) % P
    i = (4 * h * h) % P
    j = (h * i) % P
    r = (2 * (s2 - s1)) % P
    v = (u1 * i) % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = (2 * h * z1 * z2) % P
    return (nx, ny, nz)


def point_add(p1: AffinePoint, p2: AffinePoint) -> AffinePoint:
    """Group addition on affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p1), _to_jacobian(p2)))


def point_double(point: AffinePoint) -> AffinePoint:
    """Group doubling on an affine point."""
    return _from_jacobian(_jacobian_double(_to_jacobian(point)))


def point_neg(point: AffinePoint) -> AffinePoint:
    """Group negation on an affine point."""
    if point is None:
        return None
    x, y = point
    return (x, (-y) % P)


def scalar_mult(scalar: int, point: AffinePoint = GENERATOR) -> AffinePoint:
    """Compute ``scalar * point`` with double-and-add in Jacobian space."""
    if point is None or scalar % N == 0:
        return None
    if not is_on_curve(point):
        raise InvalidKeyError("point is not on the P-256 curve")
    k = scalar % N
    result = _INFINITY_J
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


def encode_point(point: AffinePoint) -> bytes:
    """Serialize a point to 65-byte uncompressed SEC1 form (0x04 || X || Y)."""
    if point is None:
        raise InvalidKeyError("cannot encode the point at infinity")
    x, y = point
    return b"\x04" + x.to_bytes(32, "big") + y.to_bytes(32, "big")


def decode_point(data: bytes) -> AffinePoint:
    """Parse a 65-byte uncompressed SEC1 point, validating curve membership."""
    if len(data) != 65 or data[0] != 0x04:
        raise InvalidKeyError(
            f"expected 65-byte uncompressed point, got {len(data)} bytes"
        )
    x = int.from_bytes(data[1:33], "big")
    y = int.from_bytes(data[33:65], "big")
    point = (x, y)
    if not is_on_curve(point):
        raise InvalidKeyError("decoded point is not on the P-256 curve")
    return point
