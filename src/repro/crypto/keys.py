"""P-256 key handling.

Thin, immutable wrappers over the raw curve math in :mod:`repro.crypto.ec`
with stable byte serializations. Public keys serialize to uncompressed
SEC1 (65 bytes); private keys to 32 big-endian bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.crypto import ec
from repro.errors import InvalidKeyError


@dataclass(frozen=True)
class PublicKey:
    """An affine P-256 point acting as a verification/encryption key."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if not ec.is_on_curve((self.x, self.y)):
            raise InvalidKeyError("public key point is not on the P-256 curve")

    @property
    def point(self) -> tuple[int, int]:
        return (self.x, self.y)

    def to_bytes(self) -> bytes:
        """Uncompressed SEC1 encoding (65 bytes)."""
        return ec.encode_point(self.point)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        point = ec.decode_point(data)
        assert point is not None
        return cls(point[0], point[1])

    def fingerprint(self) -> str:
        """Short stable identifier for logs and registries."""
        from repro.crypto.hashing import sha256

        return sha256(self.to_bytes()).hex()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """A P-256 scalar acting as a signing/decryption key."""

    d: int = field(repr=False)

    def __post_init__(self) -> None:
        if not (1 <= self.d < ec.N):
            raise InvalidKeyError("private scalar out of range [1, n)")

    def public_key(self) -> PublicKey:
        point = ec.scalar_mult(self.d)
        assert point is not None
        return PublicKey(point[0], point[1])

    def to_bytes(self) -> bytes:
        return self.d.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        if len(data) != 32:
            raise InvalidKeyError(f"expected 32-byte scalar, got {len(data)}")
        return cls(int.from_bytes(data, "big"))


@dataclass(frozen=True)
class KeyPair:
    """A private key together with its derived public key."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def from_private(cls, private: PrivateKey) -> "KeyPair":
        return cls(private=private, public=private.public_key())


def generate_keypair(seed: bytes | None = None) -> KeyPair:
    """Generate a fresh P-256 key pair.

    ``seed`` makes generation deterministic (used by tests and the seeded
    simulators); without it, ``os.urandom`` supplies entropy. Rejection
    sampling keeps the scalar uniform in ``[1, n)``.
    """
    from repro.crypto.hashing import sha256

    counter = 0
    while True:
        if seed is None:
            material = os.urandom(32)
        else:
            material = sha256(seed, counter.to_bytes(4, "big"))
        candidate = int.from_bytes(material, "big")
        if 1 <= candidate < ec.N:
            return KeyPair.from_private(PrivateKey(candidate))
        counter += 1
        if seed is None and counter > 100:  # pragma: no cover - astronomically unlikely
            raise InvalidKeyError("could not sample a valid private scalar")
