"""HKDF (RFC 5869) over HMAC-SHA256.

Used by the ECIES hybrid-encryption scheme to derive the symmetric
encryption and MAC keys from an ECDH shared secret.
"""

from __future__ import annotations

from repro.crypto.hashing import hmac_sha256

_HASH_LEN = 32


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract step: compress IKM into a pseudorandom key."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand step: stretch a PRK into ``length`` output bytes."""
    if length > 255 * _HASH_LEN:
        raise ValueError(f"HKDF output too long: {length}")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous, info, bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(
    input_key_material: bytes,
    length: int,
    salt: bytes = b"",
    info: bytes = b"",
) -> bytes:
    """One-shot HKDF: extract then expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
