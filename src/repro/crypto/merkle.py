"""Binary Merkle trees.

Used by the block structure in the ledger substrates: a block's data hash
is the Merkle root over its transactions, and audit paths let a verifier
check transaction inclusion without the full block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX, data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX, left, right)


@dataclass(frozen=True)
class AuditStep:
    """One step of a Merkle audit path: a sibling hash and its side."""

    sibling: bytes
    sibling_is_left: bool


class MerkleTree:
    """A Merkle tree over a fixed list of byte-string leaves.

    Leaf and interior hashes use distinct domain-separation prefixes so a
    leaf cannot be confused with an encoded interior node (second-preimage
    hardening, as in RFC 6962).
    """

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ValueError("a Merkle tree requires at least one leaf")
        self._leaves = [bytes(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [[_leaf_hash(leaf) for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            next_level = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else current[i]
                next_level.append(_node_hash(left, right))
            self._levels.append(next_level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._leaves)

    def audit_path(self, index: int) -> list[AuditStep]:
        """Return the sibling path proving inclusion of leaf ``index``."""
        if not (0 <= index < len(self._leaves)):
            raise IndexError(f"leaf index {index} out of range")
        path = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index >= len(level):
                sibling_index = position  # odd node duplicated
            path.append(
                AuditStep(
                    sibling=level[sibling_index],
                    sibling_is_left=sibling_index < position,
                )
            )
            position //= 2
        return path


def verify_audit_path(leaf: bytes, path: list[AuditStep], root: bytes) -> bool:
    """Check that ``leaf`` is included under ``root`` via ``path``."""
    current = _leaf_hash(leaf)
    for step in path:
        if step.sibling_is_left:
            current = _node_hash(step.sibling, current)
        else:
            current = _node_hash(current, step.sibling)
    return current == root
