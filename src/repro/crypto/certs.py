"""Simplified X.509-style certificates and certificate authorities.

Fabric MSPs identify members through CA-issued X.509 certificates; the
interop protocol records foreign networks' *root* certificates on the local
ledger and authenticates remote signers against them (§3.3, §4.3).

This module reproduces those semantics with a canonical-JSON certificate
encoding instead of ASN.1 DER: a certificate binds a subject (name, org,
role, network) to a P-256 public key, carries a validity window, and is
signed by its issuer. Chains validate up to a trusted, self-signed root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.crypto.ecdsa import Signature, sign, verify
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.errors import CertificateError
from repro.utils.encoding import canonical_json, from_canonical_json


@dataclass(frozen=True)
class Subject:
    """The identity a certificate attests to."""

    common_name: str
    organization: str
    role: str = "client"  # client | peer | orderer | admin | ca
    network: str = ""

    def to_dict(self) -> dict:
        return {
            "common_name": self.common_name,
            "organization": self.organization,
            "role": self.role,
            "network": self.network,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Subject":
        return cls(
            common_name=data["common_name"],
            organization=data["organization"],
            role=data.get("role", "client"),
            network=data.get("network", ""),
        )


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a :class:`Subject` to a public key."""

    subject: Subject
    issuer: Subject
    public_key: PublicKey
    serial: int
    not_before: float
    not_after: float
    signature: Signature = field(repr=False)

    # -- serialization ------------------------------------------------------

    def _tbs_dict(self) -> dict:
        """The to-be-signed portion, as a canonicalizable dict."""
        return {
            "subject": self.subject.to_dict(),
            "issuer": self.issuer.to_dict(),
            "public_key": self.public_key.to_bytes().hex(),
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }

    def tbs_bytes(self) -> bytes:
        return canonical_json(self._tbs_dict())

    def to_dict(self) -> dict:
        data = self._tbs_dict()
        data["signature"] = self.signature.to_bytes().hex()
        return data

    def to_bytes(self) -> bytes:
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping) -> "Certificate":
        try:
            return cls(
                subject=Subject.from_dict(data["subject"]),
                issuer=Subject.from_dict(data["issuer"]),
                public_key=PublicKey.from_bytes(bytes.fromhex(data["public_key"])),
                serial=int(data["serial"]),
                not_before=float(data["not_before"]),
                not_after=float(data["not_after"]),
                signature=Signature.from_bytes(bytes.fromhex(data["signature"])),
            )
        except (KeyError, ValueError) as exc:
            raise CertificateError(f"malformed certificate: {exc}") from exc

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        try:
            decoded = from_canonical_json(data)
        except ValueError as exc:
            raise CertificateError(f"certificate is not valid JSON: {exc}") from exc
        return cls.from_dict(decoded)

    # -- semantics ----------------------------------------------------------

    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def is_within_validity(self, at_time: float) -> bool:
        return self.not_before <= at_time <= self.not_after

    def verify_signed_by(self, issuer_key: PublicKey) -> bool:
        """Check this certificate's signature under ``issuer_key``."""
        return verify(issuer_key, self.tbs_bytes(), self.signature)


class CertificateAuthority:
    """Issues member certificates for one organization's MSP.

    The CA's own certificate is self-signed and acts as the trust root that
    gets recorded on foreign ledgers by the Configuration Management
    contract.
    """

    def __init__(
        self,
        organization: str,
        network: str = "",
        keypair: KeyPair | None = None,
        validity_seconds: float = 10 * 365 * 24 * 3600.0,
        now: float = 0.0,
    ) -> None:
        self.organization = organization
        self.network = network
        self._keypair = keypair or generate_keypair()
        self._next_serial = 1
        self._validity = validity_seconds
        self._now = now
        self._root_subject = Subject(
            common_name=f"ca.{organization}",
            organization=organization,
            role="ca",
            network=network,
        )
        self.root_certificate = self._issue(
            subject=self._root_subject,
            public_key=self._keypair.public,
        )

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def _issue(self, subject: Subject, public_key: PublicKey) -> Certificate:
        serial = self._next_serial
        self._next_serial += 1
        tbs = Certificate(
            subject=subject,
            issuer=self._root_subject,
            public_key=public_key,
            serial=serial,
            not_before=self._now,
            not_after=self._now + self._validity,
            signature=Signature(1, 1),  # placeholder, replaced below
        )
        signature = sign(self._keypair.private, tbs.tbs_bytes())
        return Certificate(
            subject=tbs.subject,
            issuer=tbs.issuer,
            public_key=tbs.public_key,
            serial=tbs.serial,
            not_before=tbs.not_before,
            not_after=tbs.not_after,
            signature=signature,
        )

    def issue(
        self,
        common_name: str,
        public_key: PublicKey,
        role: str = "client",
    ) -> Certificate:
        """Issue a member certificate for ``common_name`` in this org."""
        subject = Subject(
            common_name=common_name,
            organization=self.organization,
            role=role,
            network=self.network,
        )
        return self._issue(subject, public_key)

    def enroll(self, common_name: str, role: str = "client") -> tuple[KeyPair, Certificate]:
        """Generate a key pair and issue a certificate for it in one step."""
        keypair = generate_keypair()
        return keypair, self.issue(common_name, keypair.public, role=role)


def validate_chain(
    certificate: Certificate,
    trusted_roots: Iterable[Certificate],
    at_time: float = 0.0,
) -> Certificate:
    """Validate ``certificate`` against a set of trusted self-signed roots.

    Returns the root that anchored trust. Raises :class:`CertificateError`
    when the certificate is expired, its issuer is unknown, or the issuer's
    signature does not verify. (Chains here are depth-2: root -> member,
    matching Fabric's common single-intermediate-free deployment.)
    """
    if not certificate.is_within_validity(at_time):
        raise CertificateError(
            f"certificate for {certificate.subject.common_name!r} is outside "
            f"its validity window at t={at_time}"
        )
    for root in trusted_roots:
        if not root.is_self_signed:
            raise CertificateError(
                f"trusted root for {root.subject.organization!r} is not self-signed"
            )
        if root.subject != certificate.issuer:
            continue
        if not certificate.verify_signed_by(root.public_key):
            raise CertificateError(
                f"certificate for {certificate.subject.common_name!r} carries "
                f"an invalid signature from {root.subject.common_name!r}"
            )
        return root
    raise CertificateError(
        f"no trusted root found for issuer {certificate.issuer.common_name!r}"
    )
