"""ECDSA over P-256 with RFC 6979 deterministic nonces.

Deterministic nonces keep every signature reproducible for a given
(key, message) pair — which makes the simulators and property tests
stable — while remaining spec-compliant and verifiable.

Signatures serialize as 64 bytes: ``r || s``, each 32 bytes big-endian.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto import ec
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import InvalidSignatureError

_ORDER_BYTES = 32


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature as its two scalars."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        return self.r.to_bytes(_ORDER_BYTES, "big") + self.s.to_bytes(
            _ORDER_BYTES, "big"
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 2 * _ORDER_BYTES:
            raise InvalidSignatureError(
                f"expected {2 * _ORDER_BYTES}-byte signature, got {len(data)}"
            )
        r = int.from_bytes(data[:_ORDER_BYTES], "big")
        s = int.from_bytes(data[_ORDER_BYTES:], "big")
        return cls(r, s)


def _bits_to_int(data: bytes) -> int:
    """Leftmost-bits conversion per RFC 6979 §2.3.2 (SHA-256 == order size)."""
    value = int.from_bytes(data, "big")
    excess = max(0, len(data) * 8 - ec.N.bit_length())
    return value >> excess


def _rfc6979_nonce(private: PrivateKey, digest: bytes) -> int:
    """Derive the per-signature nonce k deterministically (RFC 6979 §3.2)."""
    x = private.d.to_bytes(_ORDER_BYTES, "big")
    h1 = (_bits_to_int(digest) % ec.N).to_bytes(_ORDER_BYTES, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac.new(k, v + b"\x00" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits_to_int(v)
        if 1 <= candidate < ec.N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign(private: PrivateKey, message: bytes) -> Signature:
    """Sign ``message`` (hashed internally with SHA-256)."""
    digest = hashlib.sha256(message).digest()
    z = _bits_to_int(digest)
    while True:
        k = _rfc6979_nonce(private, digest)
        point = ec.scalar_mult(k)
        assert point is not None
        r = point[0] % ec.N
        if r == 0:  # pragma: no cover - probability ~2^-256
            digest = hashlib.sha256(digest).digest()
            continue
        k_inv = ec.inverse_mod(k, ec.N)
        s = (k_inv * (z + r * private.d)) % ec.N
        if s == 0:  # pragma: no cover - probability ~2^-256
            digest = hashlib.sha256(digest).digest()
            continue
        # Low-s normalization (as Fabric/bitcoin do) keeps encodings unique.
        if s > ec.N // 2:
            s = ec.N - s
        return Signature(r, s)


def verify(public: PublicKey, message: bytes, signature: Signature) -> bool:
    """Return True iff ``signature`` is valid for ``message`` under ``public``."""
    r, s = signature.r, signature.s
    if not (1 <= r < ec.N and 1 <= s < ec.N):
        return False
    digest = hashlib.sha256(message).digest()
    z = _bits_to_int(digest)
    s_inv = ec.inverse_mod(s, ec.N)
    u1 = (z * s_inv) % ec.N
    u2 = (r * s_inv) % ec.N
    point = ec.point_add(ec.scalar_mult(u1), ec.scalar_mult(u2, public.point))
    if point is None:
        return False
    return point[0] % ec.N == r


def verify_or_raise(public: PublicKey, message: bytes, signature: Signature) -> None:
    """Like :func:`verify` but raises :class:`InvalidSignatureError` on failure."""
    if not verify(public, message, signature):
        raise InvalidSignatureError("ECDSA signature verification failed")
