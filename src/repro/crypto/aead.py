"""Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.

Layout of a sealed box::

    nonce (12) || ciphertext (len(plaintext)) || tag (32)

The MAC covers ``nonce || associated_data_length || associated_data ||
ciphertext`` so truncation and AD-swapping are both detected.
"""

from __future__ import annotations

import os

from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.hashing import constant_time_equal, hmac_sha256
from repro.errors import DecryptionError

NONCE_LEN = 12
TAG_LEN = 32
KEY_LEN = 64  # 32 bytes cipher key || 32 bytes MAC key


def _split_key(key: bytes) -> tuple[bytes, bytes]:
    if len(key) != KEY_LEN:
        raise ValueError(f"AEAD key must be {KEY_LEN} bytes, got {len(key)}")
    return key[:32], key[32:]


def _mac_input(nonce: bytes, associated_data: bytes, ciphertext: bytes) -> tuple[bytes, ...]:
    return (
        nonce,
        len(associated_data).to_bytes(8, "big"),
        associated_data,
        ciphertext,
    )


def seal(
    key: bytes,
    plaintext: bytes,
    associated_data: bytes = b"",
    nonce: bytes | None = None,
) -> bytes:
    """Encrypt and authenticate ``plaintext``.

    A random nonce is drawn unless one is supplied (tests only — reusing a
    nonce under the same key breaks confidentiality of a stream cipher).
    """
    cipher_key, mac_key = _split_key(key)
    if nonce is None:
        nonce = os.urandom(NONCE_LEN)
    if len(nonce) != NONCE_LEN:
        raise ValueError(f"nonce must be {NONCE_LEN} bytes, got {len(nonce)}")
    ciphertext = chacha20_xor(cipher_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, *_mac_input(nonce, associated_data, ciphertext))
    return nonce + ciphertext + tag


def open_(key: bytes, box: bytes, associated_data: bytes = b"") -> bytes:
    """Authenticate and decrypt a box produced by :func:`seal`.

    Raises :class:`DecryptionError` on any authentication failure; the error
    is deliberately uninformative to avoid oracle behaviour.
    """
    cipher_key, mac_key = _split_key(key)
    if len(box) < NONCE_LEN + TAG_LEN:
        raise DecryptionError("ciphertext too short")
    nonce = box[:NONCE_LEN]
    ciphertext = box[NONCE_LEN:-TAG_LEN]
    tag = box[-TAG_LEN:]
    expected = hmac_sha256(mac_key, *_mac_input(nonce, associated_data, ciphertext))
    if not constant_time_equal(tag, expected):
        raise DecryptionError("authentication tag mismatch")
    return chacha20_xor(cipher_key, nonce, ciphertext)
