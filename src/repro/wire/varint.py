"""Varint and zig-zag integer encodings (protobuf-compatible).

Unsigned integers are encoded 7 bits at a time, least-significant group
first, with the high bit of each byte flagging continuation. Signed
integers are zig-zag mapped first so small negative numbers stay small on
the wire.
"""

from __future__ import annotations

from repro.errors import DecodeError

MAX_VARINT_LEN = 10  # enough for a 64-bit value
_UINT64_MASK = (1 << 64) - 1


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer (< 2**64) as a varint."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    if value > _UINT64_MASK:
        raise ValueError(f"varint value {value} exceeds 64 bits")
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise DecodeError("truncated varint")
        if position - offset >= MAX_VARINT_LEN:
            raise DecodeError("varint longer than 10 bytes")
        byte = data[position]
        result |= (byte & 0x7F) << shift
        position += 1
        if not byte & 0x80:
            if result > _UINT64_MASK:
                raise DecodeError("varint overflows 64 bits")
            return result, position
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed 64-bit integer onto unsigned zig-zag space."""
    if not (-(1 << 63) <= value < (1 << 63)):
        raise ValueError(f"zig-zag value {value} outside signed 64-bit range")
    return ((value << 1) ^ (value >> 63)) & _UINT64_MASK


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)
