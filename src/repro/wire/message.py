"""Declarative message schemas over the varint/TLV wire format.

Messages are declared like::

    class Ping(Message):
        sequence = UintField(1)
        payload = BytesField(2)

and provide ``encode() -> bytes`` / ``Ping.decode(data)`` with protobuf
semantics: fields are tagged by number, default values are omitted from the
wire, unknown fields are preserved and re-emitted (forward compatibility),
and encoding is deterministic (ascending field order) so hashes and
signatures over encoded messages are stable.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, ClassVar, Iterator, Type, TypeVar

from repro.errors import DecodeError, EncodeError
from repro.wire.varint import decode_varint, encode_varint, zigzag_decode, zigzag_encode

WIRE_VARINT = 0
WIRE_FIXED64 = 1
WIRE_LENGTH_DELIMITED = 2

_M = TypeVar("_M", bound="Message")


def _encode_tag(number: int, wire_type: int) -> bytes:
    return encode_varint((number << 3) | wire_type)


def _decode_tag(data: bytes, offset: int) -> tuple[int, int, int]:
    key, offset = decode_varint(data, offset)
    return key >> 3, key & 0x7, offset


def _encode_length_delimited(payload: bytes) -> bytes:
    return encode_varint(len(payload)) + payload


class Field:
    """Base descriptor for a message field.

    Subclasses define the value <-> wire translation; the descriptor itself
    stores per-instance values in the owning message's ``__dict__``.
    """

    wire_type: ClassVar[int] = WIRE_VARINT

    def __init__(self, number: int) -> None:
        if not (1 <= number <= (1 << 29) - 1):
            raise ValueError(f"field number {number} out of range")
        self.number = number
        self.name = "<unbound>"

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, instance: Any, owner: type | None = None) -> Any:
        if instance is None:
            return self
        return instance.__dict__.setdefault(self.name, self.default())

    def __set__(self, instance: Any, value: Any) -> None:
        instance.__dict__[self.name] = self.validate(value)

    # -- hooks --------------------------------------------------------------

    def default(self) -> Any:
        raise NotImplementedError

    def validate(self, value: Any) -> Any:
        return value

    def is_default(self, value: Any) -> bool:
        return value == self.default()

    def encode_value(self, value: Any) -> Iterator[bytes]:
        """Yield complete ``tag || payload`` chunks for ``value``."""
        raise NotImplementedError

    def decode_value(self, current: Any, wire_type: int, payload: Any) -> Any:
        """Fold one wire occurrence into the field's current value.

        ``payload`` is an ``int`` for varint/fixed64 wire types and
        ``bytes`` for length-delimited.
        """
        raise NotImplementedError

    def _expect(self, wire_type: int) -> None:
        if wire_type != self.wire_type:
            raise DecodeError(
                f"field {self.name!r} (#{self.number}) expected wire type "
                f"{self.wire_type}, got {wire_type}"
            )


class UintField(Field):
    """Unsigned 64-bit integer (varint)."""

    def default(self) -> int:
        return 0

    def validate(self, value: Any) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise EncodeError(f"field {self.name!r} requires a non-negative int")
        return value

    def encode_value(self, value: int) -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_VARINT) + encode_varint(value)

    def decode_value(self, current: int, wire_type: int, payload: int) -> int:
        self._expect(wire_type)
        return payload


class SintField(Field):
    """Signed 64-bit integer (zig-zag varint)."""

    def default(self) -> int:
        return 0

    def validate(self, value: Any) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise EncodeError(f"field {self.name!r} requires an int")
        return value

    def encode_value(self, value: int) -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_VARINT) + encode_varint(zigzag_encode(value))

    def decode_value(self, current: int, wire_type: int, payload: int) -> int:
        self._expect(wire_type)
        return zigzag_decode(payload)


class BoolField(Field):
    """Boolean (varint 0/1)."""

    def default(self) -> bool:
        return False

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise EncodeError(f"field {self.name!r} requires a bool")
        return value

    def encode_value(self, value: bool) -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_VARINT) + encode_varint(int(value))

    def decode_value(self, current: bool, wire_type: int, payload: int) -> bool:
        self._expect(wire_type)
        return bool(payload)


class DoubleField(Field):
    """IEEE-754 double (fixed64, little-endian)."""

    wire_type = WIRE_FIXED64

    def default(self) -> float:
        return 0.0

    def validate(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EncodeError(f"field {self.name!r} requires a float")
        return float(value)

    def encode_value(self, value: float) -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_FIXED64) + struct.pack("<d", value)

    def decode_value(self, current: float, wire_type: int, payload: int) -> float:
        self._expect(wire_type)
        return struct.unpack("<d", payload.to_bytes(8, "little"))[0]


class StringField(Field):
    """UTF-8 string (length-delimited)."""

    wire_type = WIRE_LENGTH_DELIMITED

    def default(self) -> str:
        return ""

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise EncodeError(f"field {self.name!r} requires a str")
        return value

    def encode_value(self, value: str) -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_LENGTH_DELIMITED) + _encode_length_delimited(
            value.encode("utf-8")
        )

    def decode_value(self, current: str, wire_type: int, payload: bytes) -> str:
        self._expect(wire_type)
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"field {self.name!r} is not valid UTF-8") from exc


class BytesField(Field):
    """Raw bytes (length-delimited)."""

    wire_type = WIRE_LENGTH_DELIMITED

    def default(self) -> bytes:
        return b""

    def validate(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise EncodeError(f"field {self.name!r} requires bytes")
        return bytes(value)

    def encode_value(self, value: bytes) -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_LENGTH_DELIMITED) + _encode_length_delimited(value)

    def decode_value(self, current: bytes, wire_type: int, payload: bytes) -> bytes:
        self._expect(wire_type)
        return payload


class MessageField(Field):
    """A nested message (length-delimited)."""

    wire_type = WIRE_LENGTH_DELIMITED

    def __init__(self, number: int, message_type: Callable[[], Type["Message"]] | Type["Message"]) -> None:
        super().__init__(number)
        self._message_type = message_type

    @property
    def message_type(self) -> Type["Message"]:
        if isinstance(self._message_type, type):
            return self._message_type
        resolved = self._message_type()
        self._message_type = resolved
        return resolved

    def default(self) -> "Message | None":
        return None

    def is_default(self, value: Any) -> bool:
        return value is None

    def validate(self, value: Any) -> Any:
        if value is not None and not isinstance(value, self.message_type):
            raise EncodeError(
                f"field {self.name!r} requires {self.message_type.__name__} or None"
            )
        return value

    def encode_value(self, value: "Message") -> Iterator[bytes]:
        yield _encode_tag(self.number, WIRE_LENGTH_DELIMITED) + _encode_length_delimited(
            value.encode()
        )

    def decode_value(self, current: Any, wire_type: int, payload: bytes) -> "Message":
        self._expect(wire_type)
        return self.message_type.decode(payload)


class _RepeatedField(Field):
    """Shared machinery for repeated (list-valued) fields."""

    wire_type = WIRE_LENGTH_DELIMITED

    def default(self) -> list:
        return []

    def is_default(self, value: Any) -> bool:
        return not value

    def validate(self, value: Any) -> list:
        if not isinstance(value, (list, tuple)):
            raise EncodeError(f"field {self.name!r} requires a list")
        return [self._validate_item(item) for item in value]

    def _validate_item(self, item: Any) -> Any:
        raise NotImplementedError

    def _encode_item(self, item: Any) -> bytes:
        raise NotImplementedError

    def _decode_item(self, payload: bytes) -> Any:
        raise NotImplementedError

    def encode_value(self, value: list) -> Iterator[bytes]:
        for item in value:
            yield _encode_tag(self.number, WIRE_LENGTH_DELIMITED) + _encode_length_delimited(
                self._encode_item(item)
            )

    def decode_value(self, current: list, wire_type: int, payload: bytes) -> list:
        self._expect(wire_type)
        return [*current, self._decode_item(payload)]


class RepeatedStringField(_RepeatedField):
    """``repeated string``."""

    def _validate_item(self, item: Any) -> str:
        if not isinstance(item, str):
            raise EncodeError(f"field {self.name!r} items must be str")
        return item

    def _encode_item(self, item: str) -> bytes:
        return item.encode("utf-8")

    def _decode_item(self, payload: bytes) -> str:
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"field {self.name!r} item is not valid UTF-8") from exc


class RepeatedBytesField(_RepeatedField):
    """``repeated bytes``."""

    def _validate_item(self, item: Any) -> bytes:
        if not isinstance(item, (bytes, bytearray)):
            raise EncodeError(f"field {self.name!r} items must be bytes")
        return bytes(item)

    def _encode_item(self, item: bytes) -> bytes:
        return item

    def _decode_item(self, payload: bytes) -> bytes:
        return payload


class RepeatedMessageField(_RepeatedField):
    """``repeated <Message>``."""

    def __init__(self, number: int, message_type: Callable[[], Type["Message"]] | Type["Message"]) -> None:
        super().__init__(number)
        self._message_type = message_type

    @property
    def message_type(self) -> Type["Message"]:
        if isinstance(self._message_type, type):
            return self._message_type
        resolved = self._message_type()
        self._message_type = resolved
        return resolved

    def _validate_item(self, item: Any) -> "Message":
        if not isinstance(item, self.message_type):
            raise EncodeError(
                f"field {self.name!r} items must be {self.message_type.__name__}"
            )
        return item

    def _encode_item(self, item: "Message") -> bytes:
        return item.encode()

    def _decode_item(self, payload: bytes) -> "Message":
        return self.message_type.decode(payload)


class MapField(Field):
    """``map<string, string>`` encoded as repeated key/value entry messages.

    Each entry is a nested message with field 1 = key (string) and
    field 2 = value (string), matching protobuf's map encoding. Keys are
    emitted in sorted order for deterministic serialization.
    """

    wire_type = WIRE_LENGTH_DELIMITED

    def default(self) -> dict:
        return {}

    def is_default(self, value: Any) -> bool:
        return not value

    def validate(self, value: Any) -> dict:
        if not isinstance(value, dict):
            raise EncodeError(f"field {self.name!r} requires a dict")
        for key, item in value.items():
            if not isinstance(key, str) or not isinstance(item, str):
                raise EncodeError(f"field {self.name!r} requires str keys and values")
        return dict(value)

    def encode_value(self, value: dict) -> Iterator[bytes]:
        for key in sorted(value):
            entry = (
                _encode_tag(1, WIRE_LENGTH_DELIMITED)
                + _encode_length_delimited(key.encode("utf-8"))
                + _encode_tag(2, WIRE_LENGTH_DELIMITED)
                + _encode_length_delimited(value[key].encode("utf-8"))
            )
            yield _encode_tag(self.number, WIRE_LENGTH_DELIMITED) + _encode_length_delimited(
                entry
            )

    def decode_value(self, current: dict, wire_type: int, payload: bytes) -> dict:
        self._expect(wire_type)
        key = ""
        item = ""
        offset = 0
        while offset < len(payload):
            number, entry_wire, offset = _decode_tag(payload, offset)
            if entry_wire != WIRE_LENGTH_DELIMITED:
                raise DecodeError(f"map entry in field {self.name!r} has bad wire type")
            length, offset = decode_varint(payload, offset)
            if offset + length > len(payload):
                raise DecodeError(f"truncated map entry in field {self.name!r}")
            chunk = payload[offset : offset + length]
            offset += length
            if number == 1:
                key = chunk.decode("utf-8")
            elif number == 2:
                item = chunk.decode("utf-8")
        merged = dict(current)
        merged[key] = item
        return merged


class Message:
    """Base class for wire-encodable messages."""

    _fields_by_name: ClassVar[dict[str, Field]]
    _fields_by_number: ClassVar[dict[int, Field]]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        by_name: dict[str, Field] = {}
        by_number: dict[int, Field] = {}
        for base in reversed(cls.__mro__):
            for name, attr in vars(base).items():
                if isinstance(attr, Field):
                    if attr.number in by_number and by_number[attr.number].name != name:
                        raise TypeError(
                            f"{cls.__name__}: duplicate field number {attr.number}"
                        )
                    by_name[name] = attr
                    by_number[attr.number] = attr
        cls._fields_by_name = by_name
        cls._fields_by_number = by_number

    def __init__(self, **kwargs: Any) -> None:
        self._unknown: list[tuple[int, int, Any]] = []
        for name, value in kwargs.items():
            if name not in self._fields_by_name:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r}; "
                    f"known fields: {sorted(self._fields_by_name)}"
                )
            setattr(self, name, value)

    # -- encoding -----------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to deterministic wire bytes."""
        chunks: list[bytes] = []
        for number in sorted(self._fields_by_number):
            field = self._fields_by_number[number]
            value = getattr(self, field.name)
            if field.is_default(value):
                continue
            chunks.extend(field.encode_value(value))
        for number, wire_type, payload in self._unknown:
            if wire_type == WIRE_VARINT:
                chunks.append(_encode_tag(number, wire_type) + encode_varint(payload))
            elif wire_type == WIRE_FIXED64:
                chunks.append(
                    _encode_tag(number, wire_type) + payload.to_bytes(8, "little")
                )
            else:
                chunks.append(
                    _encode_tag(number, wire_type) + _encode_length_delimited(payload)
                )
        return b"".join(chunks)

    @classmethod
    def decode(cls: Type[_M], data: bytes) -> _M:
        """Parse wire bytes into a message instance.

        Unknown field numbers are retained and re-emitted by ``encode`` so
        old readers can relay messages from newer protocol versions intact.
        """
        instance = cls()
        offset = 0
        while offset < len(data):
            number, wire_type, offset = _decode_tag(data, offset)
            if number == 0:
                raise DecodeError("field number 0 is reserved")
            payload: Any
            if wire_type == WIRE_VARINT:
                payload, offset = decode_varint(data, offset)
            elif wire_type == WIRE_FIXED64:
                if offset + 8 > len(data):
                    raise DecodeError("truncated fixed64 value")
                payload = int.from_bytes(data[offset : offset + 8], "little")
                offset += 8
            elif wire_type == WIRE_LENGTH_DELIMITED:
                length, offset = decode_varint(data, offset)
                if offset + length > len(data):
                    raise DecodeError("truncated length-delimited value")
                payload = data[offset : offset + length]
                offset += length
            else:
                raise DecodeError(f"unsupported wire type {wire_type}")
            field = cls._fields_by_number.get(number)
            if field is None:
                instance._unknown.append((number, wire_type, payload))
                continue
            current = getattr(instance, field.name)
            instance.__dict__[field.name] = field.decode_value(current, wire_type, payload)
        return instance

    # -- ergonomics ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self._fields_by_name
        )

    def __repr__(self) -> str:
        parts = []
        for name, field in self._fields_by_name.items():
            value = getattr(self, name)
            if not field.is_default(value):
                parts.append(f"{name}={value!r}")
        return f"{type(self).__name__}({', '.join(parts)})"

    def to_dict(self) -> dict:
        """Debug-friendly plain-dict rendering (bytes become hex)."""
        result: dict[str, Any] = {}
        for name in self._fields_by_name:
            value = getattr(self, name)
            result[name] = _dictify(value)
        return result


def _dictify(value: Any) -> Any:
    if isinstance(value, Message):
        return value.to_dict()
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, list):
        return [_dictify(item) for item in value]
    if isinstance(value, dict):
        return {key: _dictify(item) for key, item in value.items()}
    return value
