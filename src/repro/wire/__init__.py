"""Protobuf-style binary wire format.

The paper's relays "communicate using a shared network-neutral protocol
specified using Protocol Buffers which enables efficient wire
communication" (§3.2). This package implements that serialization layer
from scratch: varint/zig-zag primitives, a tag-length-value codec, and a
declarative message-schema system with forward-compatible unknown-field
handling.

The concrete interop message schemas live in :mod:`repro.proto`.
"""

from repro.wire.varint import decode_varint, encode_varint, zigzag_decode, zigzag_encode
from repro.wire.message import (
    BoolField,
    BytesField,
    DoubleField,
    Field,
    MapField,
    Message,
    MessageField,
    RepeatedBytesField,
    RepeatedMessageField,
    RepeatedStringField,
    SintField,
    StringField,
    UintField,
)

__all__ = [
    "encode_varint",
    "decode_varint",
    "zigzag_encode",
    "zigzag_decode",
    "Message",
    "Field",
    "UintField",
    "SintField",
    "BoolField",
    "DoubleField",
    "StringField",
    "BytesField",
    "MessageField",
    "MapField",
    "RepeatedStringField",
    "RepeatedBytesField",
    "RepeatedMessageField",
]
