"""repro: trusted data transfer between enterprise blockchain networks.

A from-scratch Python reproduction of *"Enabling Enterprise Blockchain
Interoperability with Trusted Data Transfer"* (Abebe et al., Middleware
2019): per-network relay services with pluggable drivers and discovery, a
network-neutral wire protocol, and consensus-governed system contracts for
data exposure control and proof-based data acceptance — plus every
substrate the paper depends on (a Fabric-like execute-order-validate
platform, Corda-like and Quorum-like platforms, and a pure-Python crypto
stack).

Quickstart::

    from repro.apps import build_trade_scenario, run_full_use_case

    scenario = build_trade_scenario()
    result = run_full_use_case(scenario)
    assert result.final_lc["status"] == "PAID"

Package map:

- :mod:`repro.crypto` -- ECDSA/P-256, ECIES, certificates, Merkle trees
- :mod:`repro.wire` / :mod:`repro.proto` -- the network-neutral protocol
- :mod:`repro.fabric` -- Hyperledger Fabric-like substrate
- :mod:`repro.corda`, :mod:`repro.quorum` -- alternative platforms
- :mod:`repro.interop` -- relays, drivers, system contracts, proofs (the
  paper's contribution)
- :mod:`repro.api` -- the unified application-facing gateway: fluent
  queries, batched pipelined execution, relay middleware chain
- :mod:`repro.apps` -- the STL/SWT trade use case
- :mod:`repro.sim` -- latency models, metrics, SLOC accounting
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
