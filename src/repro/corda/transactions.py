"""Corda-style transactions: consume input states, produce output states."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ecdsa import Signature, verify
from repro.crypto.keys import PublicKey
from repro.errors import LedgerError
from repro.corda.states import LinearState, StateRef
from repro.utils.encoding import canonical_json
from repro.utils.ids import deterministic_id


@dataclass
class CordaTransaction:
    """A signed state transition.

    ``signatures`` maps node name -> signature over :meth:`signable_bytes`;
    ``notary_signature`` is the uniqueness attestation added last.
    """

    inputs: list[StateRef]
    outputs: list[LinearState]
    command: str
    proposer: str
    required_signers: list[str]
    timestamp: float = 0.0
    signatures: dict[str, bytes] = field(default_factory=dict)
    notary_signature: bytes | None = None

    @property
    def tx_id(self) -> str:
        return deterministic_id(self.signable_bytes(), prefix="corda-tx-")

    def signable_bytes(self) -> bytes:
        return canonical_json(
            {
                "inputs": [ref.key() for ref in self.inputs],
                "outputs": [output.to_bytes().hex() for output in self.outputs],
                "command": self.command,
                "proposer": self.proposer,
                "required_signers": sorted(self.required_signers),
                "timestamp": self.timestamp,
            }
        )

    def add_signature(self, signer: str, signature_bytes: bytes) -> None:
        self.signatures[signer] = signature_bytes

    def verify_signature(self, signer: str, public_key: PublicKey) -> bool:
        raw = self.signatures.get(signer)
        if raw is None:
            return False
        return verify(public_key, self.signable_bytes(), Signature.from_bytes(raw))

    def is_fully_signed(self) -> bool:
        return all(signer in self.signatures for signer in self.required_signers)

    def require_fully_signed(self) -> None:
        missing = [s for s in self.required_signers if s not in self.signatures]
        if missing:
            raise LedgerError(
                f"transaction {self.tx_id} is missing signatures from {missing}"
            )

    def output_ref(self, index: int) -> StateRef:
        if not (0 <= index < len(self.outputs)):
            raise LedgerError(f"transaction {self.tx_id} has no output {index}")
        return StateRef(tx_id=self.tx_id, index=index)
