"""Corda nodes: vaults and the signature-gathering flow."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import LedgerError
from repro.fabric.identity import Identity
from repro.corda.states import LinearState, StateRef
from repro.corda.transactions import CordaTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.corda.network import CordaNetwork

# A contract verifier: raises on an invalid (inputs, outputs, command) triple.
ContractVerifier = Callable[[list[LinearState], list[LinearState], str], None]


class CordaNode:
    """One Corda node: identity, vault, and flow participation."""

    def __init__(self, identity: Identity, network: "CordaNetwork") -> None:
        self.identity = identity
        self._network = network
        # vault: unconsumed states visible to this node
        self._vault: dict[str, tuple[StateRef, LinearState]] = {}
        self.transactions: dict[str, CordaTransaction] = {}

    @property
    def name(self) -> str:
        return self.identity.name

    @property
    def org(self) -> str:
        return self.identity.org

    # -- vault -----------------------------------------------------------------

    def vault_states(self, kind: str | None = None) -> list[LinearState]:
        states = [state for _, state in self._vault.values()]
        if kind is not None:
            states = [state for state in states if state.kind == kind]
        return states

    def lookup(self, linear_id: str) -> tuple[StateRef, LinearState]:
        entry = self._vault.get(linear_id)
        if entry is None:
            raise LedgerError(
                f"node {self.name!r} holds no unconsumed state {linear_id!r}"
            )
        return entry

    def _record(self, transaction: CordaTransaction) -> None:
        self.transactions[transaction.tx_id] = transaction
        consumed_ids = set()
        for ref in transaction.inputs:
            for linear_id, (held_ref, _) in list(self._vault.items()):
                if held_ref.key() == ref.key():
                    consumed_ids.add(linear_id)
        for linear_id in consumed_ids:
            del self._vault[linear_id]
        for index, output in enumerate(transaction.outputs):
            if self.name in output.participants:
                self._vault[output.linear_id] = (transaction.output_ref(index), output)

    # -- flows -----------------------------------------------------------------

    def sign_if_valid(self, transaction: CordaTransaction) -> None:
        """Counterparty half of the flow: verify the contract, then sign."""
        inputs = self._network.resolve_inputs(transaction)
        self._network.verify_contract(inputs, transaction.outputs, transaction.command)
        transaction.add_signature(
            self.name, self.identity.sign(transaction.signable_bytes()).to_bytes()
        )

    def propose(
        self,
        inputs: list[StateRef],
        outputs: list[LinearState],
        command: str,
    ) -> CordaTransaction:
        """Initiate a flow: build, self-sign, gather signatures, notarize.

        Every participant of every output (plus this node) must sign; the
        notary then checks uniqueness and countersigns; finally all
        participants record the transaction in their vaults.
        """
        signers = {self.name}
        for output in outputs:
            signers.update(output.participants)
        transaction = CordaTransaction(
            inputs=inputs,
            outputs=outputs,
            command=command,
            proposer=self.name,
            required_signers=sorted(signers),
            timestamp=self._network.clock.now(),
        )
        resolved_inputs = self._network.resolve_inputs(transaction)
        self._network.verify_contract(resolved_inputs, outputs, command)
        transaction.add_signature(
            self.name, self.identity.sign(transaction.signable_bytes()).to_bytes()
        )
        for signer in transaction.required_signers:
            if signer == self.name:
                continue
            self._network.node(signer).sign_if_valid(transaction)
        self._network.notary.notarize(transaction)
        for participant in transaction.required_signers:
            self._network.node(participant)._record(transaction)
        self._network.record_transaction(transaction)
        return transaction
