"""Corda-style states and state references."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.encoding import canonical_json


@dataclass(frozen=True)
class StateRef:
    """A pointer to one output of a previous transaction."""

    tx_id: str
    index: int

    def key(self) -> str:
        return f"{self.tx_id}:{self.index}"


@dataclass(frozen=True)
class LinearState:
    """A fact shared among ``participants``, evolving under a ``linear_id``.

    Corda linear states keep a stable identity across updates: consuming a
    state and producing a successor with the same ``linear_id`` models an
    update to the same real-world fact (here: a trade document).
    """

    linear_id: str
    kind: str
    data: dict = field(default_factory=dict)
    participants: tuple[str, ...] = ()

    def to_bytes(self) -> bytes:
        return canonical_json(
            {
                "linear_id": self.linear_id,
                "kind": self.kind,
                "data": self.data,
                "participants": list(self.participants),
            }
        )
