"""The notary: Corda's uniqueness (anti-double-spend) consensus service."""

from __future__ import annotations

from repro.crypto.ecdsa import Signature, verify
from repro.errors import NotaryError
from repro.fabric.identity import Identity
from repro.corda.transactions import CordaTransaction


class Notary:
    """Tracks consumed state references and signs valid transactions.

    "In Corda, a verification policy can be specified to include signatures
    from notaries, which will be involved in access control, proof
    generation and verification" (§5) — the notary therefore carries a
    normal network identity so it can attest interop queries too.
    """

    def __init__(self, identity: Identity) -> None:
        self.identity = identity
        self._consumed: dict[str, str] = {}  # state-ref key -> consuming tx

    @property
    def name(self) -> str:
        return self.identity.name

    def notarize(self, transaction: CordaTransaction) -> bytes:
        """Validate uniqueness and countersign the transaction."""
        transaction.require_fully_signed()
        for ref in transaction.inputs:
            consumer = self._consumed.get(ref.key())
            if consumer is not None and consumer != transaction.tx_id:
                raise NotaryError(
                    f"state {ref.key()} was already consumed by {consumer}: "
                    f"double spend rejected"
                )
        for ref in transaction.inputs:
            self._consumed[ref.key()] = transaction.tx_id
        signature = self.identity.sign(transaction.signable_bytes()).to_bytes()
        transaction.notary_signature = signature
        return signature

    def verify_notarization(self, transaction: CordaTransaction) -> bool:
        if transaction.notary_signature is None:
            return False
        return verify(
            self.identity.keypair.public,
            transaction.signable_bytes(),
            Signature.from_bytes(transaction.notary_signature),
        )

    def is_consumed(self, ref_key: str) -> bool:
        return ref_key in self._consumed
