"""The Corda-like network: nodes, notary, contracts, config export."""

from __future__ import annotations

from typing import Callable

from repro.errors import LedgerError, MembershipError
from repro.fabric.identity import Organization
from repro.corda.node import CordaNode
from repro.corda.notary import Notary
from repro.corda.states import LinearState
from repro.corda.transactions import CordaTransaction
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg, PeerConfigMsg
from repro.utils.clock import Clock, SystemClock

ContractVerifier = Callable[[list[LinearState], list[LinearState], str], None]


def _default_contract(
    inputs: list[LinearState], outputs: list[LinearState], command: str
) -> None:
    """Permissive default: any well-formed transition is acceptable."""
    if not outputs and not inputs:
        raise LedgerError("a transaction must consume or produce at least one state")


class CordaNetwork:
    """A set of Corda nodes sharing a notary and a doorman-style identity root.

    Each node is modeled as its own one-node organization (as Corda
    identities are per-node), which maps cleanly onto the interop
    protocol's ``org:`` verification-policy leaves.
    """

    def __init__(self, name: str, clock: Clock | None = None) -> None:
        self.name = name
        self.clock = clock or SystemClock()
        self._nodes: dict[str, CordaNode] = {}
        self._orgs: dict[str, Organization] = {}
        self._contracts: dict[str, ContractVerifier] = {}
        self.transactions: dict[str, CordaTransaction] = {}
        #: Finality observers: called with each transaction after it is
        #: recorded network-wide (the Corda analogue of Fabric's event hub;
        #: used by the interop driver's event taps).
        self._observers: list[Callable[[CordaTransaction], None]] = []
        notary_org = Organization("notary-org", network=name)
        self._orgs["notary-org"] = notary_org
        self.notary = Notary(notary_org.enroll("notary", role="peer"))

    # -- membership ---------------------------------------------------------------

    def add_node(self, node_name: str) -> CordaNode:
        if node_name in self._nodes:
            raise MembershipError(f"node {node_name!r} already exists")
        org = Organization(node_name, network=self.name)
        self._orgs[node_name] = org
        identity = org.enroll(node_name, role="peer")
        node = CordaNode(identity, self)
        self._nodes[node_name] = node
        return node

    def node(self, node_name: str) -> CordaNode:
        try:
            return self._nodes[node_name]
        except KeyError:
            raise MembershipError(
                f"corda network {self.name!r} has no node {node_name!r}"
            ) from None

    @property
    def nodes(self) -> list[CordaNode]:
        return list(self._nodes.values())

    # -- contracts -------------------------------------------------------------------

    def register_contract(self, command: str, verifier: ContractVerifier) -> None:
        self._contracts[command] = verifier

    def verify_contract(
        self, inputs: list[LinearState], outputs: list[LinearState], command: str
    ) -> None:
        verifier = self._contracts.get(command, _default_contract)
        verifier(inputs, outputs, command)

    # -- transaction resolution ---------------------------------------------------------

    def add_transaction_observer(
        self, observer: Callable[[CordaTransaction], None]
    ) -> None:
        """Register an observer fired after each network-wide finality."""
        self._observers.append(observer)

    def remove_transaction_observer(
        self, observer: Callable[[CordaTransaction], None]
    ) -> None:
        """Deregister an observer (no-op if it is not registered)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def sequence_of(self, tx_id: str) -> int:
        """Finality order of ``tx_id`` (the Corda stand-in for a block
        number: notarization imposes a total order on this network)."""
        for position, known in enumerate(self.transactions):
            if known == tx_id:
                return position
        raise LedgerError(f"network {self.name!r} has no transaction {tx_id!r}")

    def record_transaction(self, transaction: CordaTransaction) -> None:
        self.transactions[transaction.tx_id] = transaction
        for observer in list(self._observers):
            observer(transaction)

    def resolve_inputs(self, transaction: CordaTransaction) -> list[LinearState]:
        resolved = []
        for ref in transaction.inputs:
            source = self.transactions.get(ref.tx_id)
            if source is None:
                raise LedgerError(f"unknown input transaction {ref.tx_id!r}")
            if not (0 <= ref.index < len(source.outputs)):
                raise LedgerError(f"input {ref.key()} is out of range")
            resolved.append(source.outputs[ref.index])
        return resolved

    # -- interop configuration export -----------------------------------------------------

    def export_config(self) -> NetworkConfigMsg:
        """Identity configuration for recording on foreign ledgers (§3.3).

        Includes the notary as an attesting organization, since Corda
        verification policies may require notary signatures (§5).
        """
        organizations = []
        for org_id in sorted(self._orgs):
            org = self._orgs[org_id]
            members = org.members(role="peer")
            organizations.append(
                OrganizationConfigMsg(
                    org_id=org_id,
                    msp_id=org.msp.msp_id,
                    root_certificate=org.msp.root_certificate.to_bytes(),
                    peers=[
                        PeerConfigMsg(
                            peer_id=member.id,
                            org=org_id,
                            endpoint=f"sim://{self.name}/{member.id}",
                            certificate=member.certificate.to_bytes(),
                        )
                        for member in members
                    ],
                )
            )
        return NetworkConfigMsg(
            network_id=self.name,
            platform="corda",
            organizations=organizations,
            ledgers=["vault"],
        )
