"""Corda-like permissioned DLT substrate.

A minimal but behaviourally-real Corda model for the paper's §5
generalization claim ("the relay service ... can be directly reused in
networks built on Corda or Quorum ... In Corda, a verification policy can
be specified to include signatures from notaries"):

- UTXO-style :class:`LinearState` records held in per-node vaults;
- transactions signed by all participants and by a :class:`Notary`
  providing uniqueness consensus (double-spend prevention);
- a doorman-rooted identity scheme (one MSP-style root per node org).
"""

from repro.corda.states import LinearState, StateRef
from repro.corda.transactions import CordaTransaction
from repro.corda.notary import Notary
from repro.corda.node import CordaNode
from repro.corda.network import CordaNetwork

__all__ = [
    "LinearState",
    "StateRef",
    "CordaTransaction",
    "Notary",
    "CordaNode",
    "CordaNetwork",
]
