"""Liveness and readiness checks for relay deployments.

Liveness is implicit (the probe listener answering at all); readiness is
a conjunction of named checks — for a relay: the service accepting
requests, at least one driver attached, and the state store answering
reads. ROADMAP item 1's endpoint eviction is designed to poll exactly
this surface.

Checks run *outside* the probe's lock (a slow store read must not block
concurrent check registration), and a crashing check reports not-ready
with its error rather than taking the probe down.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Tuple

#: A check returns ``bool`` or ``(bool, detail)``.
CheckFn = Callable[[], "bool | tuple[bool, str]"]


@dataclass(frozen=True)
class CheckResult:
    """One readiness check's outcome."""

    name: str
    ok: bool
    detail: str = ""


class HealthProbe:
    """A named set of readiness checks with an aggregate verdict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checks: "OrderedDict[str, CheckFn]" = OrderedDict()

    def add_check(self, name: str, check: CheckFn) -> None:
        """Register (or replace) the check called ``name``."""
        with self._lock:
            self._checks[name] = check

    def ready(self) -> Tuple[bool, Tuple[CheckResult, ...]]:
        """Run every check; ``(all_ok, per-check results)``."""
        with self._lock:
            checks = list(self._checks.items())
        results = []
        for name, check in checks:
            try:
                outcome = check()
            except Exception as error:  # noqa: BLE001 - a crashing check means not-ready, never a crashed probe
                results.append(CheckResult(name=name, ok=False, detail=repr(error)))
                continue
            if isinstance(outcome, tuple):
                ok, detail = outcome
            else:
                ok, detail = bool(outcome), ""
            results.append(CheckResult(name=name, ok=bool(ok), detail=detail))
        return all(result.ok for result in results), tuple(results)


def relay_checks(service) -> HealthProbe:
    """The standard readiness checks for a :class:`RelayService`:
    service accepting, ≥1 driver attached, store answering reads."""
    probe = HealthProbe()

    def _available() -> "tuple[bool, str]":
        return bool(service.available), "accepting" if service.available else "draining"

    def _drivers() -> "tuple[bool, str]":
        networks = service.driver_networks
        return bool(networks), ",".join(sorted(networks)) or "none attached"

    def _store() -> "tuple[bool, str]":
        service.store.get("ops/readiness", "probe")  # any read proves the store is open
        return True, type(service.store).__name__

    probe.add_check("relay_available", _available)
    probe.add_check("drivers_attached", _drivers)
    probe.add_check("store_open", _store)
    return probe


__all__ = ["CheckFn", "CheckResult", "HealthProbe", "relay_checks"]
