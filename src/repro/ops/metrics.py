"""The central metrics registry and its Prometheus text rendering.

One :class:`MetricsRegistry` per process (or per relay deployment) is
the single place every layer reports into: interceptors and servers
create *instruments* (:class:`Counter` / :class:`Gauge` /
:class:`Histogram`) up front, while stats objects that already keep
their own lock-guarded counters (:class:`~repro.interop.relay.RelayStats`,
:class:`~repro.net.server.RelayServerStats`, the store backends) are
read at scrape time through registered *collectors* (see
:mod:`repro.ops.exporters`). :meth:`MetricsRegistry.render` produces the
Prometheus text exposition format (version 0.0.4) served by the
:class:`~repro.ops.probe.OpsProbeServer`.

Label sets are bounded: each instrument folds label combinations beyond
``max_series`` into a reserved ``_other`` series, so an adversarial or
buggy label source (say, per-request ids used as labels) cannot grow the
registry without bound.

Thread-safety: instruments guard their series map with one lock each and
the registry guards its tables with its own; no lock is ever held across
a collector call or while rendering, so a slow collector cannot stall
concurrent instrument updates.
"""

from __future__ import annotations

import bisect
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

#: Default latency buckets (seconds): sub-millisecond in-process calls up
#: through multi-second consensus round-trips.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Reserved label value the overflow series uses for every label once an
#: instrument's ``max_series`` bound is reached.
OVERFLOW_LABEL_VALUE = "_other"

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One series' labels as a stable tuple of ``(name, value)`` pairs.
LabelPairs = tuple

#: A collector returns fully-formed families read at scrape time.
Collector = Callable[[], Iterable["MetricFamily"]]


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def escape_help(text: str) -> str:
    """Escape a HELP string per the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render one sample value (``+Inf`` aware, integers without dot)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


@dataclass(frozen=True)
class MetricFamily:
    """One renderable family: a name, a kind, and its sample series.

    ``samples`` is a tuple whose element shape depends on ``kind``:

    - counter/gauge: ``(label_pairs, value)``
    - histogram: ``(label_pairs, cumulative_counts, sum)`` where
      ``cumulative_counts`` aligns with ``buckets`` plus a final ``+Inf``
      slot (its last element is the series count).
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: tuple
    buckets: tuple = ()


def counter_family(name: str, help_text: str, samples: Iterable) -> MetricFamily:
    """A counter family from ``(label_pairs, value)`` samples."""
    return MetricFamily(name=name, kind="counter", help=help_text, samples=tuple(samples))


def gauge_family(name: str, help_text: str, samples: Iterable) -> MetricFamily:
    """A gauge family from ``(label_pairs, value)`` samples."""
    return MetricFamily(name=name, kind="gauge", help=help_text, samples=tuple(samples))


class _Instrument:
    """Shared machinery: name/label validation and the bounded series map."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        max_series: int = 64,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if max_series < 1:
            raise ValueError("max_series must be >= 1")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(tuple(label_names)):
            raise ValueError(f"duplicate label names in {tuple(label_names)!r}")
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: "OrderedDict[tuple, object]" = OrderedDict()

    def _key(self, labels: Mapping[str, object]) -> tuple:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _slot(self, key: tuple) -> tuple:
        """The series key to use, folding overflow into ``_other``.

        Must be called with :attr:`_lock` held.
        """
        if key in self._series or len(self._series) < self.max_series:
            return key
        return tuple(OVERFLOW_LABEL_VALUE for _ in self.label_names)

    def _pairs(self, key: tuple) -> LabelPairs:
        return tuple(zip(self.label_names, key))


class Counter(_Instrument):
    """A monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        key = self._key(labels)
        with self._lock:
            slot = self._slot(key)
            self._series[slot] = float(self._series.get(slot, 0.0)) + amount  # type: ignore[arg-type]

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))  # type: ignore[arg-type]

    def family(self) -> MetricFamily:
        with self._lock:
            samples = tuple(
                (self._pairs(key), value) for key, value in self._series.items()
            )
        if not samples and not self.label_names:
            samples = (((), 0.0),)
        return MetricFamily(
            name=self.name, kind=self.kind, help=self.help, samples=samples
        )


class Gauge(Counter):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[self._slot(key)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            slot = self._slot(key)
            self._series[slot] = float(self._series.get(slot, 0.0)) + amount  # type: ignore[arg-type]

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class _HistogramSeries:
    """Per-bucket counts (non-cumulative), running sum, and count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, slots: int) -> None:
        self.counts = [0] * slots
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """A latency/size distribution with fixed cumulative buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = 64,
    ) -> None:
        super().__init__(name, help_text, label_names, max_series)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds!r}")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            slot = self._slot(key)
            series = self._series.get(slot)
            if series is None:
                series = _HistogramSeries(len(self.buckets) + 1)
                self._series[slot] = series
            series.counts[index] += 1  # type: ignore[union-attr]
            series.total += float(value)  # type: ignore[union-attr]
            series.count += 1  # type: ignore[union-attr]

    def family(self) -> MetricFamily:
        with self._lock:
            snapshot = [
                (key, list(series.counts), series.total)  # type: ignore[union-attr]
                for key, series in self._series.items()
            ]
        samples = []
        for key, counts, total in snapshot:
            cumulative, running = [], 0
            for bucket_count in counts:
                running += bucket_count
                cumulative.append(running)
            samples.append((self._pairs(key), tuple(cumulative), total))
        return MetricFamily(
            name=self.name,
            kind=self.kind,
            help=self.help,
            samples=tuple(samples),
            buckets=self.buckets,
        )


class MetricsRegistry:
    """The process-wide table of instruments and scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, _Instrument]" = OrderedDict()
        self._collectors: list[Collector] = []

    # -- instrument factories -----------------------------------------------------

    def counter(
        self, name: str, help_text: str, label_names: Sequence[str] = (), **options
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, label_names, **options)

    def gauge(
        self, name: str, help_text: str, label_names: Sequence[str] = (), **options
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, label_names, **options)

    def histogram(
        self, name: str, help_text: str, label_names: Sequence[str] = (), **options
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, label_names, **options)

    def _get_or_create(
        self, factory, name: str, help_text: str, label_names: Sequence[str], **options
    ):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not factory or existing.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.label_names!r}"
                    )
                return existing
        instrument = factory(name, help_text, label_names, **options)
        with self._lock:
            # Re-check: a concurrent registration of the same name wins.
            winner = self._metrics.setdefault(name, instrument)
        if winner is not instrument and (
            type(winner) is not factory or winner.label_names != tuple(label_names)
        ):
            raise ValueError(f"metric {name!r} concurrently registered differently")
        return winner

    def register_collector(self, collector: Collector) -> Collector:
        """Attach a scrape-time family source (stats snapshots etc.)."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    # -- rendering ----------------------------------------------------------------

    def collect(self) -> list[MetricFamily]:
        """Every family, instrument ones first, then collector output.

        Families sharing one name (several relays exporting the same
        stats family with different label values) are merged; a merge
        across *different* kinds is a wiring bug and raises.
        """
        with self._lock:
            instruments = list(self._metrics.values())
            collectors = list(self._collectors)
        families: list[MetricFamily] = [
            instrument.family() for instrument in instruments
        ]
        for collector in collectors:
            families.extend(collector())
        merged: "OrderedDict[str, MetricFamily]" = OrderedDict()
        for family in families:
            first = merged.get(family.name)
            if first is None:
                merged[family.name] = family
                continue
            if first.kind != family.kind or first.buckets != family.buckets:
                raise ValueError(
                    f"metric family {family.name!r} exported with conflicting "
                    f"kinds/buckets ({first.kind} vs {family.kind})"
                )
            merged[family.name] = MetricFamily(
                name=first.name,
                kind=first.kind,
                help=first.help,
                samples=first.samples + family.samples,
                buckets=first.buckets,
            )
        return list(merged.values())

    def render(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for family in self.collect():
            if not family.samples:
                # A labeled instrument nothing has reported into yet: a
                # bare HELP/TYPE header is noise (and fails strict readers).
                continue
            lines.append(f"# HELP {family.name} {escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind == "histogram":
                self._render_histogram(family, lines)
            else:
                for label_pairs, value in family.samples:
                    lines.append(
                        f"{family.name}{_render_labels(label_pairs)} "
                        f"{format_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(family: MetricFamily, lines: list[str]) -> None:
        bounds = tuple(family.buckets) + (float("inf"),)
        for label_pairs, cumulative, total in family.samples:
            for bound, count in zip(bounds, cumulative):
                bucket_pairs = label_pairs + (("le", format_value(bound)),)
                lines.append(
                    f"{family.name}_bucket{_render_labels(bucket_pairs)} {count}"
                )
            lines.append(
                f"{family.name}_sum{_render_labels(label_pairs)} "
                f"{format_value(total)}"
            )
            lines.append(
                f"{family.name}_count{_render_labels(label_pairs)} "
                f"{cumulative[-1]}"
            )


def _render_labels(label_pairs: LabelPairs) -> str:
    if not label_pairs:
        return ""
    rendered = ",".join(
        f'{name}="{escape_label_value(str(value))}"' for name, value in label_pairs
    )
    return "{" + rendered + "}"


#: Content-Type the probe listener serves ``/metrics`` under.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


__all__ = [
    "Collector",
    "Counter",
    "DEFAULT_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OVERFLOW_LABEL_VALUE",
    "counter_family",
    "escape_help",
    "escape_label_value",
    "format_value",
    "gauge_family",
]
