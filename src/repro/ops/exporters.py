"""Bridges from the existing stats objects into the metrics registry.

The relay grew its counters long before the ops plane existed —
:class:`~repro.interop.relay.RelayStats`,
:class:`~repro.net.server.RelayServerStats`, the
:class:`~repro.interop.relay.RateLimiter`, the store backends'
:meth:`~repro.store.StateStore.counters`. Rather than rewriting them all
as registry instruments, this module registers *collectors* that read
each object's atomic ``snapshot()`` at scrape time and present the
values as Prometheus families. Hot paths keep their one-lock bump;
only a scrape pays the snapshot cost.

Kept out of ``repro.ops.__init__`` on purpose: importing this module
pulls in :mod:`repro.api.middleware` and :mod:`repro.interop.relay`,
which themselves import :mod:`repro.ops.trace` — callers import
``repro.ops.exporters`` explicitly (the :class:`~repro.net.RelayServer`
does so lazily at start).
"""

from __future__ import annotations

import bisect

from repro.api.middleware import MetricsInterceptor
from repro.interop.relay import RateLimitInterceptor, RelayService
from repro.ops.metrics import MetricFamily, MetricsRegistry, counter_family, gauge_family

#: Lock→final-claim latency bounds (seconds). Exchanges settle on ledger
#: round-trips, not in-process calls, so the grid runs from sub-second
#: single-hop swaps out to ten-minute N-party cycles near their timelock.
ASSET_LATENCY_BUCKETS = (
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
    600.0,
)


def register_relay(registry: MetricsRegistry, relay: RelayService) -> None:
    """Export one relay's operational state through ``registry``.

    Binds any installed :class:`MetricsInterceptor` to the registry's
    per-kind latency histograms, and registers a scrape-time collector
    over the relay's stats, rate limiter, store counters, and
    idempotency-record size. Every family is labelled ``relay_id`` so
    several relays can share one registry.

    When the relay's discovery service keeps fleet state
    (:class:`~repro.net.balancer.BalancedDiscovery` pools, the
    :class:`~repro.interop.discovery.FileRegistry` skipped-address
    counter), that state is exported too: per-replica in-flight gauges,
    eviction/restore counters, and balance-decision counters.
    """
    limiters = []
    for interceptor in relay.interceptors:
        if isinstance(interceptor, MetricsInterceptor):
            interceptor.bind_registry(registry)
        if isinstance(interceptor, RateLimitInterceptor):
            limiters.append(interceptor.limiter)
    relay_label = ("relay_id", relay.relay_id)

    def collect() -> "list[MetricFamily]":
        families = [
            counter_family(
                "repro_relay_stats_total",
                "Relay service operational counters (RelayStats).",
                tuple(
                    ((relay_label, ("counter", name)), value)
                    for name, value in relay.stats.snapshot().items()
                ),
            ),
            gauge_family(
                "repro_relay_idempotency_entries",
                "Entries in the relay's exactly-once idempotency record.",
                (((relay_label,), relay.idempotency_size),),
            ),
        ]
        if limiters:
            families.append(
                counter_family(
                    "repro_relay_rate_limited_total",
                    "Requests shed by the relay's rate limiter.",
                    (((relay_label,), sum(l.rejected for l in limiters)),),
                )
            )
        counters = relay.store.counters()
        if counters:
            families.append(
                counter_family(
                    "repro_store_ops_total",
                    "State-store operation counters (WAL appends, "
                    "checkpoints, applied batches).",
                    tuple(
                        ((relay_label, ("op", name)), value)
                        for name, value in sorted(counters.items())
                    ),
                )
            )
        families.extend(_discovery_families(relay.discovery, relay_label))
        return families

    registry.register_collector(collect)


def _discovery_families(discovery, relay_label) -> "list[MetricFamily]":
    """Fleet/discovery families for services that keep such state.

    Duck-typed against the optional ``counters()`` / ``pools()``
    surfaces (:class:`~repro.interop.discovery.FileRegistry`,
    :class:`~repro.net.balancer.BalancedDiscovery`) so plain registries
    export nothing and cost nothing.
    """
    families: "list[MetricFamily]" = []
    counters = getattr(discovery, "counters", None)
    if callable(counters):
        values = counters()
        if values:
            families.append(
                counter_family(
                    "repro_discovery_total",
                    "Discovery-layer counters (e.g. unresolvable "
                    "addresses skipped during lookup).",
                    tuple(
                        ((relay_label, ("counter", name)), value)
                        for name, value in sorted(values.items())
                    ),
                )
            )
    pools = getattr(discovery, "pools", None)
    if not callable(pools):
        return families
    in_flight = []
    evicted = []
    decisions = []
    churn = []
    for snapshot in pools():
        network_label = ("network", snapshot["network"])
        for key, member in sorted(snapshot["members"].items()):
            labels = (relay_label, network_label, ("replica", key))
            in_flight.append((labels, member["in_flight"]))
            evicted.append((labels, 1 if member["evicted"] else 0))
        decisions.extend(
            ((relay_label, network_label, ("strategy", strategy)), snapshot[field])
            for strategy, field in (
                ("p2c", "p2c_decisions"),
                ("sticky", "sticky_decisions"),
            )
        )
        churn.extend(
            ((relay_label, network_label, ("event", event)), snapshot[event])
            for event in ("evictions", "restores")
        )
    if in_flight:
        families.append(
            gauge_family(
                "repro_fleet_in_flight",
                "Requests currently in flight per replica endpoint.",
                tuple(in_flight),
            )
        )
        families.append(
            gauge_family(
                "repro_fleet_evicted",
                "1 when the replica is evicted from rotation "
                "(failed /readyz), else 0.",
                tuple(evicted),
            )
        )
    if decisions:
        families.append(
            counter_family(
                "repro_fleet_balance_total",
                "Balancing decisions per strategy (p2c = "
                "power-of-two-choices reads, sticky = consistent-hash "
                "side effects).",
                tuple(decisions),
            )
        )
    if churn:
        families.append(
            counter_family(
                "repro_fleet_churn_total",
                "Health-driven pool membership events "
                "(evictions and restores).",
                tuple(churn),
            )
        )
    return families


def register_assets(registry: MetricsRegistry, metrics) -> None:
    """Export exchange/cycle activity as the ``repro_assets_*`` families.

    ``metrics`` is a shared :class:`~repro.assets.metrics.ExchangeMetrics`
    (duck-typed: anything with its ``snapshot()``). Like the other
    exporters this registers a scrape-time collector over the snapshot —
    the coordinators keep their one-lock bump on the hot path, and the
    lock→claim histogram is rebuilt from the recorded latencies at each
    scrape. Every family is labelled ``kind`` (``exchange`` for two-party
    swaps, ``cycle`` for N-party rings); transition counters add the
    ``state`` entered.
    """

    def collect() -> "list[MetricFamily]":
        snapshot = metrics.snapshot()

        def kind_samples(table: dict) -> tuple:
            return tuple(
                ((("kind", kind),), value) for kind, value in sorted(table.items())
            )

        families = [
            gauge_family(
                "repro_assets_active",
                "Exchanges/cycles started but not yet settled "
                "(completed, refunded, or failed).",
                kind_samples(snapshot["active"]),
            ),
            counter_family(
                "repro_assets_started_total",
                "Exchanges/cycles ever started.",
                kind_samples(snapshot["started"]),
            ),
            counter_family(
                "repro_assets_transitions_total",
                "Coordinator state-machine transitions, by state entered.",
                tuple(
                    ((("kind", key.split(":", 1)[0]), ("state", key.split(":", 1)[1])), value)
                    for key, value in sorted(snapshot["transitions"].items())
                ),
            ),
            counter_family(
                "repro_assets_refund_legs_total",
                "Individual locked legs refunded during unwinds.",
                kind_samples(snapshot["refund_legs"]),
            ),
            counter_family(
                "repro_assets_aborts_total",
                "Exchanges/cycles aborted by a coordinator decision "
                "(timeout, tampered proof, stalled party).",
                kind_samples(snapshot["aborts"]),
            ),
        ]
        histogram_samples = []
        for kind, latencies in sorted(snapshot["latencies"].items()):
            counts = [0] * (len(ASSET_LATENCY_BUCKETS) + 1)
            for seconds in latencies:
                counts[bisect.bisect_left(ASSET_LATENCY_BUCKETS, seconds)] += 1
            cumulative, running = [], 0
            for count in counts:
                running += count
                cumulative.append(running)
            histogram_samples.append(
                ((("kind", kind),), tuple(cumulative), float(sum(latencies)))
            )
        if histogram_samples:
            families.append(
                MetricFamily(
                    name="repro_assets_lock_to_claim_seconds",
                    kind="histogram",
                    help="First lock to final claim, per completed "
                    "exchange/cycle.",
                    samples=tuple(histogram_samples),
                    buckets=ASSET_LATENCY_BUCKETS,
                )
            )
        return families

    registry.register_collector(collect)


def register_server(registry: MetricsRegistry, server) -> None:
    """Export one :class:`~repro.net.RelayServer`'s frame-level stats."""
    relay_label = ("relay_id", server.service.relay_id)
    monotonic = (
        "connections_accepted",
        "connections_closed",
        "frames_served",
        "frames_rejected",
    )

    def collect() -> "list[MetricFamily]":
        snapshot = server.stats.snapshot()
        return [
            counter_family(
                "repro_relay_server_total",
                "TCP frame-server counters (RelayServerStats).",
                tuple(
                    ((relay_label, ("counter", name)), snapshot[name])
                    for name in monotonic
                ),
            ),
            gauge_family(
                "repro_relay_server_in_flight",
                "Frames currently being served.",
                (((relay_label,), snapshot["in_flight"]),),
            ),
            gauge_family(
                "repro_relay_server_in_flight_peak",
                "Peak concurrently-served frames since start.",
                (((relay_label,), snapshot["in_flight_peak"]),),
            ),
        ]

    registry.register_collector(collect)


__all__ = ["ASSET_LATENCY_BUCKETS", "register_assets", "register_relay", "register_server"]
