"""Bridges from the existing stats objects into the metrics registry.

The relay grew its counters long before the ops plane existed —
:class:`~repro.interop.relay.RelayStats`,
:class:`~repro.net.server.RelayServerStats`, the
:class:`~repro.interop.relay.RateLimiter`, the store backends'
:meth:`~repro.store.StateStore.counters`. Rather than rewriting them all
as registry instruments, this module registers *collectors* that read
each object's atomic ``snapshot()`` at scrape time and present the
values as Prometheus families. Hot paths keep their one-lock bump;
only a scrape pays the snapshot cost.

Kept out of ``repro.ops.__init__`` on purpose: importing this module
pulls in :mod:`repro.api.middleware` and :mod:`repro.interop.relay`,
which themselves import :mod:`repro.ops.trace` — callers import
``repro.ops.exporters`` explicitly (the :class:`~repro.net.RelayServer`
does so lazily at start).
"""

from __future__ import annotations

from repro.api.middleware import MetricsInterceptor
from repro.interop.relay import RateLimitInterceptor, RelayService
from repro.ops.metrics import MetricFamily, MetricsRegistry, counter_family, gauge_family


def register_relay(registry: MetricsRegistry, relay: RelayService) -> None:
    """Export one relay's operational state through ``registry``.

    Binds any installed :class:`MetricsInterceptor` to the registry's
    per-kind latency histograms, and registers a scrape-time collector
    over the relay's stats, rate limiter, store counters, and
    idempotency-record size. Every family is labelled ``relay_id`` so
    several relays can share one registry.
    """
    limiters = []
    for interceptor in relay.interceptors:
        if isinstance(interceptor, MetricsInterceptor):
            interceptor.bind_registry(registry)
        if isinstance(interceptor, RateLimitInterceptor):
            limiters.append(interceptor.limiter)
    relay_label = ("relay_id", relay.relay_id)

    def collect() -> "list[MetricFamily]":
        families = [
            counter_family(
                "repro_relay_stats_total",
                "Relay service operational counters (RelayStats).",
                tuple(
                    ((relay_label, ("counter", name)), value)
                    for name, value in relay.stats.snapshot().items()
                ),
            ),
            gauge_family(
                "repro_relay_idempotency_entries",
                "Entries in the relay's exactly-once idempotency record.",
                (((relay_label,), relay.idempotency_size),),
            ),
        ]
        if limiters:
            families.append(
                counter_family(
                    "repro_relay_rate_limited_total",
                    "Requests shed by the relay's rate limiter.",
                    (((relay_label,), sum(l.rejected for l in limiters)),),
                )
            )
        counters = relay.store.counters()
        if counters:
            families.append(
                counter_family(
                    "repro_store_ops_total",
                    "State-store operation counters (WAL appends, "
                    "checkpoints, applied batches).",
                    tuple(
                        ((relay_label, ("op", name)), value)
                        for name, value in sorted(counters.items())
                    ),
                )
            )
        return families

    registry.register_collector(collect)


def register_server(registry: MetricsRegistry, server) -> None:
    """Export one :class:`~repro.net.RelayServer`'s frame-level stats."""
    relay_label = ("relay_id", server.service.relay_id)
    monotonic = (
        "connections_accepted",
        "connections_closed",
        "frames_served",
        "frames_rejected",
    )

    def collect() -> "list[MetricFamily]":
        snapshot = server.stats.snapshot()
        return [
            counter_family(
                "repro_relay_server_total",
                "TCP frame-server counters (RelayServerStats).",
                tuple(
                    ((relay_label, ("counter", name)), snapshot[name])
                    for name in monotonic
                ),
            ),
            gauge_family(
                "repro_relay_server_in_flight",
                "Frames currently being served.",
                (((relay_label,), snapshot["in_flight"]),),
            ),
            gauge_family(
                "repro_relay_server_in_flight_peak",
                "Peak concurrently-served frames since start.",
                (((relay_label,), snapshot["in_flight_peak"]),),
            ),
        ]

    registry.register_collector(collect)


__all__ = ["register_relay", "register_server"]
