"""The probe listener: ``/metrics``, ``/healthz``, ``/readyz`` over HTTP.

A deliberately tiny HTTP/1.1 responder (GET only, ``Connection: close``)
on a dedicated port, so operational scrapes never share a socket with
the length-prefixed relay frame protocol — a scraper cannot perturb
frame framing, and the relay being saturated does not hide the probes.

Runs on the caller's event loop; :class:`~repro.net.server.RelayServer`
embeds one next to its frame listener when constructed with
``probe_port``. Metric rendering and readiness checks execute on the
default executor, keeping the loop free for frame I/O.
"""

from __future__ import annotations

import asyncio
import json

from repro.ops.health import HealthProbe
from repro.ops.metrics import EXPOSITION_CONTENT_TYPE, MetricsRegistry

#: Cap on probe request head size / read latency: probes are tiny and
#: local; anything slow or large is a misdirected client.
_READ_TIMEOUT_S = 5.0
_MAX_HEADER_LINES = 64

_STATUS_TEXT = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 503: "Service Unavailable"}


class OpsProbeServer:
    """Serves one registry + health probe on its own TCP port."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        health: HealthProbe | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.health = health if health is not None else HealthProbe()
        self._requested_host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self.host: str | None = None
        self.port: int | None = None

    @property
    def url(self) -> str:
        """The bound ``http://host:port`` base URL (after start)."""
        if self.host is None or self.port is None:
            raise RuntimeError("probe server is not started")
        return f"http://{self.host}:{self.port}"

    async def start_async(self) -> "OpsProbeServer":
        if self._server is not None:
            raise RuntimeError("probe server already started")
        self._server = await asyncio.start_server(
            self._handle, self._requested_host, self._requested_port
        )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self

    async def stop_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.host = self.port = None

    # -- request handling ---------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=_READ_TIMEOUT_S
            )
            for _ in range(_MAX_HEADER_LINES):  # drain headers up to blank line
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_READ_TIMEOUT_S
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = await self._route(request_line)
            await self._respond(writer, status, content_type, body)
        except (ConnectionError, OSError, asyncio.TimeoutError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, request_line: bytes) -> "tuple[int, str, bytes]":
        try:
            method, path, _ = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return 404, "text/plain; charset=utf-8", b"malformed request\n"
        path = path.split("?", 1)[0]
        if method != "GET":
            return 405, "text/plain; charset=utf-8", b"GET only\n"
        loop = asyncio.get_running_loop()
        if path == "/metrics":
            text = await loop.run_in_executor(None, self.registry.render)
            return 200, EXPOSITION_CONTENT_TYPE, text.encode("utf-8")
        if path == "/healthz":
            body = json.dumps({"status": "alive"}) + "\n"
            return 200, "application/json", body.encode("utf-8")
        if path == "/readyz":
            ready, results = await loop.run_in_executor(None, self.health.ready)
            body = json.dumps(
                {
                    "ready": ready,
                    "checks": [
                        {"name": r.name, "ok": r.ok, "detail": r.detail}
                        for r in results
                    ],
                },
                sort_keys=True,
            ) + "\n"
            return (200 if ready else 503), "application/json", body.encode("utf-8")
        return 404, "text/plain; charset=utf-8", b"unknown probe path\n"

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


__all__ = ["OpsProbeServer"]
