"""Trace correlation: one id follows a request across every layer.

The relay path crosses four trust/process boundaries — application
client, destination relay, (TCP) transport, source relay, driver — and
an operator debugging "why was THIS query slow/denied" needs the hops to
correlate. A :class:`TraceContext` is a ``trace_id`` (constant for the
whole request tree) plus a ``span_id`` (fresh per hop); it travels

- **in process** via a :mod:`contextvars` variable (thread- and
  task-local, so a concurrently-serving relay never cross-pollutes
  requests), and
- **on the wire** via two plain envelope headers
  (:data:`TRACE_ID_HEADER` / :data:`SPAN_ID_HEADER`) — headers are an
  existing :class:`~repro.proto.RelayEnvelope` map field, so tracing
  changes nothing about the wire schema and old peers simply ignore it.

Lifecycle: the gateway/session (or any client verb) opens a root trace
with :func:`ensure_trace`; :meth:`RelayService._exchange` stamps the
active trace (with a fresh hop span) into the outbound envelope;
:meth:`RelayService.handle_request` re-activates the envelope's trace on
its serve thread so interceptors, the dispatcher, and the driver all log
under it; every reply — including error envelopes and rate-limit sheds —
carries the caller's trace id back.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.utils.ids import random_id

#: Envelope header names the trace rides in (plain map entries; peers
#: that predate tracing ignore them).
TRACE_ID_HEADER = "trace-id"
SPAN_ID_HEADER = "span-id"


@dataclass(frozen=True)
class TraceContext:
    """One hop's view of a request tree: ``trace_id`` is shared by every
    hop, ``span_id`` identifies this hop, ``parent_span_id`` its caller."""

    trace_id: str
    span_id: str
    parent_span_id: str = ""

    def child(self) -> "TraceContext":
        """A fresh hop under the same trace (outbound envelope stamping)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=random_id("span-"),
            parent_span_id=self.span_id,
        )

    def headers(self) -> dict[str, str]:
        """The two wire headers carrying this context."""
        return {TRACE_ID_HEADER: self.trace_id, SPAN_ID_HEADER: self.span_id}


#: The active trace of the current thread/task (``None`` outside a trace).
_ACTIVE: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_ops_trace", default=None
)


def current_trace() -> TraceContext | None:
    """The active :class:`TraceContext`, or ``None``."""
    return _ACTIVE.get()


def new_trace() -> TraceContext:
    """A fresh root context (does not activate it)."""
    return TraceContext(trace_id=random_id("trace-"), span_id=random_id("span-"))


def from_headers(headers: Mapping[str, str]) -> TraceContext | None:
    """Rebuild the caller's context from envelope headers (``None`` when
    the envelope carries no trace — an untraced or legacy peer)."""
    trace_id = headers.get(TRACE_ID_HEADER, "")
    if not trace_id:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=headers.get(SPAN_ID_HEADER, "") or random_id("span-"),
    )


@contextmanager
def activate(context: TraceContext) -> Iterator[TraceContext]:
    """Make ``context`` the active trace for the block.

    Always resets on exit — serve threads are pooled and reused, so a
    leaked contextvar would attribute the NEXT request's logs to this
    trace.
    """
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


@contextmanager
def ensure_trace() -> Iterator[TraceContext]:
    """The active trace if there is one, else a fresh root for the block.

    The client-verb entry points (query/transact/subscribe flushes) wrap
    themselves in this, so nested verbs (a batch flush inside a session
    dispatch) share one trace instead of fragmenting into several.
    """
    existing = _ACTIVE.get()
    if existing is not None:
        yield existing
        return
    with activate(new_trace()) as context:
        yield context


def inject(headers: Mapping[str, str] | None) -> dict[str, str]:
    """Outbound-envelope headers with the active trace stamped in.

    The stamp is a *child* span — each relay→relay / relay→driver hop
    gets its own span id under the shared trace id. With no active trace
    the headers pass through unstamped (callers that want correlation
    open one with :func:`ensure_trace` first).
    """
    out = dict(headers or {})
    context = _ACTIVE.get()
    if context is not None:
        out.update(context.child().headers())
    return out


def reply_headers() -> dict[str, str]:
    """Headers stamping a *reply* with the serving hop's trace context.

    Used by every reply path of the relay — normal responses, error
    envelopes, and rate-limit sheds alike — so a caller can correlate
    even a rejection to its in-flight trace.
    """
    context = _ACTIVE.get()
    return context.headers() if context is not None else {}


__all__ = [
    "SPAN_ID_HEADER",
    "TRACE_ID_HEADER",
    "TraceContext",
    "activate",
    "current_trace",
    "ensure_trace",
    "from_headers",
    "inject",
    "new_trace",
    "reply_headers",
]
