"""Structured JSON logging with trace correlation.

Every layer logs through a named logger under the ``repro`` root —
``repro.api`` (client verbs), ``repro.relay`` (service + interceptors),
``repro.net`` (TCP framing), ``repro.driver`` (ledger drivers),
``repro.store`` (durability). :func:`configure_json_logging` installs one
:class:`JsonLogFormatter` handler on that root, and a
:class:`TraceContextFilter` stamps the active :class:`TraceContext` into
every record, so a single ``trace_id`` field correlates the client
session, the relay service, the TCP server, and the driver lines of one
request.

Tests (and the conformance matrix) observe the same stream through
:class:`JsonLogCapture` / :func:`capture_logs` instead of parsing stderr.
"""

from __future__ import annotations

import io
import json
import logging
import threading
from contextlib import contextmanager
from typing import Iterator, TextIO

from repro.ops.trace import current_trace

#: The logger namespace root every repro layer logs under.
ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not payload; anything else on
#: a record (``extra=`` fields) is emitted as a JSON field.
_RESERVED = frozenset(
    logging.LogRecord(
        name="", level=0, pathname="", lineno=0, msg="", args=(), exc_info=None
    ).__dict__
) | {"message", "asctime", "taskName"}


class TraceContextFilter(logging.Filter):
    """Stamp the active trace into each record (unless already set).

    Layers that log *about* an envelope from outside its serve context
    (the TCP server peeking at a frame) pass ``extra={"trace_id": ...}``
    explicitly; everyone else inherits the contextvar.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "trace_id", ""):
            return True
        context = current_trace()
        record.trace_id = context.trace_id if context else ""
        record.span_id = context.span_id if context else ""
        return True


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, trace ids,
    plus any ``extra=`` fields the call site attached."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "trace_id": getattr(record, "trace_id", ""),
            "span_id": getattr(record, "span_id", ""),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def configure_json_logging(
    stream: TextIO | None = None,
    level: int = logging.INFO,
    logger_name: str = ROOT_LOGGER,
) -> logging.Handler:
    """Install (idempotently) the JSON handler on the ``repro`` root.

    Prior handlers installed by this function are replaced, so repeated
    configuration (tests, demos re-running in one process) never
    double-emits. Returns the installed handler.
    """
    logger = logging.getLogger(logger_name)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_ops_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler._repro_ops_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonLogFormatter())
    handler.addFilter(TraceContextFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return handler


class JsonLogCapture(logging.Handler):
    """Collect records as parsed JSON dicts (tests / conformance)."""

    def __init__(self) -> None:
        super().__init__()
        self.setFormatter(JsonLogFormatter())
        self.addFilter(TraceContextFilter())
        self._records_lock = threading.Lock()
        self.records: list[dict] = []

    def emit(self, record: logging.LogRecord) -> None:
        line = self.format(record)
        parsed = json.loads(line)
        with self._records_lock:
            self.records.append(parsed)

    def snapshot(self) -> list[dict]:
        """A point-in-time copy of the captured records."""
        with self._records_lock:
            return list(self.records)

    def with_trace(self, trace_id: str) -> list[dict]:
        """Captured records stamped with ``trace_id``."""
        return [r for r in self.snapshot() if r.get("trace_id") == trace_id]

    def loggers(self, trace_id: str | None = None) -> set[str]:
        """The distinct logger names seen (optionally per trace)."""
        records = self.with_trace(trace_id) if trace_id else self.snapshot()
        return {r["logger"] for r in records}


@contextmanager
def capture_logs(
    logger_name: str = ROOT_LOGGER, level: int = logging.DEBUG
) -> Iterator[JsonLogCapture]:
    """Attach a :class:`JsonLogCapture` to ``logger_name`` for the block,
    restoring the logger's prior level/propagation afterwards."""
    logger = logging.getLogger(logger_name)
    capture = JsonLogCapture()
    previous_level = logger.level
    previous_propagate = logger.propagate
    logger.addHandler(capture)
    logger.setLevel(level)
    logger.propagate = False
    try:
        yield capture
    finally:
        logger.removeHandler(capture)
        logger.setLevel(previous_level)
        logger.propagate = previous_propagate


def render_to_string(level: int = logging.DEBUG) -> "tuple[logging.Handler, io.StringIO]":
    """Configure JSON logging into an in-memory buffer (demos/smoke)."""
    buffer = io.StringIO()
    handler = configure_json_logging(stream=buffer, level=level)
    return handler, buffer


__all__ = [
    "JsonLogCapture",
    "JsonLogFormatter",
    "ROOT_LOGGER",
    "TraceContextFilter",
    "capture_logs",
    "configure_json_logging",
    "render_to_string",
]
