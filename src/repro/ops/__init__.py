"""repro.ops — the unified observability plane.

One package every layer reports into (ROADMAP item 4):

- :mod:`repro.ops.trace` — a ``TraceContext`` that follows one request
  from the client session through the relay, the TCP framing, and the
  driver, riding envelope headers on the wire and a contextvar in
  process;
- :mod:`repro.ops.metrics` — the central :class:`MetricsRegistry`
  (counters, gauges, histograms with bounded label sets) rendered as
  Prometheus text exposition;
- :mod:`repro.ops.logging` — structured JSON logging with the trace id
  stamped on every record;
- :mod:`repro.ops.health` — liveness/readiness checks;
- :mod:`repro.ops.probe` — the ``/metrics`` / ``/healthz`` / ``/readyz``
  HTTP listener :class:`~repro.net.RelayServer` embeds;
- :mod:`repro.ops.exporters` — bridges from the pre-existing stats
  objects into the registry (import it explicitly: it pulls in the api
  and relay layers, which themselves import this package).
"""

from repro.ops.health import CheckResult, HealthProbe, relay_checks
from repro.ops.logging import (
    JsonLogCapture,
    JsonLogFormatter,
    TraceContextFilter,
    capture_logs,
    configure_json_logging,
)
from repro.ops.metrics import (
    Counter,
    EXPOSITION_CONTENT_TYPE,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    counter_family,
    gauge_family,
)
from repro.ops.probe import OpsProbeServer
from repro.ops.trace import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    TraceContext,
    activate,
    current_trace,
    ensure_trace,
    from_headers,
    inject,
    new_trace,
    reply_headers,
)

__all__ = [
    "CheckResult",
    "Counter",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "HealthProbe",
    "Histogram",
    "JsonLogCapture",
    "JsonLogFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "OpsProbeServer",
    "SPAN_ID_HEADER",
    "TRACE_ID_HEADER",
    "TraceContext",
    "TraceContextFilter",
    "activate",
    "capture_logs",
    "configure_json_logging",
    "counter_family",
    "current_trace",
    "ensure_trace",
    "from_headers",
    "gauge_family",
    "inject",
    "new_trace",
    "relay_checks",
    "reply_headers",
]
