"""Asset-ledger ports: the driver capability behind ``supports_assets``.

An :class:`AssetLedgerPort` translates the network-neutral asset command
envelopes (:class:`repro.proto.AssetCommandMsg`) into hash-time-locked
operations on one concrete ledger. It is the asset analogue of the §5
transaction extension: commands are submitted under a *designated local
invoker* identity (the foreign party is not a member of the source
network), the acting party travels as an authenticated logical id
(``<requestor>@<network>``), and every verb passes the same governance
gates as queries — certificate authentication plus exposure-control rules
on the asset contract's functions.

Trust note: the ack a port returns is transport truth only. Counterparties
upgrade a remote lock to *trusted* data with a proof-carrying query
against the contract's ``GetLock`` view before acting on it (see
:class:`repro.assets.AssetExchangeCoordinator`), so a lying relay or
driver can deny service but cannot fake a lock.
"""

from __future__ import annotations

import json
import threading
from abc import ABC, abstractmethod

from repro.assets.contracts import (
    CORDA_ASSET_CONTRACT,
    FABRIC_ASSET_CHAINCODE,
    QUORUM_ASSET_CONTRACT,
)
from repro.assets.htlc import STATE_AVAILABLE, STATE_CLAIMED, STATE_LOCKED, STATE_REFUNDED
from repro.crypto.certs import Certificate, validate_chain
from repro.errors import AccessDeniedError, AssetError, LedgerError
from repro.fabric.identity import Identity
from repro.fabric.network import FabricNetwork
from repro.interop.contracts.cmdac import org_roots_from_config
from repro.interop.contracts.ports import InteropPort
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetAckMsg,
    AssetCommandMsg,
    AuthInfo,
)
from repro.quorum.contracts import CallContext
from repro.quorum.network import QuorumNetwork


def acting_party(auth: AuthInfo | None) -> str:
    """The logical party id an authenticated command acts as."""
    if auth is None or not auth.requestor or not auth.requesting_network:
        raise AccessDeniedError("asset command carries no requesting identity")
    return f"{auth.requestor}@{auth.requesting_network}"


def authenticated_certificate(auth: AuthInfo | None) -> Certificate:
    """Decode a command's certificate and bind it to the claimed identity.

    The vault authorizes owners/recipients by their logical party id
    (:func:`acting_party`), so the certificate must vouch for *both*
    components of that id: its subject organization must match the claimed
    org and its common name the claimed requestor — otherwise any enrolled
    member of an accepted org could impersonate any other party.
    """
    if auth is None or not auth.certificate:
        raise AccessDeniedError("asset command carries no certificate")
    creator = Certificate.from_bytes(auth.certificate)
    if creator.subject.organization != auth.requesting_org:
        raise AccessDeniedError(
            f"certificate org {creator.subject.organization!r} does not "
            f"match claimed org {auth.requesting_org!r}"
        )
    if creator.subject.common_name != auth.requestor:
        raise AccessDeniedError(
            f"certificate common name {creator.subject.common_name!r} does "
            f"not match claimed requestor {auth.requestor!r}"
        )
    return creator


def validate_local_member(creator: Certificate, config, network_id: str) -> None:
    """Validate a local member's certificate against its own MSP roots.

    A command claiming local provenance bypasses the (foreign-facing) ECC
    gate, so membership must be proven against the network's exported
    configuration instead.
    """
    roots = org_roots_from_config(config)
    root = roots.get(creator.subject.organization)
    if root is None:
        raise AccessDeniedError(
            f"org {creator.subject.organization!r} is not a member of "
            f"network {network_id!r}"
        )
    validate_chain(creator, [root])


class AssetLedgerPort(ABC):
    """Hashlock/timelock asset operations against one ledger.

    The four verbs mirror the :data:`repro.proto.ASSET_COMMAND_KINDS`
    envelope family; each returns an :class:`AssetAckMsg` carrying the
    post-command lock record, and raises :class:`AccessDeniedError` /
    :class:`AssetError` on governance or contract-rule violations.
    """

    #: The on-ledger contract name the port drives (for addressing checks).
    contract: str = ""

    @abstractmethod
    def lock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        """Escrow the asset for the command's recipient under its hashlock."""

    @abstractmethod
    def claim_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        """Transfer a locked asset by revealing the preimage (before timeout)."""

    @abstractmethod
    def unlock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        """Refund an expired lock to its owner (at/after timeout)."""

    @abstractmethod
    def asset_status(self, command: AssetCommandMsg) -> AssetAckMsg:
        """The asset's current lock record (read-only, unproven)."""

    # -- shared helpers -----------------------------------------------------------

    def _ack(
        self,
        command: AssetCommandMsg,
        record: dict,
        tx_id: str = "",
        block_number: int = 0,
    ) -> AssetAckMsg:
        return AssetAckMsg(
            version=PROTOCOL_VERSION,
            nonce=command.nonce,
            status=STATUS_OK,
            asset_id=record.get("asset_id", command.asset_id),
            state=record.get("state", ""),
            owner=record.get("owner", ""),
            recipient=record.get("recipient", ""),
            hashlock=bytes.fromhex(record["hashlock"]) if record.get("hashlock") else b"",
            timeout=float(record.get("timeout", 0.0)),
            preimage=bytes.fromhex(record["preimage"]) if record.get("preimage") else b"",
            tx_id=tx_id,
            block_number=block_number,
        )


class FabricAssetLedgerPort(AssetLedgerPort):
    """Drives the :class:`~repro.assets.contracts.FabricAssetChaincode`.

    Side-effecting verbs commit through the network's normal
    endorse-order-commit pipeline under the designated ``invoker``
    identity; commits serialize on an internal lock (concurrent exchanges
    interleave across networks, but each commit pipeline is ordered, just
    like :meth:`NetworkDriver.execute_transaction_batch`).
    """

    def __init__(
        self,
        network: FabricNetwork,
        invoker: Identity,
        contract: str = FABRIC_ASSET_CHAINCODE,
    ) -> None:
        self._network = network
        self._invoker = invoker
        self.contract = contract
        self._commit_lock = threading.Lock()
        # Record the invoker on-ledger (through the contract's endorsement
        # policy — a governance write, like ECC rules) so the vault accepts
        # this identity acting on behalf of port-authenticated parties.
        # Requires the asset chaincode to be deployed first.
        result = network.gateway.submit(
            invoker, contract, "AuthorizeInvoker", [invoker.name]
        )
        if not result.committed:
            raise AssetError(
                f"failed to authorize invoker {invoker.name!r} on "
                f"{network.name!r}: {result.validation_code.value}"
            )

    def _check(self, auth: AuthInfo | None, function: str) -> None:
        creator = authenticated_certificate(auth)
        if auth.requesting_network == self._network.name:
            # A local member acting through its own relay: native MSP
            # membership is the gate, not the (foreign-facing) ECC.
            validate_local_member(
                creator, self._network.export_config(), self._network.name
            )
            return
        from repro.interop.transactions import check_remote_invocation_exposure

        check_remote_invocation_exposure(
            self._network, self._invoker, auth, self.contract, function
        )

    def _commit_and_read(
        self, command: AssetCommandMsg, function: str, args: list[str]
    ) -> AssetAckMsg:
        # Commit and the confirming read happen under one lock so the ack
        # reflects exactly the state this command produced, even with
        # concurrent exchanges sharing the network.
        with self._commit_lock:
            result = self._network.gateway.submit(
                self._invoker, self.contract, function, args
            )
            if not result.committed:
                raise AssetError(
                    f"{function} invalidated on network {self._network.name!r}: "
                    f"{result.validation_code.value}"
                )
            record = self._read_lock(command.asset_id)
        return self._ack(command, record, result.tx_id, result.block_number)

    def _read_lock(self, asset_id: str) -> dict:
        raw = self._network.gateway.evaluate(
            self._invoker, self.contract, "GetLock", [asset_id]
        )
        return json.loads(raw)

    def lock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "LockAsset")
        return self._commit_and_read(
            command,
            "LockAsset",
            [
                command.asset_id,
                acting_party(command.auth),
                command.recipient,
                command.hashlock.hex(),
                repr(command.timeout),
            ],
        )

    def claim_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "ClaimAsset")
        return self._commit_and_read(
            command,
            "ClaimAsset",
            [command.asset_id, acting_party(command.auth), command.preimage.hex()],
        )

    def unlock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "UnlockAsset")
        return self._commit_and_read(
            command, "UnlockAsset", [command.asset_id, acting_party(command.auth)]
        )

    def asset_status(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "GetLock")
        return self._ack(command, self._read_lock(command.asset_id))


class CordaAssetLedgerPort(AssetLedgerPort):
    """Drives the HTLC vault as Corda linear states (notary-backed escrow).

    Each verb is a flow the designated ``invoker`` node proposes: consume
    the asset's current state, produce the successor carrying the updated
    lock record. The contract rules registered by
    :func:`repro.assets.contracts.register_corda_asset_contract` re-impose
    the vault's window semantics at every signer, and the notary's
    uniqueness check consumes the lock state exactly once — double
    claim/refund is rejected as a double spend rather than by a flag.

    The port is the authentication boundary (as on the other platforms):
    it binds the authenticated acting party to the lock's owner/recipient
    before proposing, since the on-ledger verifier sees records, not
    requestors.
    """

    def __init__(
        self,
        network: "CordaNetwork",
        port: InteropPort,
        invoker: "CordaNode",
        contract: str = CORDA_ASSET_CONTRACT,
    ) -> None:
        self._network = network
        self._port = port
        self._invoker = invoker
        self.contract = contract
        self._commit_lock = threading.Lock()

    def _check(self, auth: AuthInfo | None, function: str) -> None:
        creator = authenticated_certificate(auth)
        if auth.requesting_network == self._network.name:
            validate_local_member(
                creator, self._network.export_config(), self._network.name
            )
            return
        self._port.check_access(
            auth.requesting_network,
            auth.requesting_org,
            self.contract,
            function,
            creator,
        )

    def _state(self, asset_id: str):
        try:
            ref, state = self._invoker.lookup(asset_id)
        except LedgerError as exc:
            raise AssetError(f"no asset {asset_id!r} in this vault") from exc
        if state.kind != self.contract:
            raise AssetError(
                f"state {asset_id!r} is a {state.kind!r} state, not an asset of "
                f"{self.contract!r}"
            )
        return ref, state

    def _evolve(self, ref, state, asset: dict, lock: dict, command: str):
        from repro.corda.states import LinearState

        successor = LinearState(
            linear_id=state.linear_id,
            kind=state.kind,
            data={"asset": asset, "lock": lock},
            participants=state.participants,
        )
        return self._invoker.propose([ref], [successor], command)

    def _record_of(self, state) -> dict:
        """The state's lock record, synthesized as *available* if unlocked
        (byte-compatible with :meth:`repro.assets.htlc.HtlcVault.get_lock`)."""
        asset = state.data["asset"]
        lock = state.data.get("lock")
        if lock is None:
            lock = {
                "asset_id": state.linear_id,
                "owner": asset["owner"],
                "recipient": "",
                "hashlock": "",
                "timeout": 0.0,
                "state": STATE_AVAILABLE,
                "preimage": "",
                "created_at": 0.0,
            }
        return lock

    def lock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "LockAsset")
        party = acting_party(command.auth)
        with self._commit_lock:
            ref, state = self._state(command.asset_id)
            asset = dict(state.data["asset"])
            if asset.get("owner") != party:
                raise AssetError(
                    f"asset {command.asset_id!r} is owned by "
                    f"{asset.get('owner')!r}, not {party!r}"
                )
            record = {
                "asset_id": command.asset_id,
                "owner": party,
                "recipient": command.recipient,
                "hashlock": command.hashlock.hex(),
                "timeout": command.timeout,
                "state": STATE_LOCKED,
                "preimage": "",
                "created_at": self._network.clock.now(),
            }
            tx = self._evolve(ref, state, asset, record, "AssetLock")
        return self._ack(
            command, record, tx.tx_id, self._network.sequence_of(tx.tx_id)
        )

    def claim_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "ClaimAsset")
        party = acting_party(command.auth)
        with self._commit_lock:
            ref, state = self._state(command.asset_id)
            lock = state.data.get("lock")
            if lock is None or lock.get("state") != STATE_LOCKED:
                current = lock["state"] if lock else STATE_AVAILABLE
                raise AssetError(
                    f"asset {command.asset_id!r} is not locked (state {current!r})"
                )
            if lock["recipient"] != party:
                raise AssetError(
                    f"asset {command.asset_id!r} is locked for "
                    f"{lock['recipient']!r}, not {party!r}"
                )
            record = dict(lock)
            record["state"] = STATE_CLAIMED
            record["preimage"] = command.preimage.hex()
            asset = dict(state.data["asset"])
            asset["owner"] = lock["recipient"]
            tx = self._evolve(ref, state, asset, record, "AssetClaim")
        return self._ack(
            command, record, tx.tx_id, self._network.sequence_of(tx.tx_id)
        )

    def unlock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "UnlockAsset")
        party = acting_party(command.auth)
        with self._commit_lock:
            ref, state = self._state(command.asset_id)
            lock = state.data.get("lock")
            if lock is None or lock.get("state") != STATE_LOCKED:
                current = lock["state"] if lock else STATE_AVAILABLE
                raise AssetError(
                    f"asset {command.asset_id!r} is not locked (state {current!r})"
                )
            if lock["owner"] != party:
                raise AssetError(
                    f"lock on asset {command.asset_id!r} was placed by "
                    f"{lock['owner']!r}, not {party!r}"
                )
            record = dict(lock)
            record["state"] = STATE_REFUNDED
            asset = dict(state.data["asset"])
            tx = self._evolve(ref, state, asset, record, "AssetUnlock")
        return self._ack(
            command, record, tx.tx_id, self._network.sequence_of(tx.tx_id)
        )

    def asset_status(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "GetLock")
        _ref, state = self._state(command.asset_id)
        return self._ack(command, self._record_of(state))

    # -- proof-carrying views (registered as driver query handlers) ----------------

    def get_lock_view(self, node, args: list[str]) -> bytes:
        """``GetLock`` served from the *queried node's own* vault."""
        if len(args) != 1:
            raise AssetError("GetLock expects exactly one argument (asset_id)")
        state = self._node_state(node, args[0])
        return json.dumps(self._record_of(state), sort_keys=True).encode("utf-8")

    def get_asset_view(self, node, args: list[str]) -> bytes:
        if len(args) != 1:
            raise AssetError("GetAsset expects exactly one argument (asset_id)")
        state = self._node_state(node, args[0])
        return json.dumps(state.data["asset"], sort_keys=True).encode("utf-8")

    def _node_state(self, node, asset_id: str):
        try:
            _ref, state = node.lookup(asset_id)
        except LedgerError as exc:
            raise AssetError(f"no asset {asset_id!r} in this vault") from exc
        if state.kind != self.contract:
            raise AssetError(
                f"state {asset_id!r} is a {state.kind!r} state, not an asset of "
                f"{self.contract!r}"
            )
        return state


class PubChainAssetLedgerPort(AssetLedgerPort):
    """Drives the HTLC vault hosted on a :class:`SimulatedPublicChain`.

    The chain reuses Quorum's contract machinery, so the deployed vault is
    the shared :class:`~repro.assets.contracts.QuorumAssetContract`;
    governance gates mirror the Quorum port. What is new is *finality*: a
    claim acts on an observed lock, so before submitting one this port
    re-reads the lock and demands it be settled under the chain's
    :class:`~repro.pubchain.FinalityPolicy` — a lock below confirmation
    depth raises :class:`~repro.errors.FinalityPendingError`, and a lock
    orphaned by a reorg raises :class:`~repro.errors.ReorgDetectedError`
    (both travel back as non-OK acks; the proof-carrying ``GetLock`` query
    path surfaces the same conditions as typed wire statuses).
    """

    def __init__(
        self,
        chain,
        ecc_port: InteropPort,
        invoker: Identity,
        contract: str = QUORUM_ASSET_CONTRACT,
        finality=None,
    ) -> None:
        from repro.pubchain.finality import FinalityPolicy

        self._chain = chain
        self._ecc_port = ecc_port
        self._invoker = invoker
        self.contract = contract
        self._finality = finality or FinalityPolicy()
        self._commit_lock = threading.Lock()
        chain.submit_transaction(
            invoker, contract, "AuthorizeInvoker", [invoker.name]
        )

    def _check(self, auth: AuthInfo | None, function: str) -> None:
        creator = authenticated_certificate(auth)
        if auth.requesting_network == self._chain.name:
            validate_local_member(
                creator, self._chain.export_config(), self._chain.name
            )
            return
        self._ecc_port.check_access(
            auth.requesting_network,
            auth.requesting_org,
            self.contract,
            function,
            creator,
        )

    def _commit_and_read(
        self, command: AssetCommandMsg, function: str, args: list[str]
    ) -> AssetAckMsg:
        with self._commit_lock:
            tx = self._chain.submit_transaction(
                self._invoker, self.contract, function, args
            )
            record = self._read_lock(command.asset_id)
        return self._ack(command, record, tx.tx_id, self._chain.height_of(tx.tx_id))

    def _read_lock_with_keys(self, asset_id: str) -> tuple[dict, frozenset]:
        raw, read_keys = self._chain.view(
            self._invoker, self.contract, "GetLock", [asset_id]
        )
        return json.loads(raw), read_keys

    def _read_lock(self, asset_id: str) -> dict:
        record, _read_keys = self._read_lock_with_keys(asset_id)
        return record

    def _require_settled_lock(self, asset_id: str) -> None:
        """Refuse to act on a pending or reorged-out lock record."""
        from repro.errors import FinalityPendingError, ReorgDetectedError
        from repro.pubchain.finality import VERB_ASSETS

        _record, read_keys = self._read_lock_with_keys(asset_id)
        reorged = self._chain.reorged_keys(self.contract, read_keys)
        if reorged:
            raise ReorgDetectedError(
                f"lock on asset {asset_id!r} was orphaned by a chain reorg on "
                f"{self._chain.name!r}; re-verify before claiming"
            )
        depth = self._chain.confirmation_depth(self.contract, read_keys)
        required = self._finality.required(VERB_ASSETS)
        if depth is not None and depth < required:
            raise FinalityPendingError(
                f"lock on asset {asset_id!r} has {depth} of {required} required "
                f"confirmation(s) on {self._chain.name!r}; pending, not claimable"
            )

    def lock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "LockAsset")
        return self._commit_and_read(
            command,
            "LockAsset",
            [
                command.asset_id,
                acting_party(command.auth),
                command.recipient,
                command.hashlock.hex(),
                repr(command.timeout),
            ],
        )

    def claim_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "ClaimAsset")
        self._require_settled_lock(command.asset_id)
        return self._commit_and_read(
            command,
            "ClaimAsset",
            [command.asset_id, acting_party(command.auth), command.preimage.hex()],
        )

    def unlock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "UnlockAsset")
        return self._commit_and_read(
            command, "UnlockAsset", [command.asset_id, acting_party(command.auth)]
        )

    def asset_status(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "GetLock")
        return self._ack(command, self._read_lock(command.asset_id))


class QuorumAssetLedgerPort(AssetLedgerPort):
    """Drives the :class:`~repro.assets.contracts.QuorumAssetContract`.

    Exposure control and certificate authentication go through the
    network's :class:`~repro.interop.contracts.ports.InteropPort` (the
    platform port of the ECC/CMDAC functions); block production serializes
    on an internal lock like the Fabric port.
    """

    def __init__(
        self,
        network: QuorumNetwork,
        ecc_port: InteropPort,
        invoker: Identity,
        contract: str = QUORUM_ASSET_CONTRACT,
    ) -> None:
        self._network = network
        self._ecc_port = ecc_port
        self._invoker = invoker
        self.contract = contract
        self._commit_lock = threading.Lock()
        # On-ledger invoker authorization, as on the Fabric side: the vault
        # binds acting parties to transaction creators, and this block
        # makes the port's invoker an accepted delegate.
        network.submit_transaction(
            invoker, contract, "AuthorizeInvoker", [invoker.name]
        )

    def _check(self, auth: AuthInfo | None, function: str) -> None:
        creator = authenticated_certificate(auth)
        if auth.requesting_network == self._network.name:
            validate_local_member(
                creator, self._network.export_config(), self._network.name
            )
            return
        self._ecc_port.check_access(
            auth.requesting_network,
            auth.requesting_org,
            self.contract,
            function,
            creator,
        )

    def _commit_and_read(
        self, command: AssetCommandMsg, function: str, args: list[str]
    ) -> AssetAckMsg:
        with self._commit_lock:
            tx = self._network.submit_transaction(
                self._invoker, self.contract, function, args
            )
            block = len(self._network.blocks) - 1
            record = self._read_lock(command.asset_id)
        return self._ack(command, record, tx.tx_id, block)

    def _read_lock(self, asset_id: str) -> dict:
        peer = self._network.peers[0]
        ctx = CallContext(
            sender=self._invoker.id,
            sender_org=self._invoker.org,
            timestamp=self._network.clock.now(),
        )
        raw = peer.view(self.contract, "GetLock", [asset_id], ctx)
        return json.loads(raw)

    def lock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "LockAsset")
        return self._commit_and_read(
            command,
            "LockAsset",
            [
                command.asset_id,
                acting_party(command.auth),
                command.recipient,
                command.hashlock.hex(),
                repr(command.timeout),
            ],
        )

    def claim_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "ClaimAsset")
        return self._commit_and_read(
            command,
            "ClaimAsset",
            [command.asset_id, acting_party(command.auth), command.preimage.hex()],
        )

    def unlock_asset(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "UnlockAsset")
        return self._commit_and_read(
            command, "UnlockAsset", [command.asset_id, acting_party(command.auth)]
        )

    def asset_status(self, command: AssetCommandMsg) -> AssetAckMsg:
        self._check(command.auth, "GetLock")
        return self._ack(command, self._read_lock(command.asset_id))
