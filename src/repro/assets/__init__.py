"""repro.assets: cross-network atomic asset exchange (HTLC subsystem).

The paper's relay architecture deliberately stops at trusted *data*
transfer and names asset transfer as the next step (§6). This package is
that step: two-party atomic exchange between heterogeneous networks via
hash-time-locked contracts, riding the existing relay envelope protocol —
discovery, failover, interceptors, and the proof plane all unchanged.

- :mod:`repro.assets.htlc` — the platform-neutral vault state machine
  (lock/claim/refund with strictly disjoint claim and refund windows).
- :mod:`repro.assets.contracts` — the vault hosted as Fabric chaincode
  and as a Quorum contract, exposing one function surface.
- :mod:`repro.assets.ports` — :class:`AssetLedgerPort`, the driver
  capability behind ``supports_assets``; commands are ECC-gated and
  submitted under a designated local invoker, like §5 transactions.
- :mod:`repro.assets.coordinator` — :class:`AssetExchangeCoordinator`,
  the explicit exchange state machine: lock → proof-verify → counter-lock
  → proof-verify → claim → claim, plus abort and timeout-refund paths.
- :mod:`repro.assets.cycles` — :class:`CycleCoordinator`, the N-party
  generalization: an A→B→C→…→A ring of escrows under one hashlock, with
  per-hop decremented timelocks and journaled crash recovery.
- :mod:`repro.assets.metrics` — :class:`ExchangeMetrics`, the shared
  lock-guarded counters both coordinators report into (exported as the
  ``repro_assets_*`` Prometheus families by ``repro.ops``).

Applications reach it through ``gateway.exchange()`` and
``gateway.exchange_cycle()`` (see :class:`repro.api.ExchangeBuilder` /
:class:`repro.api.CycleBuilder`).
"""

from repro.assets.contracts import (
    CORDA_ASSET_CONTRACT,
    FABRIC_ASSET_CHAINCODE,
    QUORUM_ASSET_CONTRACT,
    FabricAssetChaincode,
    QuorumAssetContract,
    issue_corda_asset,
    register_corda_asset_contract,
)
from repro.assets.coordinator import (
    AssetExchangeCoordinator,
    AssetSpec,
    ExchangeResult,
    ExchangeState,
)
from repro.assets.cycles import CycleCoordinator, CycleResult, CycleState
from repro.assets.htlc import (
    STATE_AVAILABLE,
    STATE_CLAIMED,
    STATE_LOCKED,
    STATE_REFUNDED,
    HtlcVault,
    make_hashlock,
    new_preimage,
)
from repro.assets.metrics import ExchangeMetrics
from repro.assets.ports import (
    AssetLedgerPort,
    CordaAssetLedgerPort,
    FabricAssetLedgerPort,
    PubChainAssetLedgerPort,
    QuorumAssetLedgerPort,
)

__all__ = [
    "AssetExchangeCoordinator",
    "AssetLedgerPort",
    "AssetSpec",
    "CordaAssetLedgerPort",
    "CORDA_ASSET_CONTRACT",
    "CycleCoordinator",
    "CycleResult",
    "CycleState",
    "ExchangeMetrics",
    "ExchangeResult",
    "ExchangeState",
    "FabricAssetChaincode",
    "FabricAssetLedgerPort",
    "FABRIC_ASSET_CHAINCODE",
    "HtlcVault",
    "PubChainAssetLedgerPort",
    "QuorumAssetContract",
    "QuorumAssetLedgerPort",
    "QUORUM_ASSET_CONTRACT",
    "STATE_AVAILABLE",
    "STATE_CLAIMED",
    "STATE_LOCKED",
    "STATE_REFUNDED",
    "issue_corda_asset",
    "make_hashlock",
    "new_preimage",
    "register_corda_asset_contract",
]
