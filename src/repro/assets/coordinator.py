"""The two-party atomic exchange coordinator (HTLC choreography).

Drives a cross-network asset swap between an *initiator* (offering an
asset on its own network) and a *responder* (offering one on theirs) as
an explicit state machine:

.. code-block:: text

    CREATED -> OFFER_LOCKED -> OFFER_VERIFIED -> COUNTER_LOCKED
            -> COUNTER_VERIFIED -> COUNTER_CLAIMED -> COMPLETED

    any pre-reveal state --abort()--> ABORTED --refund()--> REFUNDED
    OFFER_LOCKED.. states ----------- refund() (post-timeout) --> REFUNDED

Every ledger command travels as a ``MSG_KIND_ASSET_*`` relay envelope
through the ordinary discovery/failover/interceptor path, and — the
paper's trust argument, extended to value — each party verifies the
*other side's lock* through a proof-carrying ``GetLock`` query validated
by the :class:`~repro.interop.proofs.ProofScheme` plane before taking its
next irreversible step: the responder before locking its own asset, the
initiator before revealing the preimage. Timeouts are staggered
(``counter_timeout < offer_timeout``) so the responder can always claim
the offer with the revealed preimage before the initiator's refund window
opens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.assets.htlc import (
    STATE_CLAIMED,
    STATE_LOCKED,
    make_hashlock,
    new_preimage,
)
from repro.errors import (
    AssetError,
    DiscoveryError,
    ExchangeStateError,
    ProtocolError,
    RelayError,
)
from repro.assets.metrics import KIND_EXCHANGE, ExchangeMetrics
from repro.interop.client import InteropClient
from repro.store import StateStore
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_STATUS,
    MSG_KIND_ASSET_UNLOCK,
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetAckMsg,
    AssetCommandMsg,
    AuthInfo,
    NetworkAddressMsg,
)
from repro.utils.ids import random_id

#: :class:`~repro.store.StateStore` namespace for exchange journals.
NS_EXCHANGES = "assets/exchanges"


class ExchangeState(Enum):
    """Lifecycle of one two-party atomic exchange."""

    CREATED = "created"
    OFFER_LOCKED = "offer_locked"
    OFFER_VERIFIED = "offer_verified"
    COUNTER_LOCKED = "counter_locked"
    COUNTER_VERIFIED = "counter_verified"
    COUNTER_CLAIMED = "counter_claimed"  # preimage is now public
    COMPLETED = "completed"
    ABORTED = "aborted"
    REFUNDED = "refunded"
    FAILED = "failed"


#: Legal transitions; anything else raises :class:`ExchangeStateError`.
_TRANSITIONS: dict[ExchangeState, frozenset[ExchangeState]] = {
    ExchangeState.CREATED: frozenset(
        {ExchangeState.OFFER_LOCKED, ExchangeState.ABORTED, ExchangeState.FAILED}
    ),
    ExchangeState.OFFER_LOCKED: frozenset(
        {
            ExchangeState.OFFER_VERIFIED,
            ExchangeState.ABORTED,
            ExchangeState.REFUNDED,
            ExchangeState.FAILED,
        }
    ),
    ExchangeState.OFFER_VERIFIED: frozenset(
        {
            ExchangeState.COUNTER_LOCKED,
            ExchangeState.ABORTED,
            ExchangeState.REFUNDED,
            ExchangeState.FAILED,
        }
    ),
    ExchangeState.COUNTER_LOCKED: frozenset(
        {
            ExchangeState.COUNTER_VERIFIED,
            ExchangeState.ABORTED,
            ExchangeState.REFUNDED,
            ExchangeState.FAILED,
        }
    ),
    ExchangeState.COUNTER_VERIFIED: frozenset(
        {
            ExchangeState.COUNTER_CLAIMED,
            ExchangeState.ABORTED,
            ExchangeState.REFUNDED,
            ExchangeState.FAILED,
        }
    ),
    ExchangeState.COUNTER_CLAIMED: frozenset(
        {ExchangeState.COMPLETED, ExchangeState.FAILED}
    ),
    ExchangeState.COMPLETED: frozenset(),
    ExchangeState.ABORTED: frozenset({ExchangeState.REFUNDED, ExchangeState.FAILED}),
    ExchangeState.REFUNDED: frozenset(),
    # A failed exchange can still unwind its *unclaimed* escrows once
    # their timelocks expire — a lock is refundable exactly when its
    # claim window has closed unclaimed, whatever went wrong elsewhere.
    ExchangeState.FAILED: frozenset({ExchangeState.REFUNDED}),
}

#: States in which the exchange can still be called off without loss
#: (the preimage has not been revealed).
_PRE_REVEAL_STATES = frozenset(
    {
        ExchangeState.CREATED,
        ExchangeState.OFFER_LOCKED,
        ExchangeState.OFFER_VERIFIED,
        ExchangeState.COUNTER_LOCKED,
        ExchangeState.COUNTER_VERIFIED,
    }
)


@dataclass(frozen=True)
class AssetSpec:
    """One leg of the exchange: an asset on a network/ledger/contract.

    No function segment — the HTLC verb travels as the envelope *kind*,
    not as an addressed function.
    """

    network: str
    ledger: str
    contract: str
    asset_id: str

    @classmethod
    def parse(cls, address_text: str, asset_id: str) -> "AssetSpec":
        segments = address_text.split("/")
        if len(segments) != 3 or not all(segments):
            raise ProtocolError(
                f"asset address {address_text!r} must be network/ledger/contract"
            )
        network, ledger, contract = segments
        return cls(network=network, ledger=ledger, contract=contract, asset_id=asset_id)

    def query_address(self, function: str) -> str:
        return f"{self.network}/{self.ledger}/{self.contract}/{function}"


@dataclass
class ExchangeResult:
    """What a finished (or unwound) exchange produced."""

    state: ExchangeState
    hashlock: bytes
    preimage: bytes | None
    offer_lock: AssetAckMsg | None = None
    counter_lock: AssetAckMsg | None = None
    counter_claim: AssetAckMsg | None = None
    offer_claim: AssetAckMsg | None = None
    refunds: list[AssetAckMsg] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.state is ExchangeState.COMPLETED


class AssetExchangeCoordinator:
    """Drives one Fabric↔Quorum(↔anything) atomic exchange end to end.

    ``initiator`` and ``responder`` are the two parties' interop clients;
    the offer asset must live on the initiator's network and the ask asset
    on the responder's (each party escrows locally, the counterparty
    claims across networks). ``offer_policy`` / ``ask_policy`` are the
    verification policies for the proof-carrying lock confirmations
    (``None`` = look up the CMDAC-recorded policy, as for queries).

    Crash recovery: pass a :class:`~repro.store.StateStore` and every
    state-machine transition is journaled under ``exchange_id``. A
    restarted process rebuilds the coordinator with :meth:`resume`, then
    calls :meth:`recover` to resolve the one step the journal cannot —
    "did the command I issued right before the crash land?" — through
    proof-carrying ``GetLock`` readbacks against the ledgers themselves
    (the relay that just crashed is exactly the party not trusted for
    that answer), and :meth:`run` continues from wherever the machine
    stopped.
    """

    def __init__(
        self,
        initiator: InteropClient,
        responder: InteropClient,
        offer: AssetSpec,
        ask: AssetSpec,
        offer_timeout: float = 600.0,
        counter_timeout: float = 300.0,
        offer_policy: str | None = None,
        ask_policy: str | None = None,
        verify_margin: float | None = None,
        store: StateStore | None = None,
        exchange_id: str | None = None,
        metrics: ExchangeMetrics | None = None,
    ) -> None:
        if offer.network != initiator.network_id:
            raise ProtocolError(
                f"offer asset lives on {offer.network!r} but the initiator "
                f"belongs to {initiator.network_id!r}"
            )
        if ask.network != responder.network_id:
            raise ProtocolError(
                f"ask asset lives on {ask.network!r} but the responder "
                f"belongs to {responder.network_id!r}"
            )
        if counter_timeout >= offer_timeout:
            raise ProtocolError(
                f"counter timeout ({counter_timeout}s) must be shorter than "
                f"the offer timeout ({offer_timeout}s): the responder needs "
                f"time to claim with the revealed preimage before the "
                f"initiator's refund window opens"
            )
        self._initiator = initiator
        self._responder = responder
        self.offer = offer
        self.ask = ask
        self.offer_timeout = offer_timeout
        self.counter_timeout = counter_timeout
        self._offer_policy = offer_policy
        self._ask_policy = ask_policy
        #: Minimum remaining lock lifetime a party requires before acting.
        self.verify_margin = (
            verify_margin if verify_margin is not None else counter_timeout / 2
        )
        if offer_timeout < counter_timeout + self.verify_margin:
            # Checked HERE, before anything is escrowed: verify_offer()
            # will demand counter_timeout + verify_margin of remaining
            # offer-lock lifetime, so a tighter configuration could only
            # ever lock the offer asset and then fail.
            raise ProtocolError(
                f"offer timeout ({offer_timeout}s) must cover the counter "
                f"timeout plus the verification margin "
                f"({counter_timeout}s + {self.verify_margin}s); shorten the "
                f"margin or lengthen the offer timelock"
            )
        self._clock = initiator.relay.clock
        #: The initiator's secret; its hash is the exchange's hashlock.
        self.preimage = new_preimage()
        self.hashlock = make_hashlock(self.preimage)
        self._verified_hashlock = b""
        self._counter_refunded = False
        self._offer_refunded = False
        self.state = ExchangeState.CREATED
        self.offer_deadline: float | None = None
        self.counter_deadline: float | None = None
        self.result = ExchangeResult(
            state=self.state, hashlock=self.hashlock, preimage=None
        )
        self.exchange_id = exchange_id or random_id("exch-")
        self._store = store
        self._started_at: float | None = None
        self._metrics = metrics
        self._journal()
        if metrics is not None:
            metrics.exchange_started(KIND_EXCHANGE)

    # -- durability ---------------------------------------------------------------

    def _journal(self) -> None:
        """Persist everything a resumed coordinator needs (no-op without
        a store). Written after every transition and flag change."""
        if self._store is None:
            return
        record = {
            "state": self.state.value,
            "offer": [
                self.offer.network,
                self.offer.ledger,
                self.offer.contract,
                self.offer.asset_id,
            ],
            "ask": [
                self.ask.network,
                self.ask.ledger,
                self.ask.contract,
                self.ask.asset_id,
            ],
            "offer_timeout": self.offer_timeout,
            "counter_timeout": self.counter_timeout,
            "verify_margin": self.verify_margin,
            "preimage": self.preimage.hex(),
            "hashlock": self.hashlock.hex(),
            "verified_hashlock": self._verified_hashlock.hex(),
            "offer_deadline": self.offer_deadline,
            "counter_deadline": self.counter_deadline,
            "counter_refunded": self._counter_refunded,
            "offer_refunded": self._offer_refunded,
            "offer_locked": self.result.offer_lock is not None,
            "counter_locked": self.result.counter_lock is not None,
            "counter_claimed": self.result.counter_claim is not None,
            "offer_claimed": self.result.offer_claim is not None,
            "preimage_revealed": self.result.preimage is not None,
            "started_at": self._started_at,
        }
        self._store.put(
            NS_EXCHANGES, self.exchange_id, json.dumps(record).encode("utf-8")
        )

    @staticmethod
    def _journaled_ack(asset_id: str) -> AssetAckMsg:
        """Stand-in ack for a leg the journal records as landed: the
        original wire ack died with the crashed process, but the flags
        (and :meth:`refund`'s decisions) only need *that* it landed."""
        return AssetAckMsg(
            version=PROTOCOL_VERSION,
            nonce="journaled",
            status=STATUS_OK,
            asset_id=asset_id,
        )

    @classmethod
    def resume(
        cls,
        initiator: InteropClient,
        responder: InteropClient,
        store: StateStore,
        exchange_id: str,
        offer_policy: str | None = None,
        ask_policy: str | None = None,
        metrics: ExchangeMetrics | None = None,
    ) -> "AssetExchangeCoordinator":
        """Rebuild a coordinator from its journal after a crash.

        The journal restores the secret, the verified hashlock, the
        deadlines, and the state machine position; call :meth:`recover`
        next to resolve whether the command in flight at the crash
        landed, then :meth:`run` (or :meth:`refund`) to continue.
        """
        raw = store.get(NS_EXCHANGES, exchange_id)
        if raw is None:
            raise ExchangeStateError(
                f"no journaled exchange {exchange_id!r} in the store"
            )
        record = json.loads(raw.decode("utf-8"))
        coordinator = cls(
            initiator,
            responder,
            AssetSpec(*record["offer"]),
            AssetSpec(*record["ask"]),
            offer_timeout=record["offer_timeout"],
            counter_timeout=record["counter_timeout"],
            offer_policy=offer_policy,
            ask_policy=ask_policy,
            verify_margin=record["verify_margin"],
            exchange_id=exchange_id,
        )
        coordinator.preimage = bytes.fromhex(record["preimage"])
        coordinator.hashlock = bytes.fromhex(record["hashlock"])
        coordinator._verified_hashlock = bytes.fromhex(
            record["verified_hashlock"]
        )
        coordinator.state = ExchangeState(record["state"])
        coordinator.offer_deadline = record["offer_deadline"]
        coordinator.counter_deadline = record["counter_deadline"]
        coordinator._counter_refunded = record["counter_refunded"]
        coordinator._offer_refunded = record["offer_refunded"]
        result = coordinator.result
        result.state = coordinator.state
        result.hashlock = coordinator.hashlock
        if record["offer_locked"]:
            result.offer_lock = cls._journaled_ack(coordinator.offer.asset_id)
        if record["counter_locked"]:
            result.counter_lock = cls._journaled_ack(coordinator.ask.asset_id)
        if record["counter_claimed"]:
            result.counter_claim = cls._journaled_ack(coordinator.ask.asset_id)
        if record["offer_claimed"]:
            result.offer_claim = cls._journaled_ack(coordinator.offer.asset_id)
        if record["preimage_revealed"]:
            result.preimage = coordinator.preimage
        coordinator._started_at = record.get("started_at")
        # Attach the store (and metrics) only now: a crash inside resume()
        # itself must never regress the journal to the constructor's
        # CREATED image, and a resumed exchange is not a *new* start.
        coordinator._store = store
        coordinator._metrics = metrics
        coordinator._journal()
        return coordinator

    def _peek_lock(
        self, viewer: InteropClient, spec: AssetSpec, policy: str | None
    ) -> dict:
        """Proof-verified ``GetLock`` readback, returned raw (recovery
        decides; unlike :meth:`_verify_lock` nothing FAILs here — the
        readback itself raising leaves the step retriable)."""
        fetched = viewer.remote_query(
            spec.query_address("GetLock"), [spec.asset_id], policy=policy
        )
        return json.loads(fetched.data)

    def recover(self) -> ExchangeState:
        """Re-derive the next safe step after :meth:`resume`.

        The journal is written *after* each command's ack, so a crash
        leaves exactly one ambiguity: the command issued right before it
        may have committed without being journaled. For each such state
        the relevant party reads the escrow through a proof-carrying
        ``GetLock`` query — never the relay's word — and fast-forwards
        the machine if the ledger shows the step landed with *this*
        exchange's terms. States with no in-flight command return
        unchanged; a readback failure raises without a state change, so
        recovery is retriable.
        """
        if self.state is ExchangeState.CREATED:
            # lock_offer may have landed: the responder (who holds the
            # offer network's foreign config) checks the offer escrow.
            record = self._peek_lock(
                self._responder, self.offer, self._offer_policy
            )
            if (
                record.get("state") == STATE_LOCKED
                and record.get("hashlock") == self.hashlock.hex()
                and record.get("recipient") == self.responder_party
            ):
                self.offer_deadline = float(record.get("timeout", 0.0))
                self.result.offer_lock = self._journaled_ack(
                    self.offer.asset_id
                )
                self._advance(ExchangeState.OFFER_LOCKED)
        if self.state is ExchangeState.OFFER_VERIFIED:
            # lock_counter may have landed: the initiator checks the ask
            # escrow for the hashlock the responder verified.
            record = self._peek_lock(self._initiator, self.ask, self._ask_policy)
            if (
                record.get("state") == STATE_LOCKED
                and record.get("hashlock") == self._verified_hashlock.hex()
                and record.get("recipient") == self.initiator_party
            ):
                self.counter_deadline = float(record.get("timeout", 0.0))
                self.result.counter_lock = self._journaled_ack(
                    self.ask.asset_id
                )
                self._advance(ExchangeState.COUNTER_LOCKED)
        if self.state is ExchangeState.COUNTER_VERIFIED:
            # claim_counter may have landed — and if it did, the preimage
            # is PUBLIC: the machine must move past the reveal, not retry
            # into a refund window.
            record = self._peek_lock(self._initiator, self.ask, self._ask_policy)
            if record.get("state") == STATE_CLAIMED:
                if record.get("preimage") != self.preimage.hex():
                    self._advance(ExchangeState.FAILED)
                    raise AssetError(
                        "ask escrow was claimed with a foreign preimage; "
                        "the exchange cannot proceed"
                    )
                self.result.counter_claim = self._journaled_ack(
                    self.ask.asset_id
                )
                self.result.preimage = self.preimage
                self._advance(ExchangeState.COUNTER_CLAIMED)
        if self.state is ExchangeState.COUNTER_CLAIMED:
            # claim_offer may have landed: the responder checks its claim.
            record = self._peek_lock(
                self._responder, self.offer, self._offer_policy
            )
            if (
                record.get("state") == STATE_CLAIMED
                and record.get("preimage") == self.preimage.hex()
            ):
                self.result.offer_claim = self._journaled_ack(
                    self.offer.asset_id
                )
                self._advance(ExchangeState.COMPLETED)
        return self.state

    # -- identity helpers ---------------------------------------------------------

    @property
    def initiator_party(self) -> str:
        return f"{self._initiator.identity.name}@{self._initiator.network_id}"

    @property
    def responder_party(self) -> str:
        return f"{self._responder.identity.name}@{self._responder.network_id}"

    @staticmethod
    def _auth(client: InteropClient) -> AuthInfo:
        identity = client.identity
        return AuthInfo(
            requesting_network=client.network_id,
            requesting_org=identity.org,
            requestor=identity.name,
            certificate=identity.certificate.to_bytes(),
            public_key=identity.keypair.public.to_bytes(),
        )

    def _command(
        self,
        client: InteropClient,
        spec: AssetSpec,
        recipient: str = "",
        hashlock: bytes = b"",
        timeout: float = 0.0,
        preimage: bytes = b"",
    ) -> AssetCommandMsg:
        return AssetCommandMsg(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=spec.network,
                ledger=spec.ledger,
                contract=spec.contract,
                function="",
            ),
            asset_id=spec.asset_id,
            recipient=recipient,
            hashlock=hashlock,
            timeout=timeout,
            preimage=preimage,
            auth=self._auth(client),
            nonce=random_id("asset-"),
        )

    # -- state machine core -------------------------------------------------------

    def _advance(self, new_state: ExchangeState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise ExchangeStateError(
                f"cannot move exchange from {self.state.value!r} to "
                f"{new_state.value!r}"
            )
        self.state = new_state
        self.result.state = new_state
        self._journal()
        if self._metrics is not None:
            self._metrics.state_entered(KIND_EXCHANGE, new_state.value)

    def _require(self, *states: ExchangeState) -> None:
        if self.state not in states:
            expected = ", ".join(state.value for state in states)
            raise ExchangeStateError(
                f"step requires state {expected}; exchange is "
                f"{self.state.value!r}"
            )

    def _checked(self, ack: AssetAckMsg, step: str) -> AssetAckMsg:
        if ack.status != STATUS_OK:
            self._advance(ExchangeState.FAILED)
            raise AssetError(f"{step} failed: {ack.error}")
        return ack

    # -- protocol steps -----------------------------------------------------------

    def lock_offer(self) -> AssetAckMsg:
        """Initiator escrows the offer asset for the responder (step 1)."""
        self._require(ExchangeState.CREATED)
        self._started_at = self._clock.now()
        deadline = self._started_at + self.offer_timeout
        ack = self._checked(
            self._initiator.relay.remote_asset(
                MSG_KIND_ASSET_LOCK,
                self._command(
                    self._initiator,
                    self.offer,
                    recipient=self.responder_party,
                    hashlock=self.hashlock,
                    timeout=deadline,
                ),
            ),
            "offer lock",
        )
        self.offer_deadline = deadline
        self.result.offer_lock = ack
        self._advance(ExchangeState.OFFER_LOCKED)
        return ack

    def verify_offer(self) -> dict:
        """Responder proof-verifies the offer lock before escrowing (step 2).

        The lock record comes back as trusted data — attested by the
        offer network's peers under the verification policy — so a lying
        relay cannot make the responder lock against a phantom escrow. The
        responder takes the hashlock *from the verified record*, not from
        out-of-band coordination.
        """
        self._require(ExchangeState.OFFER_LOCKED)
        record = self._verify_lock(
            self._responder,
            self.offer,
            self._offer_policy,
            expected_recipient=self.responder_party,
            minimum_lifetime=self.counter_timeout + self.verify_margin,
        )
        self._verified_hashlock = bytes.fromhex(record["hashlock"])
        self._advance(ExchangeState.OFFER_VERIFIED)
        return record

    def lock_counter(self) -> AssetAckMsg:
        """Responder escrows the ask asset under the same hashlock (step 3)."""
        self._require(ExchangeState.OFFER_VERIFIED)
        deadline = self._clock.now() + self.counter_timeout
        ack = self._checked(
            self._responder.relay.remote_asset(
                MSG_KIND_ASSET_LOCK,
                self._command(
                    self._responder,
                    self.ask,
                    recipient=self.initiator_party,
                    # The hashlock the responder escrows under is the one it
                    # proof-verified on the offer ledger — never a value
                    # relayed out-of-band.
                    hashlock=self._verified_hashlock,
                    timeout=deadline,
                ),
            ),
            "counter lock",
        )
        self.counter_deadline = deadline
        self.result.counter_lock = ack
        self._advance(ExchangeState.COUNTER_LOCKED)
        return ack

    def verify_counter(self) -> dict:
        """Initiator proof-verifies the counter lock before revealing (step 4)."""
        self._require(ExchangeState.COUNTER_LOCKED)
        record = self._verify_lock(
            self._initiator,
            self.ask,
            self._ask_policy,
            expected_recipient=self.initiator_party,
            expected_hashlock=self.hashlock,
            minimum_lifetime=self.verify_margin,
        )
        self._advance(ExchangeState.COUNTER_VERIFIED)
        return record

    def _claim_with_recovery(
        self,
        client: InteropClient,
        spec: AssetSpec,
        policy: str | None,
        preimage: bytes,
        step: str,
    ) -> AssetAckMsg:
        """Issue a claim, surviving a lost ack without double-claiming.

        A transport failure on the claim round-trip (the relay crashed or
        dropped the *reply*) does not mean the claim was lost: the command
        may have committed before the path failed. Rather than blindly
        re-claiming — which against an already-claimed lock reads as a
        contract refusal and would wrongly fail the exchange — learn the
        escrow's true state and decide: claimed with *this* preimage means
        the claim landed (exactly once; the vault rejects a second claim),
        still locked means the request itself was lost and is safe to
        re-issue. Anything else is unrecoverable.

        The readback is a *proof-carrying* ``GetLock`` query, not a status
        ack: the relay that just failed is exactly the party the protocol
        refuses to trust, and an unverified "claimed" answer from it could
        trick this party into proceeding against a still-locked escrow.
        Only attestation proofs are believed — here as everywhere.
        """
        command = self._command(client, spec, preimage=preimage)
        try:
            return client.relay.remote_asset(MSG_KIND_ASSET_CLAIM, command)
        except (RelayError, DiscoveryError):
            # May itself raise on an unreachable/tampering path; that
            # propagates without a state change, so the step is retriable.
            fetched = client.remote_query(
                spec.query_address("GetLock"), [spec.asset_id], policy=policy
            )
            record = json.loads(fetched.data)
            if (
                record.get("state") == STATE_CLAIMED
                and record.get("preimage") == preimage.hex()
            ):
                # The lost ack's claim committed: answer with the
                # proof-verified post-claim record.
                return AssetAckMsg(
                    version=PROTOCOL_VERSION,
                    nonce=command.nonce,
                    status=STATUS_OK,
                    asset_id=record.get("asset_id", spec.asset_id),
                    state=record.get("state", ""),
                    owner=record.get("owner", ""),
                    recipient=record.get("recipient", ""),
                    hashlock=(
                        bytes.fromhex(record["hashlock"])
                        if record.get("hashlock")
                        else b""
                    ),
                    timeout=float(record.get("timeout", 0.0)),
                    preimage=preimage,
                )
            if record.get("state") == STATE_LOCKED:
                return client.relay.remote_asset(MSG_KIND_ASSET_CLAIM, command)
            self._advance(ExchangeState.FAILED)
            raise AssetError(
                f"{step} ack lost and the escrow is unrecoverable "
                f"(verified state {record.get('state')!r})"
            )

    def claim_counter(self) -> AssetAckMsg:
        """Initiator claims the ask asset, revealing the preimage (step 5)."""
        self._require(ExchangeState.COUNTER_VERIFIED)
        ack = self._checked(
            self._claim_with_recovery(
                self._initiator,
                self.ask,
                self._ask_policy,
                self.preimage,
                "counter claim",
            ),
            "counter claim",
        )
        self.result.counter_claim = ack
        self.result.preimage = self.preimage
        self._advance(ExchangeState.COUNTER_CLAIMED)
        return ack

    def claim_offer(self) -> AssetAckMsg:
        """Responder claims the offer with the now-public preimage (step 6).

        The responder reads the revealed preimage from its *own* ledger's
        lock record (where the initiator's claim published it) — it never
        needs to trust the initiator or any relay for the secret.
        """
        self._require(ExchangeState.COUNTER_CLAIMED)
        status = self._checked(
            self._responder.relay.remote_asset(
                MSG_KIND_ASSET_STATUS,
                self._command(self._responder, self.ask),
            ),
            "preimage readback",
        )
        if not status.preimage:
            self._advance(ExchangeState.FAILED)
            raise AssetError(
                f"ask-asset lock on {self.ask.network!r} carries no revealed "
                f"preimage (state {status.state!r})"
            )
        ack = self._checked(
            self._claim_with_recovery(
                self._responder,
                self.offer,
                self._offer_policy,
                status.preimage,
                "offer claim",
            ),
            "offer claim",
        )
        self.result.offer_claim = ack
        self._advance(ExchangeState.COMPLETED)
        if self._metrics is not None and self._started_at is not None:
            self._metrics.latency_recorded(
                KIND_EXCHANGE, self._clock.now() - self._started_at
            )
        return ack

    def run(self) -> ExchangeResult:
        """Drive the exchange to completion from the *current* state.

        On a fresh coordinator this is the full happy path; on a
        journal-resumed one (see :meth:`resume` / :meth:`recover`) it
        continues from wherever the state machine stopped.
        """
        if self.state is ExchangeState.CREATED:
            self.lock_offer()
        if self.state is ExchangeState.OFFER_LOCKED:
            self.verify_offer()
        if self.state is ExchangeState.OFFER_VERIFIED:
            self.lock_counter()
        if self.state is ExchangeState.COUNTER_LOCKED:
            self.verify_counter()
        if self.state is ExchangeState.COUNTER_VERIFIED:
            self.claim_counter()
        if self.state is ExchangeState.COUNTER_CLAIMED:
            self.claim_offer()
        if self.state is not ExchangeState.COMPLETED:
            raise ExchangeStateError(
                f"exchange cannot proceed from state {self.state.value!r}"
            )
        return self.result

    # -- unhappy paths ------------------------------------------------------------

    def abort(self) -> None:
        """Call the exchange off before the preimage is revealed.

        Safe by construction: the secret never left the initiator, so
        neither escrow is claimable by anyone — both unwind through
        :meth:`refund` once their timelocks expire.
        """
        self._require(*_PRE_REVEAL_STATES)
        self._advance(ExchangeState.ABORTED)
        if self._metrics is not None:
            self._metrics.abort_recorded(KIND_EXCHANGE)

    def refund(self) -> list[AssetAckMsg]:
        """Unwind every standing (locked, unclaimed) escrow after its
        timelock expired.

        Valid from any pre-reveal locked state, after :meth:`abort`, and
        from ``FAILED`` — whatever broke the exchange, an unclaimed lock
        must still be recoverable. Each leg's unlock is refused on-ledger
        while its claim window is still open (the contracts enforce the
        disjointness), so calling this early raises :class:`AssetError`
        and leaves the state machine where it was.
        """
        refundable_from = _PRE_REVEAL_STATES | {
            ExchangeState.ABORTED,
            ExchangeState.FAILED,
        }
        if self.state not in refundable_from:
            raise ExchangeStateError(
                f"nothing to refund from state {self.state.value!r}"
            )
        if self.result.offer_lock is None and self.result.counter_lock is None:
            raise ExchangeStateError("no escrow is standing; nothing to refund")
        acks: list[AssetAckMsg] = []
        # Counter leg first: its (shorter) timelock expires first. A non-OK
        # ack (claim window still open) raises WITHOUT a terminal state
        # change, so the refund can be retried once the timelock expires;
        # legs already refunded or claimed are not touched.
        if (
            self.result.counter_lock is not None
            and self.result.counter_claim is None
            and not self._counter_refunded
        ):
            ack = self._responder.relay.remote_asset(
                MSG_KIND_ASSET_UNLOCK, self._command(self._responder, self.ask)
            )
            if ack.status != STATUS_OK:
                raise AssetError(f"counter refund refused: {ack.error}")
            self._counter_refunded = True
            self._journal()  # a crash here must not re-refund this leg
            self.result.refunds.append(ack)
            acks.append(ack)
            if self._metrics is not None:
                self._metrics.refund_recorded(KIND_EXCHANGE)
        if (
            self.result.offer_lock is not None
            and self.result.offer_claim is None
            and not self._offer_refunded
        ):
            ack = self._initiator.relay.remote_asset(
                MSG_KIND_ASSET_UNLOCK, self._command(self._initiator, self.offer)
            )
            if ack.status != STATUS_OK:
                raise AssetError(f"offer refund refused: {ack.error}")
            self._offer_refunded = True
            self._journal()
            self.result.refunds.append(ack)
            acks.append(ack)
            if self._metrics is not None:
                self._metrics.refund_recorded(KIND_EXCHANGE)
        self._advance(ExchangeState.REFUNDED)
        return acks

    # -- the proof plane ----------------------------------------------------------

    def _verify_lock(
        self,
        verifier: InteropClient,
        spec: AssetSpec,
        policy: str | None,
        expected_recipient: str,
        minimum_lifetime: float,
        expected_hashlock: bytes | None = None,
    ) -> dict:
        """Fetch + proof-verify a remote lock record; check its terms.

        Runs the ordinary trusted-data-transfer query (attestations under
        the verification policy, end-to-end sealed), then validates the
        HTLC terms the verifying party depends on. Failure marks the
        exchange FAILED and raises.
        """
        try:
            fetched = verifier.remote_query(
                spec.query_address("GetLock"), [spec.asset_id], policy=policy
            )
            record = json.loads(fetched.data)
        except Exception:
            self._advance(ExchangeState.FAILED)
            raise
        problems: list[str] = []
        if record.get("state") != STATE_LOCKED:
            problems.append(f"state is {record.get('state')!r}, not locked")
        if record.get("asset_id") != spec.asset_id:
            problems.append(
                f"record covers asset {record.get('asset_id')!r}, expected "
                f"{spec.asset_id!r}"
            )
        if record.get("recipient") != expected_recipient:
            problems.append(
                f"locked for {record.get('recipient')!r}, expected "
                f"{expected_recipient!r}"
            )
        if expected_hashlock is not None and record.get("hashlock") != expected_hashlock.hex():
            problems.append("hashlock does not match the exchange secret")
        remaining = float(record.get("timeout", 0.0)) - self._clock.now()
        if remaining < minimum_lifetime:
            problems.append(
                f"lock expires in {remaining:.1f}s, need at least "
                f"{minimum_lifetime:.1f}s"
            )
        if problems:
            self._advance(ExchangeState.FAILED)
            raise AssetError(
                f"verified lock on {spec.network!r} is unacceptable: "
                + "; ".join(problems)
            )
        return record
