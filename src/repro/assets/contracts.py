"""Platform contracts hosting the HTLC vault on Fabric and Quorum.

Both contracts expose the same function surface, so the network-neutral
asset protocol addresses them identically:

- ``Issue(asset_id, owner, metadata)``           (transaction, admin)
- ``LockAsset(asset_id, sender, recipient, hashlock_hex, timeout)``
- ``ClaimAsset(asset_id, claimer, preimage_hex)``
- ``UnlockAsset(asset_id, sender)``
- ``GetLock(asset_id)`` / ``GetAsset(asset_id)``  (views)

The acting-party arguments (``sender``/``claimer``) are logical party ids
of the form ``<requestor>@<network>``; they are supplied by the
:class:`~repro.assets.ports.AssetLedgerPort` after it has authenticated
the requesting entity (certificate + exposure control), mirroring how the
§5 transaction extension submits under a designated local invoker.

On Fabric, ``GetLock``/``GetAsset`` are interop-aware exactly like the
paper's adapted application chaincode: an incoming relay query (detected
via the ``interop`` transient) is ECC-gated and its response sealed, so
lock records travel back with consensus-backed proofs. On Quorum the
driver performs the equivalent port checks and sealing.
"""

from __future__ import annotations

import json

from repro.assets.htlc import (
    STATE_CLAIMED,
    STATE_LOCKED,
    STATE_REFUNDED,
    HtlcVault,
    make_hashlock,
)
from repro.errors import AssetError, EVMError
from repro.fabric.chaincode import Chaincode, ChaincodeStub, require_args
from repro.quorum.contracts import CallContext, QuorumContract

#: Default deployment names for the three vault-hosting platforms.
FABRIC_ASSET_CHAINCODE = "assetscc"
QUORUM_ASSET_CONTRACT = "asset-vault"
CORDA_ASSET_CONTRACT = "asset-vault"

#: The vault's view functions (safe to serve from any single peer).
VIEW_FUNCTIONS = frozenset({"GetLock", "GetAsset"})


class _StubStorage:
    """Adapts a :class:`ChaincodeStub` to the vault's storage protocol."""

    def __init__(self, stub: ChaincodeStub) -> None:
        self._stub = stub

    def get(self, key: str) -> bytes | None:
        return self._stub.get_state(key)

    def put(self, key: str, value: bytes) -> None:
        self._stub.put_state(key, value)


class _DictStorage:
    """Adapts Quorum's plain ``dict`` contract storage to the vault."""

    def __init__(self, storage: dict[str, bytes]) -> None:
        self._storage = storage

    def get(self, key: str) -> bytes | None:
        return self._storage.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._storage[key] = value


class FabricAssetChaincode(Chaincode):
    """The HTLC vault as Fabric chaincode."""

    name = FABRIC_ASSET_CHAINCODE

    def invoke(self, stub: ChaincodeStub) -> bytes:
        if stub.function == "init":
            return b"ok"
        vault = HtlcVault(_StubStorage(stub))
        now = stub.timestamp
        if stub.function == "Issue":
            asset_id, owner, metadata = require_args(stub, 3)
            return vault.issue(asset_id, owner, metadata)
        if stub.function == "AuthorizeInvoker":
            (name,) = require_args(stub, 1)
            return vault.authorize_invoker(name)
        creator = stub.get_creator()
        creator_name = creator.subject.common_name if creator else ""
        if stub.function == "LockAsset":
            asset_id, sender, recipient, hashlock_hex, timeout = require_args(stub, 5)
            vault.ensure_acting_authority(creator_name, sender)
            return vault.lock(
                asset_id, sender, recipient, hashlock_hex, float(timeout), now
            )
        if stub.function == "ClaimAsset":
            asset_id, claimer, preimage_hex = require_args(stub, 3)
            vault.ensure_acting_authority(creator_name, claimer)
            return vault.claim(asset_id, claimer, preimage_hex, now)
        if stub.function == "UnlockAsset":
            asset_id, sender = require_args(stub, 2)
            vault.ensure_acting_authority(creator_name, sender)
            return vault.refund(asset_id, sender, now)
        if stub.function in VIEW_FUNCTIONS:
            (asset_id,) = require_args(stub, 1)
            view = vault.get_lock if stub.function == "GetLock" else vault.get_asset
            value = view(asset_id)
            interop_raw = stub.get_transient("interop")
            if interop_raw is None:
                return value
            # Incoming relay query: the paper's two-call adaptation —
            # exposure-check the foreign requestor, then seal the response
            # so the proof plane binds the lock record end to end.
            ctx = json.loads(interop_raw)
            stub.invoke_chaincode(
                "ecc",
                "CheckAccess",
                [
                    ctx["requesting_network"],
                    ctx["requesting_org"],
                    self.name,
                    stub.function,
                ],
            )
            return stub.invoke_chaincode(
                "ecc",
                "SealResponse",
                [
                    value.hex(),
                    ctx["client_pubkey"],
                    "true" if ctx["confidential"] else "false",
                ],
            )
        raise ValueError(f"asset chaincode has no function {stub.function!r}")


class QuorumAssetContract(QuorumContract):
    """The HTLC vault as a Quorum-style contract."""

    address = QUORUM_ASSET_CONTRACT

    def execute(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        vault = HtlcVault(_DictStorage(storage))
        now = ctx.timestamp
        if function == "Issue":
            self._require(args, 3, function)
            return vault.issue(args[0], args[1], args[2])
        if function == "AuthorizeInvoker":
            self._require(args, 1, function)
            return vault.authorize_invoker(args[0])
        # ctx.sender is the qualified id "<name>.<org>"; the name part is
        # the creator the acting party must bind to.
        creator_name = ctx.sender.split(".", 1)[0]
        if function == "LockAsset":
            self._require(args, 5, function)
            vault.ensure_acting_authority(creator_name, args[1])
            return vault.lock(args[0], args[1], args[2], args[3], float(args[4]), now)
        if function == "ClaimAsset":
            self._require(args, 3, function)
            vault.ensure_acting_authority(creator_name, args[1])
            return vault.claim(args[0], args[1], args[2], now)
        if function == "UnlockAsset":
            self._require(args, 2, function)
            vault.ensure_acting_authority(creator_name, args[1])
            return vault.refund(args[0], args[1], now)
        raise EVMError(f"unknown transaction function {function!r}")

    def call(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        vault = HtlcVault(_DictStorage(storage))
        if function in VIEW_FUNCTIONS:
            self._require(args, 1, function)
            view = vault.get_lock if function == "GetLock" else vault.get_asset
            return view(args[0])
        raise EVMError(f"unknown view function {function!r}")

    @staticmethod
    def _require(args: list[str], count: int, function: str) -> None:
        if len(args) != count:
            raise EVMError(f"{function} expects {count} argument(s), got {len(args)}")


# ---------------------------------------------------------------------------
# Corda: the HTLC vault as linear states under notary-checked contract rules
# ---------------------------------------------------------------------------
#
# Corda has no shared world state to host :class:`HtlcVault` storage in;
# instead each asset is one :class:`~repro.corda.states.LinearState`
# (``linear_id`` = asset id, ``kind`` = the contract name) whose ``data``
# carries the same two records the KV vaults store::
#
#     {"asset": {"asset_id", "owner", "metadata"},
#      "lock":  {...the HtlcVault lock record...} | None}
#
# Transitions are proposed as flows (``AssetIssue`` / ``AssetLock`` /
# ``AssetClaim`` / ``AssetUnlock``) and the verifiers below re-impose the
# vault's exact window semantics — claim strictly before the timeout,
# refund at or after it — at *every signer* plus the notary, whose
# uniqueness check is what makes double-claim/double-refund structurally
# impossible (the lock state is consumed exactly once).


def _corda_asset_records(state) -> tuple[dict, dict | None]:
    """Unpack and sanity-check one asset state's (asset, lock) records."""
    data = state.data or {}
    asset = data.get("asset")
    lock = data.get("lock")
    if not isinstance(asset, dict) or asset.get("asset_id") != state.linear_id:
        raise AssetError(
            f"state {state.linear_id!r} carries no well-formed asset record"
        )
    if lock is not None and not isinstance(lock, dict):
        raise AssetError(f"state {state.linear_id!r} carries a malformed lock")
    return asset, lock


def _single_transition(inputs: list, outputs: list, command: str) -> tuple:
    if len(inputs) != 1 or len(outputs) != 1:
        raise AssetError(f"{command} must consume and produce exactly one state")
    before, after = inputs[0], outputs[0]
    if before.linear_id != after.linear_id or before.kind != after.kind:
        raise AssetError(f"{command} must evolve the same asset state")
    return before, after


def _require_same_lock_terms(old_lock: dict, new_lock: dict, command: str) -> None:
    for field in ("asset_id", "owner", "recipient", "hashlock", "timeout", "created_at"):
        if old_lock.get(field) != new_lock.get(field):
            raise AssetError(f"{command} may not rewrite the lock's {field!r}")


def register_corda_asset_contract(network) -> None:
    """Register the HTLC vault's contract rules on a Corda network.

    The verifiers close over the network clock, so the time windows are
    judged against the same ledger time the other platforms' vaults use.
    Registration is idempotent (re-registering replaces the verifiers).
    """
    clock = network.clock

    def verify_issue(inputs: list, outputs: list, command: str) -> None:
        if inputs or len(outputs) != 1:
            raise AssetError("AssetIssue must mint exactly one fresh state")
        asset, lock = _corda_asset_records(outputs[0])
        if not asset.get("owner"):
            raise AssetError("issue requires a non-empty owner")
        if lock is not None:
            raise AssetError("a freshly issued asset cannot carry a lock")

    def verify_lock(inputs: list, outputs: list, command: str) -> None:
        before, after = _single_transition(inputs, outputs, command)
        in_asset, in_lock = _corda_asset_records(before)
        out_asset, out_lock = _corda_asset_records(after)
        asset_id = before.linear_id
        if in_lock is not None and in_lock.get("state") == STATE_LOCKED:
            raise AssetError(f"asset {asset_id!r} is already locked")
        if out_asset != in_asset:
            raise AssetError("a lock may not change the asset record")
        if out_lock is None or out_lock.get("state") != STATE_LOCKED:
            raise AssetError(f"AssetLock must produce a {STATE_LOCKED!r} lock")
        if out_lock.get("owner") != in_asset.get("owner"):
            raise AssetError(
                f"asset {asset_id!r} is owned by {in_asset.get('owner')!r}, not "
                f"{out_lock.get('owner')!r}"
            )
        if not out_lock.get("recipient"):
            raise AssetError("lock requires a recipient")
        try:
            hashlock = bytes.fromhex(out_lock.get("hashlock", ""))
        except ValueError as exc:
            raise AssetError(f"hashlock is not valid hex: {exc}") from exc
        if len(hashlock) != 32:
            raise AssetError("hashlock must be a 32-byte SHA-256 digest")
        if out_lock.get("preimage"):
            raise AssetError("a fresh lock cannot reveal a preimage")
        now = clock.now()
        timeout = float(out_lock.get("timeout", 0.0))
        if timeout <= now:
            raise AssetError(
                f"lock timeout {timeout} is not in the future (ledger time {now})"
            )

    def verify_claim(inputs: list, outputs: list, command: str) -> None:
        before, after = _single_transition(inputs, outputs, command)
        _in_asset, in_lock = _corda_asset_records(before)
        out_asset, out_lock = _corda_asset_records(after)
        asset_id = before.linear_id
        if in_lock is None or in_lock.get("state") != STATE_LOCKED:
            raise AssetError(f"asset {asset_id!r} is not locked")
        now = clock.now()
        if now >= float(in_lock["timeout"]):
            raise AssetError(
                f"claim window for asset {asset_id!r} closed at ledger time "
                f"{in_lock['timeout']} (now {now}); only a refund is possible"
            )
        if out_lock is None or out_lock.get("state") != STATE_CLAIMED:
            raise AssetError(f"AssetClaim must produce a {STATE_CLAIMED!r} lock")
        _require_same_lock_terms(in_lock, out_lock, command)
        try:
            preimage = bytes.fromhex(out_lock.get("preimage", ""))
        except ValueError as exc:
            raise AssetError(f"preimage is not valid hex: {exc}") from exc
        if make_hashlock(preimage).hex() != in_lock["hashlock"]:
            raise AssetError(
                f"preimage does not hash to the lock's hashlock for asset "
                f"{asset_id!r}"
            )
        if out_asset.get("owner") != in_lock["recipient"]:
            raise AssetError(
                f"a claim must transfer asset {asset_id!r} to the lock's "
                f"recipient {in_lock['recipient']!r}"
            )

    def verify_unlock(inputs: list, outputs: list, command: str) -> None:
        before, after = _single_transition(inputs, outputs, command)
        in_asset, in_lock = _corda_asset_records(before)
        out_asset, out_lock = _corda_asset_records(after)
        asset_id = before.linear_id
        if in_lock is None or in_lock.get("state") != STATE_LOCKED:
            raise AssetError(f"asset {asset_id!r} is not locked")
        now = clock.now()
        if now < float(in_lock["timeout"]):
            raise AssetError(
                f"lock on asset {asset_id!r} is refundable only from ledger "
                f"time {in_lock['timeout']} (now {now}); the claim window is open"
            )
        if out_asset != in_asset:
            raise AssetError("a refund may not change the asset record")
        if out_lock is None or out_lock.get("state") != STATE_REFUNDED:
            raise AssetError(f"AssetUnlock must produce a {STATE_REFUNDED!r} lock")
        _require_same_lock_terms(in_lock, out_lock, command)
        if out_lock.get("preimage"):
            raise AssetError("a refund cannot reveal a preimage")

    network.register_contract("AssetIssue", verify_issue)
    network.register_contract("AssetLock", verify_lock)
    network.register_contract("AssetClaim", verify_claim)
    network.register_contract("AssetUnlock", verify_unlock)


def issue_corda_asset(
    network,
    proposer,
    asset_id: str,
    owner: str,
    metadata: str = "",
    contract: str = CORDA_ASSET_CONTRACT,
):
    """Mint ``asset_id`` to ``owner`` as a network-wide linear state.

    Every node participates, so any policy-selected attester can serve the
    proof-carrying ``GetLock`` view from its *own* vault. Returns the
    issuing :class:`~repro.corda.transactions.CordaTransaction`.
    """
    from repro.corda.states import LinearState

    state = LinearState(
        linear_id=asset_id,
        kind=contract,
        data={
            "asset": {"asset_id": asset_id, "owner": owner, "metadata": metadata},
            "lock": None,
        },
        participants=tuple(node.name for node in network.nodes),
    )
    return proposer.propose([], [state], "AssetIssue")
