"""Platform contracts hosting the HTLC vault on Fabric and Quorum.

Both contracts expose the same function surface, so the network-neutral
asset protocol addresses them identically:

- ``Issue(asset_id, owner, metadata)``           (transaction, admin)
- ``LockAsset(asset_id, sender, recipient, hashlock_hex, timeout)``
- ``ClaimAsset(asset_id, claimer, preimage_hex)``
- ``UnlockAsset(asset_id, sender)``
- ``GetLock(asset_id)`` / ``GetAsset(asset_id)``  (views)

The acting-party arguments (``sender``/``claimer``) are logical party ids
of the form ``<requestor>@<network>``; they are supplied by the
:class:`~repro.assets.ports.AssetLedgerPort` after it has authenticated
the requesting entity (certificate + exposure control), mirroring how the
§5 transaction extension submits under a designated local invoker.

On Fabric, ``GetLock``/``GetAsset`` are interop-aware exactly like the
paper's adapted application chaincode: an incoming relay query (detected
via the ``interop`` transient) is ECC-gated and its response sealed, so
lock records travel back with consensus-backed proofs. On Quorum the
driver performs the equivalent port checks and sealing.
"""

from __future__ import annotations

import json

from repro.assets.htlc import HtlcVault
from repro.errors import EVMError
from repro.fabric.chaincode import Chaincode, ChaincodeStub, require_args
from repro.quorum.contracts import CallContext, QuorumContract

#: Default deployment names for the two platforms.
FABRIC_ASSET_CHAINCODE = "assetscc"
QUORUM_ASSET_CONTRACT = "asset-vault"

#: The vault's view functions (safe to serve from any single peer).
VIEW_FUNCTIONS = frozenset({"GetLock", "GetAsset"})


class _StubStorage:
    """Adapts a :class:`ChaincodeStub` to the vault's storage protocol."""

    def __init__(self, stub: ChaincodeStub) -> None:
        self._stub = stub

    def get(self, key: str) -> bytes | None:
        return self._stub.get_state(key)

    def put(self, key: str, value: bytes) -> None:
        self._stub.put_state(key, value)


class _DictStorage:
    """Adapts Quorum's plain ``dict`` contract storage to the vault."""

    def __init__(self, storage: dict[str, bytes]) -> None:
        self._storage = storage

    def get(self, key: str) -> bytes | None:
        return self._storage.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._storage[key] = value


class FabricAssetChaincode(Chaincode):
    """The HTLC vault as Fabric chaincode."""

    name = FABRIC_ASSET_CHAINCODE

    def invoke(self, stub: ChaincodeStub) -> bytes:
        if stub.function == "init":
            return b"ok"
        vault = HtlcVault(_StubStorage(stub))
        now = stub.timestamp
        if stub.function == "Issue":
            asset_id, owner, metadata = require_args(stub, 3)
            return vault.issue(asset_id, owner, metadata)
        if stub.function == "AuthorizeInvoker":
            (name,) = require_args(stub, 1)
            return vault.authorize_invoker(name)
        creator = stub.get_creator()
        creator_name = creator.subject.common_name if creator else ""
        if stub.function == "LockAsset":
            asset_id, sender, recipient, hashlock_hex, timeout = require_args(stub, 5)
            vault.ensure_acting_authority(creator_name, sender)
            return vault.lock(
                asset_id, sender, recipient, hashlock_hex, float(timeout), now
            )
        if stub.function == "ClaimAsset":
            asset_id, claimer, preimage_hex = require_args(stub, 3)
            vault.ensure_acting_authority(creator_name, claimer)
            return vault.claim(asset_id, claimer, preimage_hex, now)
        if stub.function == "UnlockAsset":
            asset_id, sender = require_args(stub, 2)
            vault.ensure_acting_authority(creator_name, sender)
            return vault.refund(asset_id, sender, now)
        if stub.function in VIEW_FUNCTIONS:
            (asset_id,) = require_args(stub, 1)
            view = vault.get_lock if stub.function == "GetLock" else vault.get_asset
            value = view(asset_id)
            interop_raw = stub.get_transient("interop")
            if interop_raw is None:
                return value
            # Incoming relay query: the paper's two-call adaptation —
            # exposure-check the foreign requestor, then seal the response
            # so the proof plane binds the lock record end to end.
            ctx = json.loads(interop_raw)
            stub.invoke_chaincode(
                "ecc",
                "CheckAccess",
                [
                    ctx["requesting_network"],
                    ctx["requesting_org"],
                    self.name,
                    stub.function,
                ],
            )
            return stub.invoke_chaincode(
                "ecc",
                "SealResponse",
                [
                    value.hex(),
                    ctx["client_pubkey"],
                    "true" if ctx["confidential"] else "false",
                ],
            )
        raise ValueError(f"asset chaincode has no function {stub.function!r}")


class QuorumAssetContract(QuorumContract):
    """The HTLC vault as a Quorum-style contract."""

    address = QUORUM_ASSET_CONTRACT

    def execute(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        vault = HtlcVault(_DictStorage(storage))
        now = ctx.timestamp
        if function == "Issue":
            self._require(args, 3, function)
            return vault.issue(args[0], args[1], args[2])
        if function == "AuthorizeInvoker":
            self._require(args, 1, function)
            return vault.authorize_invoker(args[0])
        # ctx.sender is the qualified id "<name>.<org>"; the name part is
        # the creator the acting party must bind to.
        creator_name = ctx.sender.split(".", 1)[0]
        if function == "LockAsset":
            self._require(args, 5, function)
            vault.ensure_acting_authority(creator_name, args[1])
            return vault.lock(args[0], args[1], args[2], args[3], float(args[4]), now)
        if function == "ClaimAsset":
            self._require(args, 3, function)
            vault.ensure_acting_authority(creator_name, args[1])
            return vault.claim(args[0], args[1], args[2], now)
        if function == "UnlockAsset":
            self._require(args, 2, function)
            vault.ensure_acting_authority(creator_name, args[1])
            return vault.refund(args[0], args[1], now)
        raise EVMError(f"unknown transaction function {function!r}")

    def call(
        self, function: str, args: list[str], storage: dict[str, bytes], ctx: CallContext
    ) -> bytes:
        vault = HtlcVault(_DictStorage(storage))
        if function in VIEW_FUNCTIONS:
            self._require(args, 1, function)
            view = vault.get_lock if function == "GetLock" else vault.get_asset
            return view(args[0])
        raise EVMError(f"unknown view function {function!r}")

    @staticmethod
    def _require(args: list[str], count: int, function: str) -> None:
        if len(args) != count:
            raise EVMError(f"{function} expects {count} argument(s), got {len(args)}")
