"""Hash-time-locked asset vault: the shared on-ledger HTLC semantics.

The paper stops at trusted *data* transfer and names asset transfer as
the natural next step (§6); hash-time-locked contracts are the canonical
trust-minimized building block for it. This module holds the platform-
neutral contract logic — one :class:`HtlcVault` state machine over a
key-value storage — so the Fabric chaincode and the Quorum contract in
:mod:`repro.assets.contracts` enforce byte-identical rules.

Invariants (the atomicity core):

- an asset has exactly one owner and at most one *active* lock;
- ``claim`` requires the preimage of the lock's SHA-256 hashlock and must
  land **strictly before** the timeout;
- ``refund`` returns the asset to its owner **at or after** the timeout;
- the two deadlines partition time, so no asset is ever claimable and
  refundable at once — whoever moves first within their window wins, and
  the ledger's own consensus orders the winner.

All mutations raise :class:`repro.errors.AssetError` on rule violations;
platform adapters surface those through their native error channels.
"""

from __future__ import annotations

import json
import os
from typing import Protocol

from repro.crypto.hashing import sha256
from repro.errors import AssetError

#: Lock lifecycle states as stored on-ledger.
STATE_AVAILABLE = "available"
STATE_LOCKED = "locked"
STATE_CLAIMED = "claimed"
STATE_REFUNDED = "refunded"

_ASSET_PREFIX = "asset/"
_LOCK_PREFIX = "lock/"
_INVOKER_PREFIX = "invoker/"


def new_preimage(nbytes: int = 32) -> bytes:
    """A fresh random secret whose hash becomes the exchange hashlock."""
    return os.urandom(nbytes)


def make_hashlock(preimage: bytes) -> bytes:
    """The SHA-256 hashlock committing to ``preimage``."""
    return sha256(preimage)


class KeyValueStorage(Protocol):
    """The minimal storage surface a platform must adapt for the vault."""

    def get(self, key: str) -> bytes | None:  # pragma: no cover - protocol
        ...

    def put(self, key: str, value: bytes) -> None:  # pragma: no cover - protocol
        ...


class HtlcVault:
    """The HTLC asset registry over one contract's storage namespace."""

    def __init__(self, storage: KeyValueStorage) -> None:
        self._storage = storage

    # -- records ------------------------------------------------------------------

    def _read(self, key: str) -> dict | None:
        raw = self._storage.get(key)
        if raw is None:
            return None
        return json.loads(raw.decode("utf-8"))

    def _write(self, key: str, record: dict) -> bytes:
        encoded = json.dumps(record, sort_keys=True).encode("utf-8")
        self._storage.put(key, encoded)
        return encoded

    def _asset(self, asset_id: str) -> dict:
        record = self._read(_ASSET_PREFIX + asset_id)
        if record is None:
            raise AssetError(f"no asset {asset_id!r} in this vault")
        return record

    # -- acting authority ---------------------------------------------------------

    def authorize_invoker(self, name: str) -> bytes:
        """Record ``name`` as a designated relay invoker (on-ledger).

        A governance decision like the ECC's access rules: the write goes
        through the contract's normal consensus (endorsement policy /
        block application), and from then on transactions created by that
        identity may act on behalf of port-authenticated foreign parties.
        """
        if not name:
            raise AssetError("invoker authorization requires a name")
        self._storage.put(_INVOKER_PREFIX + name, b"authorized")
        return b"ok"

    def is_invoker(self, name: str) -> bool:
        return bool(name) and self._storage.get(_INVOKER_PREFIX + name) is not None

    def ensure_acting_authority(self, creator_name: str, party: str) -> None:
        """Bind a mutating verb's acting party to the transaction creator.

        The creator may act as ``party`` iff it *is* that party
        (self-submission by a local member: the party id's name component
        matches the creator) or it is an authorized relay invoker — the
        identity the :class:`~repro.assets.ports.AssetLedgerPort` submits
        under after authenticating the real party's certificate. Anything
        else is impersonation and is rejected on-ledger.
        """
        if self.is_invoker(creator_name):
            return
        if creator_name and party.split("@", 1)[0] == creator_name:
            return
        raise AssetError(
            f"transaction creator {creator_name!r} may not act as {party!r}: "
            f"not that party and not an authorized relay invoker"
        )

    # -- lifecycle ----------------------------------------------------------------

    def issue(self, asset_id: str, owner: str, metadata: str) -> bytes:
        """Mint ``asset_id`` to ``owner`` (a governance/admin operation)."""
        if not asset_id or not owner:
            raise AssetError("issue requires a non-empty asset id and owner")
        if self._read(_ASSET_PREFIX + asset_id) is not None:
            raise AssetError(f"asset {asset_id!r} already issued")
        return self._write(
            _ASSET_PREFIX + asset_id,
            {"asset_id": asset_id, "owner": owner, "metadata": metadata},
        )

    def lock(
        self,
        asset_id: str,
        sender: str,
        recipient: str,
        hashlock_hex: str,
        timeout: float,
        now: float,
    ) -> bytes:
        """Escrow ``asset_id`` for ``recipient`` under a hashlock until ``timeout``."""
        asset = self._asset(asset_id)
        if asset["owner"] != sender:
            raise AssetError(
                f"asset {asset_id!r} is owned by {asset['owner']!r}, not "
                f"{sender!r}"
            )
        lock = self._read(_LOCK_PREFIX + asset_id)
        if lock is not None and lock["state"] == STATE_LOCKED:
            raise AssetError(f"asset {asset_id!r} is already locked")
        if not recipient:
            raise AssetError("lock requires a recipient")
        try:
            hashlock = bytes.fromhex(hashlock_hex)
        except ValueError as exc:
            raise AssetError(f"hashlock is not valid hex: {exc}") from exc
        if len(hashlock) != 32:
            raise AssetError("hashlock must be a 32-byte SHA-256 digest")
        if timeout <= now:
            raise AssetError(
                f"lock timeout {timeout} is not in the future (ledger time {now})"
            )
        return self._write(
            _LOCK_PREFIX + asset_id,
            {
                "asset_id": asset_id,
                "owner": sender,
                "recipient": recipient,
                "hashlock": hashlock_hex,
                "timeout": timeout,
                "state": STATE_LOCKED,
                "preimage": "",
                "created_at": now,
            },
        )

    def claim(self, asset_id: str, claimer: str, preimage_hex: str, now: float) -> bytes:
        """Transfer a locked asset to its recipient by revealing the preimage.

        Must land strictly before the timeout — at or after it, only
        :meth:`refund` is possible (mutual exclusion of the two paths).
        """
        lock = self._read(_LOCK_PREFIX + asset_id)
        if lock is None or lock["state"] != STATE_LOCKED:
            state = lock["state"] if lock else STATE_AVAILABLE
            raise AssetError(f"asset {asset_id!r} is not locked (state {state!r})")
        if lock["recipient"] != claimer:
            raise AssetError(
                f"asset {asset_id!r} is locked for {lock['recipient']!r}, not "
                f"{claimer!r}"
            )
        if now >= lock["timeout"]:
            raise AssetError(
                f"claim window for asset {asset_id!r} closed at ledger time "
                f"{lock['timeout']} (now {now}); only a refund is possible"
            )
        try:
            preimage = bytes.fromhex(preimage_hex)
        except ValueError as exc:
            raise AssetError(f"preimage is not valid hex: {exc}") from exc
        if make_hashlock(preimage).hex() != lock["hashlock"]:
            raise AssetError(
                f"preimage does not hash to the lock's hashlock for asset "
                f"{asset_id!r}"
            )
        asset = self._asset(asset_id)
        asset["owner"] = claimer
        self._write(_ASSET_PREFIX + asset_id, asset)
        lock["state"] = STATE_CLAIMED
        lock["preimage"] = preimage_hex  # public on-ledger, as in any HTLC
        return self._write(_LOCK_PREFIX + asset_id, lock)

    def refund(self, asset_id: str, sender: str, now: float) -> bytes:
        """Release an expired lock back to the asset's owner.

        Only valid at or after the timeout — strictly disjoint from the
        claim window, so a claimable asset is never refundable.
        """
        lock = self._read(_LOCK_PREFIX + asset_id)
        if lock is None or lock["state"] != STATE_LOCKED:
            state = lock["state"] if lock else STATE_AVAILABLE
            raise AssetError(f"asset {asset_id!r} is not locked (state {state!r})")
        if lock["owner"] != sender:
            raise AssetError(
                f"lock on asset {asset_id!r} was placed by {lock['owner']!r}, "
                f"not {sender!r}"
            )
        if now < lock["timeout"]:
            raise AssetError(
                f"lock on asset {asset_id!r} is refundable only from ledger "
                f"time {lock['timeout']} (now {now}); the claim window is open"
            )
        lock["state"] = STATE_REFUNDED
        return self._write(_LOCK_PREFIX + asset_id, lock)

    # -- views --------------------------------------------------------------------

    def get_asset(self, asset_id: str) -> bytes:
        return json.dumps(self._asset(asset_id), sort_keys=True).encode("utf-8")

    def get_lock(self, asset_id: str) -> bytes:
        """The asset's lock record (state ``available`` if never locked).

        This is the view a counterparty fetches with a *proof-carrying
        query* before trusting a remote lock: the returned JSON is what the
        source peers attest under the verification policy.
        """
        asset = self._asset(asset_id)
        lock = self._read(_LOCK_PREFIX + asset_id)
        if lock is None:
            lock = {
                "asset_id": asset_id,
                "owner": asset["owner"],
                "recipient": "",
                "hashlock": "",
                "timeout": 0.0,
                "state": STATE_AVAILABLE,
                "preimage": "",
                "created_at": 0.0,
            }
        return json.dumps(lock, sort_keys=True).encode("utf-8")
