"""Shared instrumentation the exchange coordinators report into.

One process-wide :class:`ExchangeMetrics` can be handed to any number of
:class:`~repro.assets.coordinator.AssetExchangeCoordinator` and
:class:`~repro.assets.cycles.CycleCoordinator` instances; every counter
mutation happens under one lock so concurrent exchanges on different
threads aggregate safely. ``repro.ops.exporters.register_assets`` turns a
snapshot of this object into the ``repro_assets_*`` Prometheus families.
"""

from __future__ import annotations

import threading

#: Coordinator kinds reported in every sample's labels.
KIND_EXCHANGE = "exchange"
KIND_CYCLE = "cycle"

#: States after which an exchange stops counting as active. ``FAILED`` is
#: included even though it can still move to ``REFUNDED``: the protocol is
#: over, only the unwind remains.
_SETTLED_STATES = frozenset({"completed", "refunded", "failed"})


class ExchangeMetrics:
    """Lock-guarded counters for asset-exchange activity.

    All methods are safe to call from any thread; ``snapshot`` returns
    plain data so exporters never touch live state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started: dict[str, int] = {}
        self._settled: dict[str, int] = {}
        self._transitions: dict[tuple[str, str], int] = {}
        self._refund_legs: dict[str, int] = {}
        self._aborts: dict[str, int] = {}
        self._latencies: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------------

    def exchange_started(self, kind: str) -> None:
        with self._lock:
            self._started[kind] = self._started.get(kind, 0) + 1

    def state_entered(self, kind: str, state: str) -> None:
        """One coordinator entered ``state`` (called on every transition)."""
        with self._lock:
            key = (kind, state)
            self._transitions[key] = self._transitions.get(key, 0) + 1
            if state in _SETTLED_STATES:
                self._settled[kind] = self._settled.get(kind, 0) + 1

    def refund_recorded(self, kind: str, legs: int = 1) -> None:
        with self._lock:
            self._refund_legs[kind] = self._refund_legs.get(kind, 0) + legs

    def abort_recorded(self, kind: str) -> None:
        with self._lock:
            self._aborts[kind] = self._aborts.get(kind, 0) + 1

    def latency_recorded(self, kind: str, seconds: float) -> None:
        """First lock to final claim, for one completed exchange."""
        with self._lock:
            self._latencies.setdefault(kind, []).append(float(seconds))

    # -- reading -----------------------------------------------------------------

    def active(self, kind: str) -> int:
        with self._lock:
            return self._started.get(kind, 0) - self._settled.get(kind, 0)

    def snapshot(self) -> dict:
        """Plain-data view for exporters and tests."""
        with self._lock:
            return {
                "started": dict(self._started),
                "settled": dict(self._settled),
                "active": {
                    kind: self._started.get(kind, 0) - self._settled.get(kind, 0)
                    for kind in set(self._started) | set(self._settled)
                },
                "transitions": {
                    f"{kind}:{state}": count
                    for (kind, state), count in self._transitions.items()
                },
                "refund_legs": dict(self._refund_legs),
                "aborts": dict(self._aborts),
                "latencies": {
                    kind: list(values)
                    for kind, values in self._latencies.items()
                },
            }
