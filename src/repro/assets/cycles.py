"""N-party cyclic atomic swaps (the generalized HTLC choreography).

:class:`CycleCoordinator` drives an A→B→C→…→A ring of escrows: *leg i* is
party *i* locking its asset — on its own network — for party ``(i+1) % N``.
One secret, held by party 0, arms every leg:

.. code-block:: text

    lock phase (forward)          claim phase (backward)
    ────────────────────          ──────────────────────
    leg 0:  P0 locks for P1       P0 claims leg N-1  (reveals preimage)
    leg 1:  P1 locks for P2       P(N-1) claims leg N-2
    ...                           ...
    leg N-1: P(N-1) locks for P0  P1 claims leg 0

Timelocks partition time at every hop: ``deadline_i = deadline_0 −
i·hop_gap`` strictly decreases along the ring, so the leg claimed first
(leg N−1) expires first, and every claimant still has ``hop_gap`` of
runway on its upstream leg after its own leg's window closes. Before
locking, party *i* proof-verifies leg *i−1* and takes the hashlock *from
the verified record* — the relay plane never carries a bare hashlock —
and before revealing, party 0 proof-verifies that the hashlock survived
the whole ring unchanged. During the claim walk each party reads the
revealed preimage from its *own* network's lock record, never from a
counterparty.

Abort (pre-reveal) or any mid-cycle failure leaves only refundable
escrows: :meth:`CycleCoordinator.refund` unwinds every standing leg in
increasing-deadline order once the windows close. With a
:class:`~repro.store.StateStore` every transition and per-leg flag is
journaled; :meth:`CycleCoordinator.resume` + :meth:`CycleCoordinator.recover`
re-derive the one possibly-unjournaled in-flight command through
proof-carrying ``GetLock`` readbacks against the ledgers themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.assets.htlc import (
    STATE_CLAIMED,
    STATE_LOCKED,
    make_hashlock,
    new_preimage,
)
from repro.assets.coordinator import AssetSpec
from repro.assets.metrics import KIND_CYCLE, ExchangeMetrics
from repro.errors import (
    AssetError,
    DiscoveryError,
    ExchangeStateError,
    ProtocolError,
    RelayError,
)
from repro.interop.client import InteropClient
from repro.store import StateStore
from repro.proto.messages import (
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_STATUS,
    MSG_KIND_ASSET_UNLOCK,
    PROTOCOL_VERSION,
    STATUS_OK,
    AssetAckMsg,
    AssetCommandMsg,
    AuthInfo,
    NetworkAddressMsg,
)
from repro.utils.ids import random_id

#: :class:`~repro.store.StateStore` namespace for cycle journals.
NS_CYCLES = "assets/cycles"


class CycleState(Enum):
    """Lifecycle of one N-party cyclic swap."""

    CREATED = "created"
    LOCKING = "locking"  # some legs escrowed, ring not yet closed
    LOCKED = "locked"  # every leg escrowed; preimage still secret
    CLAIMING = "claiming"  # preimage is now public, claims walking back
    COMPLETED = "completed"
    ABORTED = "aborted"
    REFUNDED = "refunded"
    FAILED = "failed"


#: Legal transitions; anything else raises :class:`ExchangeStateError`.
#: Per-leg progress inside LOCKING / CLAIMING is flag-journaled, not a
#: state change.
_TRANSITIONS: dict[CycleState, frozenset[CycleState]] = {
    CycleState.CREATED: frozenset(
        {CycleState.LOCKING, CycleState.ABORTED, CycleState.FAILED}
    ),
    CycleState.LOCKING: frozenset(
        {
            CycleState.LOCKED,
            CycleState.ABORTED,
            CycleState.REFUNDED,
            CycleState.FAILED,
        }
    ),
    CycleState.LOCKED: frozenset(
        {
            CycleState.CLAIMING,
            CycleState.ABORTED,
            CycleState.REFUNDED,
            CycleState.FAILED,
        }
    ),
    CycleState.CLAIMING: frozenset({CycleState.COMPLETED, CycleState.FAILED}),
    CycleState.COMPLETED: frozenset(),
    CycleState.ABORTED: frozenset({CycleState.REFUNDED, CycleState.FAILED}),
    CycleState.REFUNDED: frozenset(),
    # Unclaimed escrows of a failed cycle stay refundable after their
    # windows close, whatever went wrong elsewhere.
    CycleState.FAILED: frozenset({CycleState.REFUNDED}),
}

#: States in which the secret has not been revealed — the whole ring can
#: still unwind without loss.
_PRE_REVEAL_STATES = frozenset(
    {CycleState.CREATED, CycleState.LOCKING, CycleState.LOCKED}
)


@dataclass
class CycleResult:
    """What a finished (or unwound) cycle produced, leg by leg."""

    state: CycleState
    hashlock: bytes
    preimage: bytes | None
    locks: list[AssetAckMsg | None] = field(default_factory=list)
    claims: list[AssetAckMsg | None] = field(default_factory=list)
    refunds: list[AssetAckMsg] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.state is CycleState.COMPLETED


class CycleCoordinator:
    """Drives one N-party cyclic atomic swap end to end.

    ``parties[i]`` is the interop client of the party escrowing
    ``specs[i]`` (which must live on that party's network) for
    ``parties[(i+1) % N]``. ``policies[i]`` is the verification policy
    used for proof-carrying readbacks against network *i* (``None`` =
    the CMDAC-recorded policy, as for queries).

    ``cycle_timeout`` is leg 0's lock lifetime; every later leg's window
    is ``hop_gap`` shorter than its predecessor's, so the claim walk —
    which runs *backward* — always moves onto a leg with a longer
    remaining window. Crash recovery mirrors
    :class:`~repro.assets.coordinator.AssetExchangeCoordinator`: journal
    through a :class:`~repro.store.StateStore`, rebuild with
    :meth:`resume`, resolve the in-flight command with :meth:`recover`,
    continue with :meth:`run` (or :meth:`refund`).
    """

    def __init__(
        self,
        parties: list[InteropClient],
        specs: list[AssetSpec],
        cycle_timeout: float = 900.0,
        hop_gap: float = 150.0,
        policies: list[str | None] | None = None,
        verify_margin: float | None = None,
        store: StateStore | None = None,
        cycle_id: str | None = None,
        metrics: ExchangeMetrics | None = None,
    ) -> None:
        if len(parties) < 2:
            raise ProtocolError(
                f"a cycle needs at least two parties, got {len(parties)}"
            )
        if len(specs) != len(parties):
            raise ProtocolError(
                f"{len(parties)} parties but {len(specs)} asset legs; "
                f"every party escrows exactly one asset"
            )
        for index, (party, spec) in enumerate(zip(parties, specs)):
            if spec.network != party.network_id:
                raise ProtocolError(
                    f"leg {index} asset lives on {spec.network!r} but its "
                    f"party belongs to {party.network_id!r}; each party "
                    f"escrows on its own network"
                )
        if policies is not None and len(policies) != len(parties):
            raise ProtocolError(
                f"{len(parties)} legs but {len(policies)} policies"
            )
        if hop_gap <= 0:
            raise ProtocolError(f"hop gap must be positive, got {hop_gap}s")
        self._parties = list(parties)
        self.specs = list(specs)
        self.size = len(parties)
        self.cycle_timeout = cycle_timeout
        self.hop_gap = hop_gap
        self._policies = list(policies) if policies is not None else [
            None
        ] * self.size
        #: Minimum remaining lock lifetime a party requires before acting.
        self.verify_margin = (
            verify_margin if verify_margin is not None else hop_gap / 2
        )
        if self.verify_margin > hop_gap:
            raise ProtocolError(
                f"verification margin ({self.verify_margin}s) cannot exceed "
                f"the hop gap ({hop_gap}s): consecutive deadlines are only "
                f"{hop_gap}s apart"
            )
        # Checked HERE, before anything is escrowed: the last leg's window
        # is cycle_timeout − (N−1)·hop_gap, and party 0 will demand
        # verify_margin of it when it verifies before revealing.
        shortest = cycle_timeout - (self.size - 1) * hop_gap
        if shortest < self.verify_margin:
            raise ProtocolError(
                f"cycle timeout ({cycle_timeout}s) is too short for "
                f"{self.size} legs {hop_gap}s apart: the final leg's window "
                f"would be {shortest:.1f}s, below the verification margin "
                f"({self.verify_margin}s)"
            )
        self._clock = parties[0].relay.clock
        #: Party 0's secret; its hash is the whole ring's hashlock.
        self.preimage = new_preimage()
        self.hashlock = make_hashlock(self.preimage)
        #: Per-leg hashlock as proof-verified from the upstream record
        #: (leg 0 escrows under party 0's own hashlock).
        self._leg_hashlocks: list[bytes] = [b""] * self.size
        self._leg_hashlocks[0] = self.hashlock
        self._locked = [False] * self.size
        self._claimed = [False] * self.size
        self._refunded = [False] * self.size
        self.deadlines: list[float | None] = [None] * self.size
        self.state = CycleState.CREATED
        self.result = CycleResult(
            state=self.state,
            hashlock=self.hashlock,
            preimage=None,
            locks=[None] * self.size,
            claims=[None] * self.size,
        )
        self.cycle_id = cycle_id or random_id("cycle-")
        self._store = store
        self._metrics = metrics
        self._started_at: float | None = None
        if metrics is not None:
            metrics.exchange_started(KIND_CYCLE)
        self._journal()

    # -- durability ---------------------------------------------------------------

    def _journal(self) -> None:
        """Persist everything a resumed coordinator needs (no-op without
        a store). Written after every transition and flag change."""
        if self._store is None:
            return
        record = {
            "state": self.state.value,
            "specs": [
                [spec.network, spec.ledger, spec.contract, spec.asset_id]
                for spec in self.specs
            ],
            "cycle_timeout": self.cycle_timeout,
            "hop_gap": self.hop_gap,
            "verify_margin": self.verify_margin,
            "preimage": self.preimage.hex(),
            "hashlock": self.hashlock.hex(),
            "leg_hashlocks": [value.hex() for value in self._leg_hashlocks],
            "deadlines": list(self.deadlines),
            "locked": list(self._locked),
            "claimed": list(self._claimed),
            "refunded": list(self._refunded),
            "preimage_revealed": self.result.preimage is not None,
            "started_at": self._started_at,
        }
        self._store.put(
            NS_CYCLES, self.cycle_id, json.dumps(record).encode("utf-8")
        )

    @staticmethod
    def _journaled_ack(asset_id: str) -> AssetAckMsg:
        """Stand-in ack for a leg the journal records as landed: the
        original wire ack died with the crashed process, but the flags
        (and :meth:`refund`'s decisions) only need *that* it landed."""
        return AssetAckMsg(
            version=PROTOCOL_VERSION,
            nonce="journaled",
            status=STATUS_OK,
            asset_id=asset_id,
        )

    @classmethod
    def resume(
        cls,
        parties: list[InteropClient],
        store: StateStore,
        cycle_id: str,
        policies: list[str | None] | None = None,
        metrics: ExchangeMetrics | None = None,
    ) -> "CycleCoordinator":
        """Rebuild a coordinator from its journal after a crash.

        The journal restores the secret, the per-leg hashlocks, flags and
        deadlines, and the state machine position; call :meth:`recover`
        next to resolve whether the command in flight at the crash
        landed, then :meth:`run` (or :meth:`refund`) to continue.
        """
        raw = store.get(NS_CYCLES, cycle_id)
        if raw is None:
            raise ExchangeStateError(
                f"no journaled cycle {cycle_id!r} in the store"
            )
        record = json.loads(raw.decode("utf-8"))
        coordinator = cls(
            parties,
            [AssetSpec(*leg) for leg in record["specs"]],
            cycle_timeout=record["cycle_timeout"],
            hop_gap=record["hop_gap"],
            policies=policies,
            verify_margin=record["verify_margin"],
            cycle_id=cycle_id,
        )
        coordinator.preimage = bytes.fromhex(record["preimage"])
        coordinator.hashlock = bytes.fromhex(record["hashlock"])
        coordinator._leg_hashlocks = [
            bytes.fromhex(value) for value in record["leg_hashlocks"]
        ]
        coordinator.state = CycleState(record["state"])
        coordinator.deadlines = list(record["deadlines"])
        coordinator._locked = list(record["locked"])
        coordinator._claimed = list(record["claimed"])
        coordinator._refunded = list(record["refunded"])
        coordinator._started_at = record["started_at"]
        result = coordinator.result
        result.state = coordinator.state
        result.hashlock = coordinator.hashlock
        for index, spec in enumerate(coordinator.specs):
            if coordinator._locked[index]:
                result.locks[index] = cls._journaled_ack(spec.asset_id)
            if coordinator._claimed[index]:
                result.claims[index] = cls._journaled_ack(spec.asset_id)
        if record["preimage_revealed"]:
            result.preimage = coordinator.preimage
        # Attach the store (and metrics) only now: a crash inside resume()
        # itself must never regress the journal to the constructor's
        # CREATED image, and the resumed coordinator is the same logical
        # exchange, not a second started one.
        coordinator._store = store
        coordinator._metrics = metrics
        coordinator._journal()
        return coordinator

    def _peek_lock(self, leg: int) -> dict:
        """Proof-verified ``GetLock`` readback of leg ``leg`` by its
        recipient, returned raw (recovery decides; unlike
        :meth:`_verify_lock` nothing FAILs here — the readback itself
        raising leaves the step retriable)."""
        viewer = self._parties[(leg + 1) % self.size]
        spec = self.specs[leg]
        fetched = viewer.remote_query(
            spec.query_address("GetLock"),
            [spec.asset_id],
            policy=self._policies[leg],
        )
        return json.loads(fetched.data)

    def recover(self) -> CycleState:
        """Re-derive the next safe step after :meth:`resume`.

        The journal is written *after* each command's ack, so a crash
        leaves exactly one ambiguity: the command issued right before it
        may have committed without being journaled. The relevant leg's
        recipient reads the escrow through a proof-carrying ``GetLock``
        query — never the relay's word — and fast-forwards the machine
        if the ledger shows the step landed with *this* cycle's terms.
        States with no in-flight command return unchanged; a readback
        failure raises without a state change, so recovery is retriable.
        """
        if self.state in (CycleState.CREATED, CycleState.LOCKING):
            leg = self._next_unlocked()
            # The lock command for ``leg`` is only ever issued after its
            # hashlock (proof-verified upstream) is journaled; an empty
            # hashlock means the crash happened before the verify step,
            # so there is nothing in flight.
            if leg is not None and self._leg_hashlocks[leg]:
                record = self._peek_lock(leg)
                if (
                    record.get("state") == STATE_LOCKED
                    and record.get("hashlock")
                    == self._leg_hashlocks[leg].hex()
                    and record.get("recipient") == self.party_name(leg + 1)
                ):
                    self.deadlines[leg] = float(record.get("timeout", 0.0))
                    self._mark_locked(leg)
        if self.state is CycleState.LOCKED:
            # Party 0's claim of the final leg may have landed — and if
            # it did, the preimage is PUBLIC: the machine must move past
            # the reveal, not retry into a refund window.
            self._recover_claim(self.size - 1)
        if self.state is CycleState.CLAIMING:
            leg = self._next_unclaimed()
            if leg is not None:
                self._recover_claim(leg)
        return self.state

    def _recover_claim(self, leg: int) -> None:
        record = self._peek_lock(leg)
        if record.get("state") != STATE_CLAIMED:
            return
        if record.get("preimage") != self.preimage.hex():
            self._advance(CycleState.FAILED)
            raise AssetError(
                f"leg {leg} escrow was claimed with a foreign preimage; "
                f"the cycle cannot proceed"
            )
        self.result.claims[leg] = self._journaled_ack(
            self.specs[leg].asset_id
        )
        self.result.preimage = self.preimage
        self._mark_claimed(leg)

    # -- identity helpers ---------------------------------------------------------

    def party_name(self, index: int) -> str:
        """``name@network`` of party ``index`` (modulo the ring size)."""
        client = self._parties[index % self.size]
        return f"{client.identity.name}@{client.network_id}"

    @staticmethod
    def _auth(client: InteropClient) -> AuthInfo:
        identity = client.identity
        return AuthInfo(
            requesting_network=client.network_id,
            requesting_org=identity.org,
            requestor=identity.name,
            certificate=identity.certificate.to_bytes(),
            public_key=identity.keypair.public.to_bytes(),
        )

    def _command(
        self,
        client: InteropClient,
        spec: AssetSpec,
        recipient: str = "",
        hashlock: bytes = b"",
        timeout: float = 0.0,
        preimage: bytes = b"",
    ) -> AssetCommandMsg:
        return AssetCommandMsg(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=spec.network,
                ledger=spec.ledger,
                contract=spec.contract,
                function="",
            ),
            asset_id=spec.asset_id,
            recipient=recipient,
            hashlock=hashlock,
            timeout=timeout,
            preimage=preimage,
            auth=self._auth(client),
            nonce=random_id("asset-"),
        )

    # -- state machine core -------------------------------------------------------

    def _advance(self, new_state: CycleState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise ExchangeStateError(
                f"cannot move cycle from {self.state.value!r} to "
                f"{new_state.value!r}"
            )
        self.state = new_state
        self.result.state = new_state
        if self._metrics is not None:
            self._metrics.state_entered(KIND_CYCLE, new_state.value)
        self._journal()

    def _require(self, *states: CycleState) -> None:
        if self.state not in states:
            expected = ", ".join(state.value for state in states)
            raise ExchangeStateError(
                f"step requires state {expected}; cycle is "
                f"{self.state.value!r}"
            )

    def _checked(self, ack: AssetAckMsg, step: str) -> AssetAckMsg:
        if ack.status != STATUS_OK:
            self._advance(CycleState.FAILED)
            raise AssetError(f"{step} failed: {ack.error}")
        return ack

    def _next_unlocked(self) -> int | None:
        for index, locked in enumerate(self._locked):
            if not locked:
                return index
        return None

    def _next_unclaimed(self) -> int | None:
        """Claims walk backward; the next leg due is the highest index
        not yet claimed."""
        for index in range(self.size - 1, -1, -1):
            if not self._claimed[index]:
                return index
        return None

    def _mark_locked(self, leg: int) -> None:
        self._locked[leg] = True
        if self.result.locks[leg] is None:
            self.result.locks[leg] = self._journaled_ack(
                self.specs[leg].asset_id
            )
        if all(self._locked):
            if self.state is CycleState.CREATED:
                # Single-step fast-forward through LOCKING (recovery of a
                # two-party ring whose first lock closed it cannot skip
                # the intermediate state).
                self._advance(CycleState.LOCKING)
            self._advance(CycleState.LOCKED)
        elif self.state is CycleState.CREATED:
            self._advance(CycleState.LOCKING)
        else:
            self._journal()

    def _mark_claimed(self, leg: int) -> None:
        self._claimed[leg] = True
        if self.result.claims[leg] is None:
            self.result.claims[leg] = self._journaled_ack(
                self.specs[leg].asset_id
            )
        if all(self._claimed):
            if self.state is CycleState.LOCKED:
                self._advance(CycleState.CLAIMING)
            self._advance(CycleState.COMPLETED)
            if self._metrics is not None and self._started_at is not None:
                self._metrics.latency_recorded(
                    KIND_CYCLE, self._clock.now() - self._started_at
                )
        elif self.state is CycleState.LOCKED:
            self._advance(CycleState.CLAIMING)
        else:
            self._journal()

    # -- protocol steps -----------------------------------------------------------

    def lock_next(self) -> AssetAckMsg:
        """Escrow the next leg of the ring (forward walk).

        For leg *i > 0* the locking party first proof-verifies leg
        *i−1* — state, recipient, remaining lifetime — and escrows under
        the hashlock *from that verified record*, so a tampered relay
        cannot splice a foreign hashlock into the ring.
        """
        self._require(CycleState.CREATED, CycleState.LOCKING)
        leg = self._next_unlocked()
        if leg is None:  # pragma: no cover - states make this unreachable
            raise ExchangeStateError("every leg is already locked")
        if leg == 0:
            deadline = self._clock.now() + self.cycle_timeout
            self._started_at = self._clock.now()
        else:
            upstream_deadline = self.deadlines[leg - 1]
            assert upstream_deadline is not None
            deadline = upstream_deadline - self.hop_gap
            record = self._verify_lock(
                self._parties[leg],
                leg - 1,
                expected_recipient=self.party_name(leg),
                # The upstream leg must outlive this party's own planned
                # window by the margin, or the preimage could go public
                # with no time left to claim.
                minimum_lifetime=(deadline - self._clock.now())
                + self.verify_margin,
            )
            self._leg_hashlocks[leg] = bytes.fromhex(record["hashlock"])
            self._journal()  # the lock command below must postdate this
        if deadline <= self._clock.now():
            self._advance(CycleState.FAILED)
            raise AssetError(
                f"leg {leg} deadline would already have passed; the cycle "
                f"spent too long locking earlier legs"
            )
        ack = self._checked(
            self._parties[leg].relay.remote_asset(
                MSG_KIND_ASSET_LOCK,
                self._command(
                    self._parties[leg],
                    self.specs[leg],
                    recipient=self.party_name(leg + 1),
                    hashlock=self._leg_hashlocks[leg],
                    timeout=deadline,
                ),
            ),
            f"leg {leg} lock",
        )
        self.deadlines[leg] = deadline
        self.result.locks[leg] = ack
        self._mark_locked(leg)
        return ack

    def claim_next(self) -> AssetAckMsg:
        """Claim the next leg due (backward walk).

        Party 0 opens the walk: it proof-verifies the final leg — in
        particular that its hashlock is *party 0's own*, i.e. the value
        survived every hop of the ring — and claims it, publishing the
        preimage. Every later claimant reads the now-public preimage
        from its own network's just-claimed leg and spends it one hop
        further back.
        """
        self._require(CycleState.LOCKED, CycleState.CLAIMING)
        leg = self._next_unclaimed()
        if leg is None:  # pragma: no cover - states make this unreachable
            raise ExchangeStateError("every leg is already claimed")
        claimant = self._parties[(leg + 1) % self.size]
        if leg == self.size - 1:
            # Party 0 must not reveal against a ring whose hashlock was
            # substituted mid-cycle: verify the final leg carries its own.
            self._verify_lock(
                claimant,
                leg,
                expected_recipient=self.party_name(0),
                expected_hashlock=self.hashlock,
                minimum_lifetime=self.verify_margin,
            )
            preimage = self.preimage
        else:
            # The claimant's own leg (leg+1, on its own network) was just
            # claimed; the preimage is public in that lock record.
            status = self._checked(
                claimant.relay.remote_asset(
                    MSG_KIND_ASSET_STATUS,
                    self._command(claimant, self.specs[leg + 1]),
                ),
                f"leg {leg + 1} preimage readback",
            )
            if not status.preimage:
                self._advance(CycleState.FAILED)
                raise AssetError(
                    f"leg {leg + 1} lock on "
                    f"{self.specs[leg + 1].network!r} carries no revealed "
                    f"preimage (state {status.state!r})"
                )
            preimage = status.preimage
        ack = self._checked(
            self._claim_with_recovery(claimant, leg, preimage),
            f"leg {leg} claim",
        )
        self.result.claims[leg] = ack
        self.result.preimage = self.preimage
        self._mark_claimed(leg)
        return ack

    def run(self) -> CycleResult:
        """Drive the cycle to completion from the *current* state.

        On a fresh coordinator this is the full happy path; on a
        journal-resumed one (see :meth:`resume` / :meth:`recover`) it
        continues from wherever the state machine stopped.
        """
        while self.state in (CycleState.CREATED, CycleState.LOCKING):
            self.lock_next()
        while self.state in (CycleState.LOCKED, CycleState.CLAIMING):
            self.claim_next()
        if self.state is not CycleState.COMPLETED:
            raise ExchangeStateError(
                f"cycle cannot proceed from state {self.state.value!r}"
            )
        return self.result

    # -- unhappy paths ------------------------------------------------------------

    def abort(self) -> None:
        """Call the cycle off before the preimage is revealed.

        Safe by construction: the secret never left party 0, so no leg is
        claimable by anyone — every standing escrow unwinds through
        :meth:`refund` once its timelock expires.
        """
        self._require(*_PRE_REVEAL_STATES)
        self._advance(CycleState.ABORTED)
        if self._metrics is not None:
            self._metrics.abort_recorded(KIND_CYCLE)

    def refund(self) -> list[AssetAckMsg]:
        """Unwind every standing (locked, unclaimed) escrow after its
        timelock expired.

        Valid from any pre-reveal state, after :meth:`abort`, and from
        ``FAILED``. Legs unwind in increasing-deadline order — the last
        leg locked expires first — and each refund is journaled the
        moment it lands, so a crash mid-unwind never re-refunds a leg. A
        leg whose claim window is still open is refused on-ledger; that
        raises *without* a terminal state change, so the refund can be
        retried once the window closes.
        """
        refundable_from = _PRE_REVEAL_STATES | {
            CycleState.ABORTED,
            CycleState.FAILED,
        }
        if self.state not in refundable_from:
            raise ExchangeStateError(
                f"nothing to refund from state {self.state.value!r}"
            )
        if not any(self._locked):
            raise ExchangeStateError("no escrow is standing; nothing to refund")
        acks: list[AssetAckMsg] = []
        for leg in range(self.size - 1, -1, -1):
            if (
                not self._locked[leg]
                or self._claimed[leg]
                or self._refunded[leg]
            ):
                continue
            ack = self._parties[leg].relay.remote_asset(
                MSG_KIND_ASSET_UNLOCK,
                self._command(self._parties[leg], self.specs[leg]),
            )
            if ack.status != STATUS_OK:
                raise AssetError(f"leg {leg} refund refused: {ack.error}")
            self._refunded[leg] = True
            self._journal()  # a crash here must not re-refund this leg
            self.result.refunds.append(ack)
            acks.append(ack)
            if self._metrics is not None:
                self._metrics.refund_recorded(KIND_CYCLE)
        self._advance(CycleState.REFUNDED)
        return acks

    # -- the proof plane ----------------------------------------------------------

    def _verify_lock(
        self,
        verifier: InteropClient,
        leg: int,
        expected_recipient: str,
        minimum_lifetime: float,
        expected_hashlock: bytes | None = None,
    ) -> dict:
        """Fetch + proof-verify leg ``leg``'s lock record; check its terms.

        Runs the ordinary trusted-data-transfer query (attestations under
        the verification policy, end-to-end sealed), then validates the
        HTLC terms the verifying party depends on. Failure marks the
        cycle FAILED and raises.
        """
        spec = self.specs[leg]
        try:
            fetched = verifier.remote_query(
                spec.query_address("GetLock"),
                [spec.asset_id],
                policy=self._policies[leg],
            )
            record = json.loads(fetched.data)
        except Exception:
            self._advance(CycleState.FAILED)
            raise
        problems: list[str] = []
        if record.get("state") != STATE_LOCKED:
            problems.append(f"state is {record.get('state')!r}, not locked")
        if record.get("asset_id") != spec.asset_id:
            problems.append(
                f"record covers asset {record.get('asset_id')!r}, expected "
                f"{spec.asset_id!r}"
            )
        if record.get("recipient") != expected_recipient:
            problems.append(
                f"locked for {record.get('recipient')!r}, expected "
                f"{expected_recipient!r}"
            )
        if (
            expected_hashlock is not None
            and record.get("hashlock") != expected_hashlock.hex()
        ):
            problems.append("hashlock does not match the cycle secret")
        remaining = float(record.get("timeout", 0.0)) - self._clock.now()
        if remaining < minimum_lifetime:
            problems.append(
                f"lock expires in {remaining:.1f}s, need at least "
                f"{minimum_lifetime:.1f}s"
            )
        if problems:
            self._advance(CycleState.FAILED)
            raise AssetError(
                f"verified lock for leg {leg} on {spec.network!r} is "
                f"unacceptable: " + "; ".join(problems)
            )
        return record

    def _claim_with_recovery(
        self, client: InteropClient, leg: int, preimage: bytes
    ) -> AssetAckMsg:
        """Issue a claim, surviving a lost ack without double-claiming.

        A transport failure on the claim round-trip does not mean the
        claim was lost: the command may have committed before the path
        failed. Learn the escrow's true state through a *proof-carrying*
        ``GetLock`` readback — the relay that just failed is exactly the
        party not trusted for the answer — and decide: claimed with
        *this* preimage means the claim landed (exactly once; the vault
        rejects a second claim), still locked means the request itself
        was lost and is safe to re-issue. Anything else is unrecoverable.
        """
        spec = self.specs[leg]
        command = self._command(client, spec, preimage=preimage)
        try:
            return client.relay.remote_asset(MSG_KIND_ASSET_CLAIM, command)
        except (RelayError, DiscoveryError):
            # May itself raise on an unreachable/tampering path; that
            # propagates without a state change, so the step is retriable.
            fetched = client.remote_query(
                spec.query_address("GetLock"),
                [spec.asset_id],
                policy=self._policies[leg],
            )
            record = json.loads(fetched.data)
            if (
                record.get("state") == STATE_CLAIMED
                and record.get("preimage") == preimage.hex()
            ):
                # The lost ack's claim committed: answer with the
                # proof-verified post-claim record.
                return AssetAckMsg(
                    version=PROTOCOL_VERSION,
                    nonce=command.nonce,
                    status=STATUS_OK,
                    asset_id=record.get("asset_id", spec.asset_id),
                    state=record.get("state", ""),
                    owner=record.get("owner", ""),
                    recipient=record.get("recipient", ""),
                    hashlock=(
                        bytes.fromhex(record["hashlock"])
                        if record.get("hashlock")
                        else b""
                    ),
                    timeout=float(record.get("timeout", 0.0)),
                    preimage=preimage,
                )
            if record.get("state") == STATE_LOCKED:
                return client.relay.remote_asset(MSG_KIND_ASSET_CLAIM, command)
            self._advance(CycleState.FAILED)
            raise AssetError(
                f"leg {leg} claim ack lost and the escrow is unrecoverable "
                f"(verified state {record.get('state')!r})"
            )
