"""Wire schemas for relay-to-relay communication.

The field layout mirrors what §3.2 of the paper requires the protocol to
carry: network/ledger/contract addressing, function arguments, a
verification policy for the source relay to satisfy, authentication
details of the requesting entity, and — in responses — the queried data
along with a proof satisfying that policy.

Proofs follow §4.3: each source peer contributes an
``<encrypted result, encrypted metadata, signature>`` triple; the array of
``<encrypted metadata, signature>`` pairs constitutes the proof.
"""

from __future__ import annotations

from repro.wire import (
    BoolField,
    BytesField,
    DoubleField,
    MapField,
    Message,
    MessageField,
    RepeatedBytesField,
    RepeatedMessageField,
    RepeatedStringField,
    StringField,
    UintField,
)

PROTOCOL_VERSION = 1

# RelayEnvelope.kind values.
MSG_KIND_QUERY_REQUEST = 1
MSG_KIND_QUERY_RESPONSE = 2
MSG_KIND_ERROR = 3
MSG_KIND_BATCH_REQUEST = 4
MSG_KIND_BATCH_RESPONSE = 5
MSG_KIND_TRANSACT_REQUEST = 6
MSG_KIND_TRANSACT_RESPONSE = 7
MSG_KIND_EVENT_SUBSCRIBE = 8
MSG_KIND_EVENT_PUBLISH = 9
MSG_KIND_EVENT_UNSUBSCRIBE = 10
MSG_KIND_EVENT_ACK = 11
MSG_KIND_ASSET_LOCK = 12
MSG_KIND_ASSET_CLAIM = 13
MSG_KIND_ASSET_UNLOCK = 14
MSG_KIND_ASSET_STATUS = 15
MSG_KIND_ASSET_ACK = 16

#: The asset-exchange command family (hash-time-locked asset operations).
#: All four requests are answered with a :data:`MSG_KIND_ASSET_ACK`
#: envelope carrying an :class:`AssetAckMsg`.
ASSET_COMMAND_KINDS = frozenset(
    {
        MSG_KIND_ASSET_LOCK,
        MSG_KIND_ASSET_CLAIM,
        MSG_KIND_ASSET_UNLOCK,
        MSG_KIND_ASSET_STATUS,
    }
)

#: Envelope kinds whose serving has side effects on the source network (a
#: committed transaction, a registered/removed subscription, an event
#: delivery, an asset lock/claim/refund). Caching layers must never replay
#: these from a stored reply.
SIDE_EFFECTING_KINDS = frozenset(
    {
        MSG_KIND_TRANSACT_REQUEST,
        MSG_KIND_EVENT_SUBSCRIBE,
        MSG_KIND_EVENT_PUBLISH,
        MSG_KIND_EVENT_UNSUBSCRIBE,
        MSG_KIND_ASSET_LOCK,
        MSG_KIND_ASSET_CLAIM,
        MSG_KIND_ASSET_UNLOCK,
    }
)

#: Request kinds whose serving reads but never mutates source-network
#: state — safe to cache, replay, and retry freely. A batch is read-only
#: *as a kind*; one carrying transaction members is marked with
#: :data:`SIDE_EFFECTING_HEADER` by the sending relay, and caching layers
#: must honor the header, not just the kind.
READ_ONLY_KINDS = frozenset(
    {
        MSG_KIND_QUERY_REQUEST,
        MSG_KIND_BATCH_REQUEST,
        MSG_KIND_ASSET_STATUS,
    }
)

#: Reply kinds: these travel back correlated to a request and are never
#: dispatched by :meth:`RelayService._route`.
#:
#: Together the three sets form the repo's wire-kind registry — every
#: ``MSG_KIND_*`` constant belongs to exactly one of
#: :data:`SIDE_EFFECTING_KINDS`, :data:`READ_ONLY_KINDS`, or
#: :data:`REPLY_KINDS`, and every request kind must have a dispatch
#: branch in the relay. ``python -m repro.analysis`` (rule REP301)
#: enforces the partition, the export list, and dispatch reachability;
#: adding a kind without classifying it here fails CI.
REPLY_KINDS = frozenset(
    {
        MSG_KIND_QUERY_RESPONSE,
        MSG_KIND_BATCH_RESPONSE,
        MSG_KIND_TRANSACT_RESPONSE,
        MSG_KIND_EVENT_ACK,
        MSG_KIND_ASSET_ACK,
        MSG_KIND_ERROR,
    }
)

#: Envelope header marking a (batch) request that carries side-effecting
#: members; set by the sending relay so intermediaries need not decode the
#: payload to know the request is unsafe to serve from cache.
SIDE_EFFECTING_HEADER = "side-effecting"

#: Error-envelope header classifying *why* a request was refused, so the
#: requesting relay can raise a typed error without parsing the message
#: text. Currently one class: :data:`ERROR_KIND_CAPABILITY` marks a
#: fail-closed capability refusal (the target network has no driver that
#: supports the requested verb) — final, never worth failing over.
ERROR_KIND_HEADER = "error-kind"
ERROR_KIND_CAPABILITY = "capability"

# NetworkQuery.invocation values: how the source network must run the
# addressed function. The empty string (the wire default) means a
# read-only evaluation; "transaction" routes through the source network's
# endorse-order-commit pipeline (§5 extension).
INVOCATION_QUERY = ""
INVOCATION_TRANSACTION = "transaction"

# QueryResponse.status values. The two finality statuses are produced
# only by probabilistic-finality drivers (repro.pubchain): PENDING marks
# a record below its required confirmation depth (retry later — nothing
# is wrong with the record), REORG marks a record orphaned by a chain
# reorganization (re-verify from scratch). Clients surface them as
# repro.errors.FinalityPendingError / ReorgDetectedError.
STATUS_OK = 0
STATUS_ACCESS_DENIED = 1
STATUS_ERROR = 2
STATUS_PENDING_FINALITY = 3
STATUS_REORG = 4


class NetworkAddressMsg(Message):
    """Wire form of :class:`repro.proto.address.CrossNetworkAddress`."""

    network = StringField(1)
    ledger = StringField(2)
    contract = StringField(3)
    function = StringField(4)


class VerificationPolicyMsg(Message):
    """A verification policy as a portable expression string.

    ``expression`` uses the policy algebra of
    :mod:`repro.interop.policy`, e.g. ``AND(org:SellerOrg, org:CarrierOrg)``
    — "proof from a peer in both the Seller and Carrier organizations"
    (§4.3). Carrying the expression rather than a platform-specific
    structure keeps the protocol network-neutral.
    """

    expression = StringField(1)


class AuthInfo(Message):
    """Authentication details of the requesting entity (§3.2).

    ``certificate`` is the requesting client's member certificate issued by
    its organization's MSP; ``public_key`` duplicates the encryption key so
    source peers can encrypt without parsing the certificate format of a
    foreign platform.
    """

    requesting_network = StringField(1)
    requesting_org = StringField(2)
    requestor = StringField(3)
    certificate = BytesField(4)
    public_key = BytesField(5)


class NetworkQuery(Message):
    """A cross-network query request (message-flow step 1)."""

    version = UintField(1)
    address = MessageField(2, NetworkAddressMsg)
    args = RepeatedStringField(3)
    nonce = StringField(4)
    auth = MessageField(5, AuthInfo)
    policy = MessageField(6, VerificationPolicyMsg)
    confidential = BoolField(7)
    #: :data:`INVOCATION_QUERY` (default) or :data:`INVOCATION_TRANSACTION`.
    #: Carried per member so batch envelopes can mix read-only queries with
    #: committed transactions while each member routes to the right driver.
    invocation = StringField(8)


class ProofMetadata(Message):
    """The metadata a source peer signs over a query result (§4.3).

    Binds together the query (address + args + nonce), the result hash and
    the responding peer's identity, so a signature over the encoded
    metadata attests "this peer executed this query and got this result".
    """

    address = MessageField(1, NetworkAddressMsg)
    args = RepeatedStringField(2)
    nonce = StringField(3)
    result_hash = BytesField(4)
    peer_id = StringField(5)
    org = StringField(6)
    network = StringField(7)
    timestamp = DoubleField(8)
    result = BytesField(9)  # included so the proof is self-contained (§4.3)


class Attestation(Message):
    """One peer's contribution to a proof.

    ``metadata_cipher`` is the ECIES encryption (under the requesting
    client's public key) of the encoded :class:`ProofMetadata`;
    ``signature`` is the peer's ECDSA signature over the *plaintext*
    encoded metadata; ``certificate`` identifies the signer for validation
    against the source network's recorded configuration. When
    confidentiality is disabled, ``metadata_plain`` carries the metadata
    unencrypted instead.
    """

    metadata_cipher = BytesField(1)
    metadata_plain = BytesField(2)
    signature = BytesField(3)
    certificate = BytesField(4)
    peer_id = StringField(5)
    org = StringField(6)


class QueryResponse(Message):
    """A cross-network query response (message-flow step 8).

    ``result_cipher`` is the query result encrypted with the requesting
    client's public key; ``attestations`` is the proof. Errors carry a
    status code plus human-readable detail.
    """

    version = UintField(1)
    nonce = StringField(2)
    status = UintField(3)
    error = StringField(4)
    result_cipher = BytesField(5)
    result_plain = BytesField(6)
    attestations = RepeatedMessageField(7, Attestation)


class BatchQueryRequest(Message):
    """N queries to one target network in a single envelope round-trip.

    Batching lets the destination relay amortize discovery, framing, and
    failover across all member queries; the source relay fans the members
    across its network driver. Each member query keeps its own nonce, so
    end-to-end confidentiality and replay protection are per query exactly
    as in the singleton flow.
    """

    version = UintField(1)
    queries = RepeatedMessageField(2, NetworkQuery)


class BatchQueryResponse(Message):
    """The positional responses to a :class:`BatchQueryRequest`.

    ``responses[i]`` answers ``queries[i]``; a member that failed carries a
    non-OK status in its own :class:`QueryResponse` rather than poisoning
    the batch (partial-failure semantics).
    """

    version = UintField(1)
    responses = RepeatedMessageField(2, QueryResponse)


class EventSubscribeRequest(Message):
    """A cross-network event subscription (the §2 third primitive).

    ``address`` names the source network/ledger/chaincode; ``event_name``
    is the chaincode event to subscribe to (``*`` matches any). The
    subscription is access-controlled by the source ECC under the rule
    object ``event:<name>``, authenticated by ``auth`` exactly like a
    query. The source relay assigns the subscription id (returned in the
    :class:`EventAck`) and pushes :class:`EventNotificationMsg` envelopes
    to the subscriber's network as matching events commit.
    """

    version = UintField(1)
    address = MessageField(2, NetworkAddressMsg)
    event_name = StringField(3)
    auth = MessageField(4, AuthInfo)
    #: Subscriber-proposed subscription id. Letting the subscriber pick the
    #: id (a random token) means its delivery sink can be installed
    #: *before* the subscribe round-trip, so no window exists in which the
    #: source's first push finds no sink. Empty = source assigns (legacy).
    subscription_id = StringField(5)


class EventNotificationMsg(Message):
    """One *unauthenticated* event notification pushed by a source relay.

    Deliberately carries no proof: notifications are compact and fast, and
    the paper's trust argument is preserved by the notify-then-verify
    pattern — the subscriber upgrades a notification to trusted data with
    a follow-up proof-carrying query before acting on it.
    """

    version = UintField(1)
    subscription_id = StringField(2)
    source_network = StringField(3)
    chaincode = StringField(4)
    name = StringField(5)
    payload = BytesField(6)
    block_number = UintField(7)
    tx_id = StringField(8)


class EventUnsubscribeRequest(Message):
    """Tears down one subscription on the source relay."""

    version = UintField(1)
    subscription_id = StringField(2)
    auth = MessageField(3, AuthInfo)


class EventAck(Message):
    """The reply to any event-kind envelope.

    Subscribe acks carry the assigned ``subscription_id``; publish acks
    confirm sink delivery (a non-OK status tells the source relay the
    subscription is gone and can be pruned); unsubscribe acks confirm
    teardown. Statuses reuse the ``STATUS_*`` codes.
    """

    version = UintField(1)
    subscription_id = StringField(2)
    status = UintField(3)
    error = StringField(4)


class AssetCommandMsg(Message):
    """One hash-time-locked asset operation against a remote ledger.

    The four :data:`ASSET_COMMAND_KINDS` envelope kinds all carry this
    payload; the *kind* selects the verb (lock, claim, unlock, status) so
    relays and caches can route on the envelope alone. ``address`` names
    the network/ledger/contract holding the asset (no function — the verb
    is the kind); ``auth`` authenticates the acting party exactly like a
    query, and the source network's exposure control gates each verb as a
    rule object on the asset contract.

    Hashlock + timelock semantics (the HTLC contract): a *lock* escrows
    ``asset_id`` for ``recipient`` under SHA-256 ``hashlock`` until the
    absolute ledger time ``timeout``; a *claim* transfers it to the
    recipient iff it reveals the matching ``preimage`` strictly before the
    timeout; an *unlock* refunds the original owner at-or-after the
    timeout. The two deadlines partition time, so an asset is never
    claimable and refundable at once.
    """

    version = UintField(1)
    address = MessageField(2, NetworkAddressMsg)
    asset_id = StringField(3)
    recipient = StringField(4)
    hashlock = BytesField(5)
    timeout = DoubleField(6)
    preimage = BytesField(7)
    auth = MessageField(8, AuthInfo)
    nonce = StringField(9)


class AssetAckMsg(Message):
    """The reply to any asset-command envelope.

    Carries the post-command lock record — state, hashlock, timeout,
    parties, and (once a claim committed) the revealed ``preimage``, which
    is public on-ledger knowledge exactly as in an HTLC — plus the commit
    coordinates (``tx_id``, ``block_number``) for side-effecting verbs.
    The ack is *transport* truth only: before acting on a remote lock, a
    counterparty upgrades it to trusted data with a proof-carrying query
    against the asset contract's ``GetLock`` function.
    """

    version = UintField(1)
    nonce = StringField(2)
    status = UintField(3)
    error = StringField(4)
    asset_id = StringField(5)
    state = StringField(6)
    owner = StringField(7)
    recipient = StringField(8)
    hashlock = BytesField(9)
    timeout = DoubleField(10)
    preimage = BytesField(11)
    tx_id = StringField(12)
    block_number = UintField(13)


class RelayEnvelope(Message):
    """Framing for relay-to-relay transport.

    Relays route on the envelope alone (kind + destination network) and
    treat ``payload`` as opaque bytes — which is precisely what makes
    tampering by a malicious relay detectable rather than preventable,
    and why results and proofs are protected end-to-end.
    """

    version = UintField(1)
    kind = UintField(2)
    request_id = StringField(3)
    source_network = StringField(4)
    destination_network = StringField(5)
    payload = BytesField(6)
    headers = MapField(7)


class PeerConfigMsg(Message):
    """A foreign peer's identity record (shared network configuration)."""

    peer_id = StringField(1)
    org = StringField(2)
    endpoint = StringField(3)
    certificate = BytesField(4)


class OrganizationConfigMsg(Message):
    """A foreign organization's identity record: its MSP root certificate."""

    org_id = StringField(1)
    msp_id = StringField(2)
    root_certificate = BytesField(3)
    peers = RepeatedMessageField(4, PeerConfigMsg)


class NetworkConfigMsg(Message):
    """A foreign network's full configuration, recorded on the local ledger
    by the Configuration Management contract (§3.3)."""

    network_id = StringField(1)
    platform = StringField(2)  # e.g. "fabric", "corda", "quorum"
    organizations = RepeatedMessageField(3, OrganizationConfigMsg)
    ledgers = RepeatedStringField(4)
