"""Cross-network addressing.

A remote view is addressed as ``network/ledger/contract/function`` —
the four coordinates the paper's client supplies in message-flow step (1):
"the source network's unique name, ledger, contract and function to
invoke". The canonical string form is what applications pass to the relay
client API and what exposure-control rules are matched against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError

_SEPARATOR = "/"
_SEGMENTS = 4


@dataclass(frozen=True)
class CrossNetworkAddress:
    """The four coordinates of a remote query target."""

    network: str
    ledger: str
    contract: str
    function: str

    def __post_init__(self) -> None:
        for label, value in (
            ("network", self.network),
            ("ledger", self.ledger),
            ("contract", self.contract),
            ("function", self.function),
        ):
            if not value:
                raise AddressError(f"address segment {label!r} must be non-empty")
            if _SEPARATOR in value:
                raise AddressError(
                    f"address segment {label!r} must not contain {_SEPARATOR!r}: {value!r}"
                )

    def __str__(self) -> str:
        return _SEPARATOR.join((self.network, self.ledger, self.contract, self.function))


def parse_address(text: str) -> CrossNetworkAddress:
    """Parse ``network/ledger/contract/function`` into an address.

    Raises :class:`AddressError` on the wrong segment count or empty
    segments.
    """
    segments = text.split(_SEPARATOR)
    if len(segments) != _SEGMENTS:
        raise AddressError(
            f"expected {_SEGMENTS} '/'-separated segments "
            f"(network/ledger/contract/function), got {len(segments)}: {text!r}"
        )
    return CrossNetworkAddress(*segments)
