"""Network-neutral interoperability protocol messages.

These are the message schemas the relays exchange (paper §3.2): addressing
of a network/ledger/contract/function, remote-query arguments, the
verification policy the source relay must satisfy, authentication details
of the requesting entity, and responses carrying data plus proof.

Schemas are defined with :mod:`repro.wire`, the library's protobuf-style
codec, so relay-to-relay traffic is honest-to-goodness serialized bytes.
"""

from repro.proto.address import CrossNetworkAddress, parse_address
from repro.proto.messages import (
    Attestation,
    AuthInfo,
    BatchQueryRequest,
    BatchQueryResponse,
    NetworkAddressMsg,
    NetworkConfigMsg,
    NetworkQuery,
    OrganizationConfigMsg,
    PeerConfigMsg,
    ProofMetadata,
    QueryResponse,
    RelayEnvelope,
    VerificationPolicyMsg,
    PROTOCOL_VERSION,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    MSG_KIND_ERROR,
    MSG_KIND_BATCH_REQUEST,
    MSG_KIND_BATCH_RESPONSE,
    STATUS_OK,
    STATUS_ACCESS_DENIED,
    STATUS_ERROR,
)

__all__ = [
    "CrossNetworkAddress",
    "parse_address",
    "NetworkQuery",
    "QueryResponse",
    "BatchQueryRequest",
    "BatchQueryResponse",
    "Attestation",
    "AuthInfo",
    "ProofMetadata",
    "RelayEnvelope",
    "NetworkAddressMsg",
    "VerificationPolicyMsg",
    "NetworkConfigMsg",
    "OrganizationConfigMsg",
    "PeerConfigMsg",
    "PROTOCOL_VERSION",
    "MSG_KIND_QUERY_REQUEST",
    "MSG_KIND_QUERY_RESPONSE",
    "MSG_KIND_ERROR",
    "MSG_KIND_BATCH_REQUEST",
    "MSG_KIND_BATCH_RESPONSE",
    "STATUS_OK",
    "STATUS_ACCESS_DENIED",
    "STATUS_ERROR",
]
