"""Public-chain driver: proof generation gated by a finality policy.

Query orchestration mirrors :class:`repro.interop.drivers.QuorumDriver` —
policy-selected observers evaluate the view, seal the result, and sign
attestations — with one addition unique to probabilistic chains: before a
single attestation is produced, the driver assesses the finality of every
ledger key the view read.

- A read key whose latest write was **orphaned by a reorg** answers
  ``STATUS_REORG`` (typed client-side as
  :class:`repro.errors.ReorgDetectedError`): the observed state is gone
  from the canonical chain and must be re-verified from scratch.
- A canonical write below the policy's confirmation depth K answers
  ``STATUS_PENDING_FINALITY`` (:class:`repro.errors.FinalityPendingError`):
  the record is *pending*, not verified — retry after more blocks.

Either way the chain never attests state it would not stand behind;
"pending" and "reorged" are first-class protocol outcomes, not errors
hidden in free text.

Capability surface: query/batch (always) and the HTLC asset verbs (after
:meth:`PubChainDriver.enable_assets`). Cross-network transactions and
event subscriptions fail closed with
:class:`repro.errors.UnsupportedCapabilityError` — a public chain does not
give a foreign relay a commit pipeline or an ordered event hub for free.
"""

from __future__ import annotations

from repro.crypto.certs import Certificate
from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, PolicyError, ReproError
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.base import NetworkDriver
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme
from repro.proto.address import CrossNetworkAddress
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    STATUS_PENDING_FINALITY,
    STATUS_REORG,
    Attestation,
    NetworkQuery,
    QueryResponse,
)
from repro.pubchain.chain import SimulatedPublicChain
from repro.pubchain.finality import VERB_ASSETS, VERB_QUERY, FinalityPolicy


class PubChainDriver(NetworkDriver):
    """Drives queries against an in-process :class:`SimulatedPublicChain`."""

    platform = "pubchain"

    def __init__(
        self,
        chain: SimulatedPublicChain,
        port: InteropPort,
        finality: FinalityPolicy | None = None,
    ) -> None:
        super().__init__(chain.name)
        self._chain = chain
        self._port = port
        self._finality = finality or FinalityPolicy()
        self._scheme = AttestationProofScheme()
        self._asset_contract = ""

    @property
    def finality(self) -> FinalityPolicy:
        return self._finality

    def enable_assets(self, invoker, contract: str | None = None) -> None:
        """Grant the asset capability: HTLC commands submit under ``invoker``.

        The vault contract is the shared
        :class:`repro.assets.contracts.QuorumAssetContract` (the chain
        reuses Quorum's contract machinery); the attached port enforces
        the same finality policy on its side-effecting verbs, so a claim
        can never ride on a pending or reorged-out lock.
        """
        from repro.assets.contracts import QUORUM_ASSET_CONTRACT
        from repro.assets.ports import PubChainAssetLedgerPort

        contract = contract or QUORUM_ASSET_CONTRACT
        self._asset_contract = contract
        self.attach_asset_port(
            PubChainAssetLedgerPort(
                self._chain, self._port, invoker, contract, self._finality
            )
        )

    def _verb_class(self, address: CrossNetworkAddress) -> str:
        if self._asset_contract and address.contract == self._asset_contract:
            return VERB_ASSETS
        return VERB_QUERY

    def _finality_problem(
        self, query: NetworkQuery, address: CrossNetworkAddress, read_keys
    ) -> QueryResponse | None:
        """The typed non-OK response finality demands, or ``None`` if final."""
        reorged = self._chain.reorged_keys(address.contract, read_keys)
        if reorged:
            culprits = ", ".join(
                f"{key!r} (tx {tx_id})" for key, tx_id in sorted(reorged.items())
            )
            return QueryResponse(
                version=PROTOCOL_VERSION,
                nonce=query.nonce,
                status=STATUS_REORG,
                error=(
                    f"chain reorg on {self.network_id!r} orphaned the latest "
                    f"write of {culprits}; re-verify before acting"
                ),
            )
        depth = self._chain.confirmation_depth(address.contract, read_keys)
        required = self._finality.required(self._verb_class(address))
        if depth is not None and depth < required:
            return QueryResponse(
                version=PROTOCOL_VERSION,
                nonce=query.nonce,
                status=STATUS_PENDING_FINALITY,
                error=(
                    f"record on {self.network_id!r} has {depth} of {required} "
                    f"required confirmation(s); pending, not verified"
                ),
            )
        return None

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        address_msg = query.address
        if address_msg is None:
            return self._error(query, "query has no address")
        address = CrossNetworkAddress(
            network=address_msg.network,
            ledger=address_msg.ledger,
            contract=address_msg.contract,
            function=address_msg.function,
        )
        try:
            policy = parse_verification_policy(query.policy.expression)
        except (PolicyError, AttributeError) as exc:
            return self._error(query, f"malformed verification policy: {exc}")

        available = [
            (identity.org, identity.id) for identity in self._chain.observers
        ]
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query,
                f"policy {policy.expression()} cannot be satisfied by public "
                f"chain {self.network_id!r}",
            )

        auth = query.auth
        try:
            creator = (
                Certificate.from_bytes(auth.certificate)
                if auth and auth.certificate
                else None
            )
            self._port.check_access(
                auth.requesting_network if auth else "",
                auth.requesting_org if auth else "",
                address.contract,
                address.function,
                creator,
            )
        except AccessDeniedError as exc:
            return self._denied(query, str(exc))
        except ReproError as exc:
            return self._error(query, str(exc))

        client_key = None
        if query.confidential:
            client_key = PublicKey.from_bytes(auth.public_key)

        attestations: list[Attestation] = []
        result_envelope = b""
        finality_checked = False
        for _org, observer_id in selection:
            observer = self._chain.observer(observer_id)
            try:
                plaintext, read_keys = self._chain.view(
                    observer, address.contract, address.function, list(query.args)
                )
            except ReproError as exc:
                return self._error(
                    query, f"observer {observer_id!r} query failed: {exc}"
                )
            if not finality_checked:
                # One assessment covers the whole selection: every observer
                # serves the same canonical state under the chain lock.
                problem = self._finality_problem(query, address, read_keys)
                if problem is not None:
                    return problem
                finality_checked = True
            envelope = self._port.seal(plaintext, client_key, query.confidential)
            attestations.append(
                self._scheme.generate_attestation(
                    peer_identity=observer,
                    network=self.network_id,
                    address=address,
                    args=list(query.args),
                    nonce=query.nonce,
                    result_envelope=envelope,
                    client_key=client_key,
                    confidential=query.confidential,
                    timestamp=self._chain.clock.now(),
                )
            )
            if not result_envelope:
                result_envelope = envelope

        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response.result_cipher = result_envelope
        else:
            response.result_plain = result_envelope
        return response
