"""Finality policy: how many confirmations make a record trustworthy.

Permissioned chains (Fabric/Corda/Quorum) have deterministic finality —
a committed transaction is final. Public chains only offer *probabilistic*
finality: a block can be orphaned by a heavier fork, so relays bridging to
them must wait for a confirmation depth K before attesting state (the
interoperability surveys arXiv:2212.09227 / arXiv:2601.02949 name this as
the capability relay schemes must add beyond enterprise chains).

A :class:`FinalityPolicy` is enforced by :class:`repro.pubchain.PubChainDriver`
at *proof-generation* time: a record below depth answers
``STATUS_PENDING_FINALITY`` (typed as :class:`repro.errors.FinalityPendingError`
client-side), and a record whose writing transaction was orphaned by a
reorg answers ``STATUS_REORG`` (:class:`repro.errors.ReorgDetectedError`) —
never a fake success, never a silent stale read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Verb classes a policy can override independently. ``"query"`` covers
#: plain data reads; ``"assets"`` covers HTLC verbs (lock/claim/unlock and
#: the proof-carrying GetLock readbacks), which typically demand a deeper
#: margin because value moves on their strength.
VERB_QUERY = "query"
VERB_ASSETS = "assets"


@dataclass(frozen=True)
class FinalityPolicy:
    """Confirmation-depth requirements for one public chain.

    ``confirmations`` is the default depth K (a transaction in the tip
    block has depth 1); ``per_verb`` overrides K for specific verb classes,
    e.g. ``{"assets": 6}`` to demand six confirmations before an HTLC lock
    counts as verified while plain queries settle for the default.
    """

    confirmations: int = 1
    per_verb: Mapping[str, int] = field(default_factory=dict)

    def required(self, verb: str) -> int:
        """The confirmation depth required for ``verb`` (always >= 1)."""
        return max(1, int(self.per_verb.get(verb, self.confirmations)))
