"""Public-chain simulation: probabilistic finality for the interop layer.

The fourth driver family. :class:`SimulatedPublicChain` is a Nakamoto-style
block tree (longest-chain fork choice, seeded natural forks, deterministic
``force_reorg``); :class:`FinalityPolicy` states how many confirmations a
record needs before the relay will attest it; :class:`PubChainDriver`
enforces that policy at proof-generation time, answering the typed
``STATUS_PENDING_FINALITY`` / ``STATUS_REORG`` protocol outcomes instead
of ever attesting unsettled state.
"""

from repro.pubchain.chain import PublicBlock, SimulatedPublicChain
from repro.pubchain.driver import PubChainDriver
from repro.pubchain.finality import VERB_ASSETS, VERB_QUERY, FinalityPolicy

__all__ = [
    "FinalityPolicy",
    "PubChainDriver",
    "PublicBlock",
    "SimulatedPublicChain",
    "VERB_ASSETS",
    "VERB_QUERY",
]
