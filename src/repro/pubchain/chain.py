"""A public-chain-flavored ledger: fork choice, reorgs, confirmation depth.

This is the substrate behind the fourth driver: a single simulated chain
whose blocks form a *tree*, with the canonical branch chosen by the
longest-chain rule (ties keep the current tip, so adoption is stable).
Unlike the permissioned substrates, nothing here is final at commit time:

- ``submit_transaction`` mines the transaction into a block on the
  canonical tip — or, with probability ``fork_rate`` (seeded), onto the
  tip's *parent*, producing a natural short fork whose transaction is
  orphaned the moment the canonical branch stays ahead;
- ``mine`` appends empty confirmation blocks (depth accumulates);
- ``force_reorg`` deterministically rebuilds a heavier branch from an
  ancestor, orphaning the last ``depth`` blocks — orphaned transactions
  are *not* re-mined, so state they wrote (e.g. an HTLC lock) vanishes
  from the canonical chain, exactly the hazard a
  :class:`~repro.pubchain.FinalityPolicy` exists to catch.

Contract execution reuses the Quorum machinery (:class:`QuorumContract`,
:class:`CallContext`, :class:`QuorumTransaction`), so the HTLC vault
contract is hosted unmodified. Canonical state is *derived*: replaying the
canonical branch from genesis (cached per block, extended incrementally),
skipping transactions that no longer apply on the current branch — a
replayed double-claim after a reorg simply reverts.

Observers play the role peers play on permissioned networks: identities
that can serve (and sign) views of canonical state for the attestation
proof scheme. They hold no replicas — the chain itself is the replica.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.crypto.hashing import sha256
from repro.errors import EVMError, LedgerError, MembershipError, ReproError
from repro.fabric.identity import Identity, Organization
from repro.proto.messages import NetworkConfigMsg, OrganizationConfigMsg, PeerConfigMsg
from repro.quorum.contracts import CallContext, QuorumContract
from repro.quorum.network import QuorumTransaction
from repro.utils.clock import Clock, SystemClock
from repro.utils.encoding import canonical_json
from repro.utils.ids import random_id


@dataclass(frozen=True)
class PublicBlock:
    """One mined block: a node in the block tree."""

    height: int
    parent: str  # parent block hash (hex); "" only for genesis
    transactions: tuple[QuorumTransaction, ...]
    miner: str
    nonce: int

    def hash_hex(self) -> str:
        return sha256(
            canonical_json(
                {
                    "height": self.height,
                    "parent": self.parent,
                    "transactions": [tx.to_bytes().hex() for tx in self.transactions],
                    "miner": self.miner,
                    "nonce": self.nonce,
                }
            )
        ).hex()


class _TrackingStorage:
    """A dict proxy recording which keys a contract call reads/writes.

    The write set feeds orphan detection (which transaction last wrote a
    key, on which branch); the read set lets the driver assess finality of
    exactly the state a view depended on.
    """

    def __init__(self, base: dict[str, bytes]) -> None:
        self._base = base
        self.reads: set[str] = set()
        self.writes: set[str] = set()

    def get(self, key: str, default=None):
        self.reads.add(key)
        return self._base.get(key, default)

    def __getitem__(self, key: str):
        self.reads.add(key)
        return self._base[key]

    def __contains__(self, key: str) -> bool:
        self.reads.add(key)
        return key in self._base

    def __setitem__(self, key: str, value: bytes) -> None:
        self.writes.add(key)
        self._base[key] = value

    def __iter__(self):
        # A full scan depends on every present key.
        self.reads.update(self._base)
        return iter(self._base)

    def __len__(self) -> int:
        return len(self._base)

    def keys(self):
        self.reads.update(self._base)
        return self._base.keys()

    def items(self):
        self.reads.update(self._base)
        return self._base.items()


@dataclass
class _BranchState:
    """Replayed state at one block (immutable once cached)."""

    storage: dict[str, dict[str, bytes]] = field(default_factory=dict)
    #: (address, key) -> (tx_id, block height) of the last canonical write.
    writers: dict[tuple[str, str], tuple[str, int]] = field(default_factory=dict)
    #: Transactions that applied successfully on this branch.
    applied: set[str] = field(default_factory=set)


class SimulatedPublicChain:
    """The simulated public chain (Nakamoto-style longest-chain ledger)."""

    def __init__(
        self,
        name: str,
        clock: Clock | None = None,
        seed: int = 0,
        fork_rate: float = 0.0,
        auto_confirm: int = 0,
    ) -> None:
        self.name = name
        self.clock = clock or SystemClock()
        #: Extra empty confirmation blocks mined after every transaction
        #: block — lets a deployment pre-bake depth K = auto_confirm + 1.
        self.auto_confirm = auto_confirm
        self.fork_rate = fork_rate
        self._rng = random.Random(seed)
        self._orgs: dict[str, Organization] = {}
        self._observers: list[Identity] = []
        self._contracts: dict[str, QuorumContract] = {}
        genesis = PublicBlock(
            height=0, parent="", transactions=(), miner="genesis", nonce=0
        )
        self._blocks: dict[str, PublicBlock] = {genesis.hash_hex(): genesis}
        self._tip = genesis.hash_hex()
        self._block_nonce = 0
        #: tx_id -> (contract address, keys written) captured at mine time.
        self._writesets: dict[str, tuple[str, frozenset[str]]] = {}
        self._tx_height: dict[str, int] = {}
        self._state_cache: dict[str, _BranchState] = {}
        self._lock = threading.RLock()

    # -- membership ---------------------------------------------------------------

    def add_observer(self, name: str, org_id: str) -> Identity:
        """Enroll an identity that serves signed views of canonical state."""
        with self._lock:
            org = self._orgs.get(org_id)
            if org is None:
                org = Organization(org_id, network=self.name)
                self._orgs[org_id] = org
            identity = org.enroll(name, role="peer")
            self._observers.append(identity)
            return identity

    def enroll_client(self, name: str, org_id: str) -> Identity:
        org = self._orgs.get(org_id)
        if org is None:
            raise MembershipError(f"no organization {org_id!r} on {self.name!r}")
        return org.enroll(name, role="client")

    @property
    def observers(self) -> list[Identity]:
        return list(self._observers)

    def observer(self, observer_id: str) -> Identity:
        for identity in self._observers:
            if identity.id == observer_id or identity.name == observer_id:
                return identity
        raise MembershipError(
            f"public chain {self.name!r} has no observer {observer_id!r}"
        )

    # -- contracts ----------------------------------------------------------------

    def deploy_contract(self, contract: QuorumContract) -> None:
        if not contract.address:
            raise EVMError("contract must declare an address")
        with self._lock:
            self._contracts[contract.address] = contract

    # -- block tree ---------------------------------------------------------------

    @property
    def tip(self) -> PublicBlock:
        with self._lock:
            return self._blocks[self._tip]

    def tip_height(self) -> int:
        return self.tip.height

    def block(self, block_hash: str) -> PublicBlock:
        block = self._blocks.get(block_hash)
        if block is None:
            raise LedgerError(f"no block {block_hash!r} on {self.name!r}")
        return block

    def canonical_branch(self) -> list[PublicBlock]:
        """Genesis → tip along the canonical chain."""
        with self._lock:
            return self._branch(self._tip)

    def _branch(self, tip_hash: str) -> list[PublicBlock]:
        branch: list[PublicBlock] = []
        cursor = tip_hash
        while cursor:
            block = self._blocks[cursor]
            branch.append(block)
            cursor = block.parent
        branch.reverse()
        return branch

    def _mine_block(
        self, parent_hash: str, transactions: tuple[QuorumTransaction, ...]
    ) -> PublicBlock:
        with self._lock:  # reentrant: callers already hold it
            parent = self._blocks[parent_hash]
            self._block_nonce += 1
            block = PublicBlock(
                height=parent.height + 1,
                parent=parent_hash,
                transactions=transactions,
                miner=f"miner-{self.name}",
                nonce=self._block_nonce,
            )
            block_hash = block.hash_hex()
            self._blocks[block_hash] = block
            # Longest-chain fork choice; a tie keeps the current tip, so a
            # competing branch must actually get *ahead* to reorg the chain.
            if block.height > self._blocks[self._tip].height:
                self._tip = block_hash
            return block

    def mine(self, count: int = 1) -> int:
        """Append empty confirmation blocks on the canonical tip."""
        with self._lock:
            for _ in range(max(0, count)):
                self._mine_block(self._tip, ())
            return self._blocks[self._tip].height

    def force_reorg(self, depth: int, extra: int = 1) -> list[str]:
        """Deterministically reorg the last ``depth`` canonical blocks.

        Builds ``depth + extra`` empty blocks from the ancestor at
        ``tip_height - depth``; the new branch ends ``extra`` blocks ahead,
        so fork choice adopts it and every transaction in the displaced
        suffix is orphaned (returned, for assertions). Orphaned
        transactions are *not* re-mined — this is the adversarial case the
        finality policy guards, not a polite migration.
        """
        with self._lock:
            tip = self._blocks[self._tip]
            if depth < 1 or depth > tip.height:
                raise LedgerError(
                    f"cannot reorg {depth} block(s) at height {tip.height}"
                )
            displaced = self._branch(self._tip)[-depth:]
            ancestor = self._branch(self._tip)[-depth - 1]
            cursor = ancestor.hash_hex()
            for _ in range(depth + max(1, extra)):
                cursor = self._mine_block(cursor, ()).hash_hex()
            orphaned = [
                tx.tx_id for block in displaced for tx in block.transactions
            ]
            return orphaned

    # -- transaction submission ---------------------------------------------------

    def submit_transaction(
        self, sender: Identity, address: str, function: str, args: list[str]
    ) -> QuorumTransaction:
        """Validate against the parent branch, mine into a new block.

        A transaction that violates contract rules on its branch raises
        here and is never mined. With ``fork_rate`` > 0 the seeded RNG may
        mine the block onto the tip's *parent* instead of the tip,
        producing a same-height fork whose transaction is orphaned unless
        the fork overtakes — the probabilistic-finality hazard in miniature.
        """
        with self._lock:
            contract = self._contracts.get(address)
            if contract is None:
                raise EVMError(f"no contract at address {address!r}")
            tx = QuorumTransaction(
                tx_id=random_id("ptx-"),
                address=address,
                function=function,
                args=tuple(args),
                sender=sender.id,
                sender_org=sender.org,
                timestamp=self.clock.now(),
            )
            parent_hash = self._tip
            parent_block = self._blocks[parent_hash]
            if (
                self.fork_rate
                and parent_block.parent
                and self._rng.random() < self.fork_rate
            ):
                parent_hash = parent_block.parent
            parent_state = self._state_for(parent_hash)
            scratch = dict(parent_state.storage.get(address, {}))
            tracker = _TrackingStorage(scratch)
            ctx = CallContext(
                sender=tx.sender, sender_org=tx.sender_org, timestamp=tx.timestamp
            )
            contract.execute(tx.function, list(tx.args), tracker, ctx)
            self._writesets[tx.tx_id] = (address, frozenset(tracker.writes))
            block = self._mine_block(parent_hash, (tx,))
            self._tx_height[tx.tx_id] = block.height
            for _ in range(self.auto_confirm):
                self._mine_block(self._tip, ())
            return tx

    def height_of(self, tx_id: str) -> int:
        """The height of the block a transaction was mined into."""
        with self._lock:
            height = self._tx_height.get(tx_id)
            if height is None:
                raise LedgerError(f"no mined transaction {tx_id!r} on {self.name!r}")
            return height

    # -- canonical state ----------------------------------------------------------

    def _state_for(self, block_hash: str) -> _BranchState:
        """The replayed state at ``block_hash`` (cached, built incrementally).

        Cached states are treated as immutable: extending a parent state
        copies each contract's storage before applying the child block.
        """
        with self._lock:  # reentrant: callers already hold it
            missing: list[str] = []
            cursor = block_hash
            while cursor and cursor not in self._state_cache:
                missing.append(cursor)
                cursor = self._blocks[cursor].parent
            state = self._state_cache.get(cursor) if cursor else None
            if state is None:
                state = _BranchState()
            for pending in reversed(missing):
                block = self._blocks[pending]
                state = _BranchState(
                    storage={addr: dict(kv) for addr, kv in state.storage.items()},
                    writers=dict(state.writers),
                    applied=set(state.applied),
                )
                for tx in block.transactions:
                    contract = self._contracts.get(tx.address)
                    if contract is None:
                        continue
                    scratch = dict(state.storage.get(tx.address, {}))
                    tracker = _TrackingStorage(scratch)
                    ctx = CallContext(
                        sender=tx.sender,
                        sender_org=tx.sender_org,
                        timestamp=tx.timestamp,
                    )
                    try:
                        contract.execute(tx.function, list(tx.args), tracker, ctx)
                    except ReproError:
                        # Valid on the branch it was mined on, invalid here
                        # (e.g. a duplicate claim after a reorg) — reverted.
                        continue
                    state.storage[tx.address] = scratch
                    state.applied.add(tx.tx_id)
                    for key in tracker.writes:
                        state.writers[(tx.address, key)] = (tx.tx_id, block.height)
                self._state_cache[pending] = state
            return state

    def view(
        self, sender: Identity, address: str, function: str, args: list[str]
    ) -> tuple[bytes, frozenset[str]]:
        """Evaluate a view against canonical state; returns (result, keys read).

        The read set is the provenance the driver assesses finality over:
        a view is only as final as the least-confirmed canonical write —
        and not trustworthy at all if a read key's latest write was
        orphaned by a reorg.
        """
        with self._lock:
            contract = self._contracts.get(address)
            if contract is None:
                raise EVMError(f"no contract at address {address!r}")
            state = self._state_for(self._tip)
            reader = _TrackingStorage(dict(state.storage.get(address, {})))
            ctx = CallContext(
                sender=sender.id, sender_org=sender.org, timestamp=self.clock.now()
            )
            result = contract.call(function, list(args), reader, ctx)
            return result, frozenset(reader.reads)

    # -- finality assessment ------------------------------------------------------

    def reorged_keys(self, address: str, keys) -> dict[str, str]:
        """Keys whose latest observable write was orphaned: key -> tx_id.

        A key is *reorged* when some mined transaction wrote it but is no
        longer applied on the canonical branch, and the canonical branch
        has no newer write for it (a later canonical re-write supersedes
        the orphan — detection is monotonic, it clears once the state is
        re-established at equal-or-greater height).
        """
        with self._lock:
            state = self._state_for(self._tip)
            problems: dict[str, str] = {}
            for key in keys:
                canonical = state.writers.get((address, key))
                for tx_id, (written_address, written_keys) in self._writesets.items():
                    if written_address != address or key not in written_keys:
                        continue
                    if tx_id in state.applied:
                        continue
                    height = self._tx_height.get(tx_id, 0)
                    if canonical is None or canonical[1] <= height:
                        problems[key] = tx_id
                        break
            return problems

    def confirmation_depth(self, address: str, keys) -> int | None:
        """Confirmations of the least-buried canonical write among ``keys``.

        A transaction in the tip block has depth 1. Returns ``None`` when
        no read key has a canonical writer (the view observed only absence
        of state, which no amount of waiting would change).
        """
        with self._lock:
            state = self._state_for(self._tip)
            tip_height = self._blocks[self._tip].height
            depths = [
                tip_height - writer[1] + 1
                for key in keys
                if (writer := state.writers.get((address, key))) is not None
            ]
            return min(depths) if depths else None

    # -- interop configuration export ---------------------------------------------

    def export_config(self) -> NetworkConfigMsg:
        organizations = []
        for org_id in sorted(self._orgs):
            org = self._orgs[org_id]
            peers = [
                PeerConfigMsg(
                    peer_id=identity.id,
                    org=org_id,
                    endpoint=f"sim://{self.name}/{identity.id}",
                    certificate=identity.certificate.to_bytes(),
                )
                for identity in self._observers
                if identity.org == org_id
            ]
            organizations.append(
                OrganizationConfigMsg(
                    org_id=org_id,
                    msp_id=org.msp.msp_id,
                    root_certificate=org.msp.root_certificate.to_bytes(),
                    peers=peers,
                )
            )
        return NetworkConfigMsg(
            network_id=self.name,
            platform="pubchain",
            organizations=organizations,
            ledgers=["chain"],
        )
