"""The :class:`StateStore` seam — durable state behind one small interface.

The paper's relay is the trust-critical middleware hop, and everything it
must remember across a crash (the exactly-once idempotency record, the
served-subscription table, an exchange coordinator's journal) reduces to
a namespaced key/value map with atomic multi-key commits. This module
defines that seam; :mod:`repro.store.memory` keeps today's in-process
behavior and :mod:`repro.store.sqlite` layers it over an append-only WAL
with an sqlite checkpoint for real durability. State owners program
against :class:`StateStore` only — which backend is wired in is a
deployment decision (``--state-dir``), never a code path.

Model:

- keys live in string *namespaces* (``"relay/idempotency"``), values are
  opaque bytes — serialization stays with the state owner;
- :meth:`StateStore.apply` commits a batch of operations atomically: a
  crash mid-commit yields all of the batch or none of it;
- every persistent backend carries a *schema version* header and refuses
  state from the future; upgrades run through explicit migration hooks
  (:class:`repro.store.sqlite.SqliteStore`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import StoreError

#: Operation codes (also the WAL opcode byte values).
OP_PUT = 0
OP_DELETE = 1


@dataclass(frozen=True)
class StoreOp:
    """One key/value operation inside an atomic batch."""

    op: int
    namespace: str
    key: str
    value: bytes = b""

    def __post_init__(self) -> None:
        if self.op not in (OP_PUT, OP_DELETE):
            raise StoreError(f"unknown store opcode {self.op}")
        if not self.namespace:
            raise StoreError("store operation has an empty namespace")
        if not self.key:
            raise StoreError("store operation has an empty key")
        if not isinstance(self.value, bytes):
            raise StoreError(
                f"store values are bytes, got {type(self.value).__name__}"
            )

    @classmethod
    def put(cls, namespace: str, key: str, value: bytes) -> "StoreOp":
        return cls(op=OP_PUT, namespace=namespace, key=key, value=value)

    @classmethod
    def delete(cls, namespace: str, key: str) -> "StoreOp":
        return cls(op=OP_DELETE, namespace=namespace, key=key)


class WriteBatch:
    """Collects operations for one atomic :meth:`StateStore.apply`."""

    def __init__(self) -> None:
        self.ops: list[StoreOp] = []

    def put(self, namespace: str, key: str, value: bytes) -> "WriteBatch":
        self.ops.append(StoreOp.put(namespace, key, value))
        return self

    def delete(self, namespace: str, key: str) -> "WriteBatch":
        self.ops.append(StoreOp.delete(namespace, key))
        return self

    def __len__(self) -> int:
        return len(self.ops)


class StateStore(ABC):
    """Namespaced key/value storage with atomic batches.

    Thread-safe: one store may be shared by every state owner in a relay
    process (each owner keeps to its own namespaces).
    """

    #: The schema version this code writes. Persistent backends stamp it
    #: into their on-disk header and migrate older state forward.
    SCHEMA_VERSION = 1

    #: Does state survive :meth:`close` + reopen (a process restart)?
    persistent = False

    @abstractmethod
    def get(self, namespace: str, key: str) -> bytes | None:
        """The value under (namespace, key), or ``None``."""

    @abstractmethod
    def scan(self, namespace: str, prefix: str = "") -> list[tuple[str, bytes]]:
        """All (key, value) pairs in ``namespace`` whose key starts with
        ``prefix``, sorted by key."""

    @abstractmethod
    def apply(self, ops: Sequence[StoreOp]) -> None:
        """Commit a batch atomically (all ops or none)."""

    def put(self, namespace: str, key: str, value: bytes) -> None:
        self.apply([StoreOp.put(namespace, key, value)])

    def delete(self, namespace: str, key: str) -> None:
        self.apply([StoreOp.delete(namespace, key)])

    @contextmanager
    def batch(self) -> Iterator[WriteBatch]:
        """Collect ops and commit them atomically on clean exit::

            with store.batch() as batch:
                batch.put("ns", "a", b"1").delete("ns", "b")

        An exception inside the block commits nothing.
        """
        pending = WriteBatch()
        yield pending
        if pending.ops:
            self.apply(pending.ops)

    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards."""

    def counters(self) -> dict[str, int]:
        """Operational counters for the ops plane (name -> monotonic
        count). Backends override with what they actually track —
        applied batches, WAL appends, checkpoints; the default exports
        nothing. Exported as ``repro_store_ops_total`` by
        :func:`repro.ops.exporters.register_relay`.
        """
        return {}


def apply_ops_to_map(
    data: dict[str, dict[str, bytes]], ops: Sequence[StoreOp]
) -> None:
    """Replay ``ops`` onto a dict-of-dicts image (shared by the in-memory
    backend and WAL replay, so both agree on semantics by construction)."""
    for operation in ops:
        if operation.op == OP_PUT:
            data.setdefault(operation.namespace, {})[operation.key] = operation.value
        else:
            space = data.get(operation.namespace)
            if space is not None:
                space.pop(operation.key, None)


__all__ = [
    "OP_DELETE",
    "OP_PUT",
    "StateStore",
    "StoreOp",
    "WriteBatch",
    "apply_ops_to_map",
]
