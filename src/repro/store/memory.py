"""The in-process :class:`StateStore` — today's behavior, made explicit.

Default backend everywhere: state lives exactly as long as the process,
which is what every pre-durability test and benchmark assumes. Because
state owners write through the same seam regardless of backend, a test
can also model "restart the relay, keep the state" by handing the *same*
``MemoryStore`` object to the restarted service — the durable/volatile
distinction then reduces to which store object survives the restart.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.store.base import StateStore, StoreOp, apply_ops_to_map


class MemoryStore(StateStore):
    """Dict-backed store; atomicity is one lock around each batch."""

    persistent = False

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, dict[str, bytes]] = {}
        self.batches_applied = 0
        self.ops_applied = 0

    def get(self, namespace: str, key: str) -> bytes | None:
        with self._lock:
            space = self._data.get(namespace)
            return space.get(key) if space is not None else None

    def scan(self, namespace: str, prefix: str = "") -> list[tuple[str, bytes]]:
        with self._lock:
            space = self._data.get(namespace, {})
            return sorted(
                (key, value)
                for key, value in space.items()
                if key.startswith(prefix)
            )

    def apply(self, ops: Sequence[StoreOp]) -> None:
        ops = list(ops)  # materialize (and validate) before mutating
        with self._lock:
            apply_ops_to_map(self._data, ops)
            self.batches_applied += 1
            self.ops_applied += len(ops)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "batches_applied": self.batches_applied,
                "ops_applied": self.ops_applied,
            }
