"""Durable relay state: the pluggable :class:`StateStore` subsystem.

The paper's relay is "minimally trusted" but maximally *relied upon* —
it is the hop every cross-network request, event, and HTLC command rides
through. This package gives the state that must survive a relay or
coordinator crash (the exactly-once idempotency record, served
subscriptions, exchange journals) one pluggable home:

- :class:`MemoryStore` — the default; exactly today's process-lifetime
  behavior and performance.
- :class:`SqliteStore` — append-only WAL with fsync-on-commit and
  torn-tail-tolerant replay, checkpointed into sqlite; schema-versioned
  with explicit migration hooks.

Wiring is one call: :func:`open_store` maps a ``--state-dir`` style
option (``None`` = volatile) onto the right backend.
"""

from pathlib import Path

from repro.store.base import (
    OP_DELETE,
    OP_PUT,
    StateStore,
    StoreOp,
    WriteBatch,
    apply_ops_to_map,
)
from repro.store.memory import MemoryStore
from repro.store.sqlite import SqliteStore
from repro.store.wal import WriteAheadLog

__all__ = [
    "OP_DELETE",
    "OP_PUT",
    "MemoryStore",
    "SqliteStore",
    "StateStore",
    "StoreOp",
    "WriteAheadLog",
    "WriteBatch",
    "apply_ops_to_map",
    "open_store",
]


def open_store(
    state_dir: "str | Path | None", fsync: bool = True
) -> StateStore:
    """The ``--state-dir`` wiring seam: ``None`` opens a volatile
    :class:`MemoryStore`, a path opens (creating if needed) a durable
    :class:`SqliteStore` rooted there."""
    if state_dir is None:
        return MemoryStore()
    return SqliteStore(state_dir, fsync=fsync)
