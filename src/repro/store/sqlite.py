"""Durable :class:`StateStore`: append-only WAL + sqlite checkpoint.

Layout of a state directory::

    <state_dir>/state.db    sqlite checkpoint (kv table + schema meta)
    <state_dir>/state.wal   append-only commit log since the checkpoint

Write path: a batch is framed and fsync'd into the WAL *first* (that
fsync is the commit point), then applied to the in-memory image; once the
WAL grows past ``checkpoint_bytes`` the accumulated operations are folded
into sqlite in one transaction and the WAL is truncated. Reads never
touch disk — the full image stays in memory (relay state is small: a
bounded idempotency record, subscription rows, exchange journals).

Recovery on open replays checkpoint + WAL tail, tolerating a torn final
frame (:mod:`repro.store.wal`), so the store state a reopening process
sees is exactly the prefix of batches whose ``apply()`` returned.

Schema migrations are explicit hooks, not guesses: the on-disk version is
read from the ``meta`` table, and each upgrade step ``n -> n+1`` must
have a registered callable (``migrations={n + 1: fn}``) that rewrites the
sqlite image; the WAL is checkpointed *before* migrating so hooks only
ever see a consistent sqlite state. A store from the future (on-disk
version above the running code's) refuses to open rather than guess.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import StoreCorruptionError, StoreMigrationError
from repro.store.base import (
    OP_PUT,
    StateStore,
    StoreOp,
    apply_ops_to_map,
)
from repro.store.wal import WriteAheadLog

#: Fold the WAL into sqlite once it grows past this many bytes.
DEFAULT_CHECKPOINT_BYTES = 1 << 20

#: Upgrade hook: receives the open sqlite connection inside the upgrade
#: transaction and rewrites the image from version n-1 to n.
Migration = Callable[[sqlite3.Connection], None]


class SqliteStore(StateStore):
    """The durable backend; see the module docstring for the design."""

    persistent = True

    def __init__(
        self,
        directory: str | Path,
        fsync: bool = True,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        schema_version: int | None = None,
        migrations: dict[int, Migration] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.checkpoint_bytes = checkpoint_bytes
        self.schema_version = (
            schema_version if schema_version is not None else self.SCHEMA_VERSION
        )
        self._migrations = dict(migrations or {})
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.directory / "state.db"), check_same_thread=False
        )
        self._conn.execute(
            "PRAGMA synchronous = " + ("FULL" if fsync else "OFF")
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " namespace TEXT NOT NULL, key TEXT NOT NULL, value BLOB NOT NULL,"
            " PRIMARY KEY (namespace, key))"
        )
        self._conn.commit()
        stored = self._stored_version()
        if stored is None:
            stored = self.schema_version
            self._set_version(stored)
        if stored > self.schema_version:
            self._conn.close()
            raise StoreMigrationError(
                f"state at {self.directory} has schema version {stored}, "
                f"newer than this code's {self.schema_version}"
            )
        #: Full image of the store; reads are served from here.
        self._data: dict[str, dict[str, bytes]] = {}
        self._load_checkpoint()
        self._wal = WriteAheadLog(
            self.directory / "state.wal", fsync=fsync, schema_version=stored
        )
        if self._wal.schema_version != stored:
            raise StoreCorruptionError(
                f"WAL schema version {self._wal.schema_version} does not "
                f"match checkpoint version {stored} at {self.directory}"
            )
        #: Committed-but-not-checkpointed operations.
        self._pending: list[StoreOp] = list()
        self.batches_applied = 0
        self.checkpoints = 0
        for batch in self._wal.recovered:
            apply_ops_to_map(self._data, batch)
            self._pending.extend(batch)
        # Fold the recovered tail in before migrating, so migration hooks
        # always see one consistent sqlite image and a bare WAL.
        if self._pending:
            self._checkpoint_locked()
        if stored < self.schema_version:
            self._migrate(stored)

    # -- lifecycle ----------------------------------------------------------------

    def _stored_version(self) -> int | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0]) if row is not None else None

    def _set_version(self, version: int) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES "
            "('schema_version', ?)",
            (str(version),),
        )
        self._conn.commit()

    def _load_checkpoint(self) -> None:
        try:
            rows = self._conn.execute(
                "SELECT namespace, key, value FROM kv"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptionError(
                f"unreadable checkpoint at {self.directory}: {exc}"
            ) from exc
        for namespace, key, value in rows:
            if isinstance(value, str):
                # sqlite string operators (||, replace, ...) in migration
                # hooks silently coerce BLOB to TEXT; values are bytes.
                value = value.encode("utf-8")
            self._data.setdefault(namespace, {})[key] = bytes(value)

    def _migrate(self, stored: int) -> None:
        for step in range(stored + 1, self.schema_version + 1):
            hook = self._migrations.get(step)
            if hook is None:
                raise StoreMigrationError(
                    f"no migration registered for schema step "
                    f"{step - 1} -> {step} at {self.directory}"
                )
            with self._conn:  # one transaction: rewrite + version stamp
                hook(self._conn)
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES "
                    "('schema_version', ?)",
                    (str(step),),
                )
        # Hooks rewrote sqlite directly: reload the image and restamp the
        # (empty, just-checkpointed) WAL with the new version.
        with self._lock:
            self._data.clear()
            self._load_checkpoint()
            self._wal.truncate(schema_version=self.schema_version)

    def close(self) -> None:
        """Checkpoint and release the connection + WAL handle."""
        with self._lock:
            self._checkpoint_locked()
            self._conn.close()
            self._wal.close()

    # -- reads --------------------------------------------------------------------

    def get(self, namespace: str, key: str) -> bytes | None:
        with self._lock:
            space = self._data.get(namespace)
            return space.get(key) if space is not None else None

    def scan(self, namespace: str, prefix: str = "") -> list[tuple[str, bytes]]:
        with self._lock:
            space = self._data.get(namespace, {})
            return sorted(
                (key, value)
                for key, value in space.items()
                if key.startswith(prefix)
            )

    # -- writes -------------------------------------------------------------------

    def apply(self, ops: Sequence[StoreOp]) -> None:
        ops = list(ops)
        if not ops:
            return
        with self._lock:
            self._wal.append(ops)  # the commit point (fsync'd)
            apply_ops_to_map(self._data, ops)
            self._pending.extend(ops)
            self.batches_applied += 1
            if self._wal.size_bytes >= self.checkpoint_bytes:
                self._checkpoint_locked()

    def counters(self) -> dict[str, int]:
        with self._lock:
            out = {
                "batches_applied": self.batches_applied,
                "checkpoints": self.checkpoints,
            }
        out.update(self._wal.counters())
        return out

    def checkpoint(self) -> None:
        """Fold the WAL into sqlite now (normally size-triggered)."""
        with self._lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        # Callers hold self._lock already; it is an RLock, so re-entering
        # here keeps the invariant locally visible (and checkable).
        with self._lock:
            if not self._pending:
                return
            with self._conn:  # one transaction: all pending ops or none
                for operation in self._pending:
                    if operation.op == OP_PUT:
                        self._conn.execute(
                            "INSERT OR REPLACE INTO kv (namespace, key, value)"
                            " VALUES (?, ?, ?)",
                            (
                                operation.namespace,
                                operation.key,
                                operation.value,
                            ),
                        )
                    else:
                        self._conn.execute(
                            "DELETE FROM kv WHERE namespace = ? AND key = ?",
                            (operation.namespace, operation.key),
                        )
            self._pending.clear()
            self._wal.truncate()
            self.checkpoints += 1
