"""Append-only write-ahead log with torn-tail-tolerant replay.

Durability layer under :class:`repro.store.sqlite.SqliteStore`: every
committed batch is framed, CRC-checked, and (by default) fsync'd before
the commit is acknowledged, so a crash at any instruction boundary loses
at most the batch that was never acknowledged. The frame format makes the
failure modes distinguishable:

.. code-block:: text

    file   := magic "RPROWAL1" | version u8 | record*
    record := length u32le | crc32(payload) u32le | payload
    payload:= varint(op_count) | op*
    op     := opcode u8 | varint-len namespace | varint-len key
              | [varint-len value]          (puts only)

Replay walks records until the first frame that is truncated or fails its
CRC — that is the *torn tail* (the one batch a crash mid-write can
leave), and it is dropped without ever touching earlier records. Opening
the log truncates the tail away so appends resume from the last durable
byte. Damage *behind* a valid-looking tail cannot be told apart from a
torn tail by construction (everything after the first bad frame is
unreachable), which is exactly the at-most-one-batch loss contract.
"""

from __future__ import annotations

import os
import threading
import zlib
from pathlib import Path
from typing import Sequence

from repro.errors import DecodeError, StoreCorruptionError
from repro.store.base import OP_DELETE, OP_PUT, StoreOp
from repro.wire.varint import decode_varint, encode_varint

MAGIC = b"RPROWAL1"
HEADER_LEN = len(MAGIC) + 1  # magic + schema-version byte
_FRAME_HEADER_LEN = 8  # u32 length + u32 crc32
#: Ceiling on one frame; a length field beyond this is damage, not data.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_ops(ops: Sequence[StoreOp]) -> bytes:
    """Serialize one batch into a frame payload."""
    out = bytearray(encode_varint(len(ops)))
    for operation in ops:
        out.append(operation.op)
        for text in (operation.namespace, operation.key):
            raw = text.encode("utf-8")
            out += encode_varint(len(raw))
            out += raw
        if operation.op == OP_PUT:
            out += encode_varint(len(operation.value))
            out += operation.value
    return bytes(out)


def decode_ops(payload: bytes) -> list[StoreOp]:
    """Inverse of :func:`encode_ops`; raises :class:`DecodeError` on any
    malformation (replay treats that as a torn frame)."""
    count, offset = decode_varint(payload, 0)
    ops: list[StoreOp] = []
    for _ in range(count):
        if offset >= len(payload):
            raise DecodeError("truncated WAL op")
        opcode = payload[offset]
        offset += 1
        if opcode not in (OP_PUT, OP_DELETE):
            raise DecodeError(f"unknown WAL opcode {opcode}")
        fields: list[str] = []
        for _field in range(2):
            length, offset = decode_varint(payload, offset)
            if offset + length > len(payload):
                raise DecodeError("truncated WAL string")
            fields.append(payload[offset : offset + length].decode("utf-8"))
            offset += length
        value = b""
        if opcode == OP_PUT:
            length, offset = decode_varint(payload, offset)
            if offset + length > len(payload):
                raise DecodeError("truncated WAL value")
            value = payload[offset : offset + length]
            offset += length
        ops.append(StoreOp(op=opcode, namespace=fields[0], key=fields[1], value=value))
    if offset != len(payload):
        raise DecodeError(f"{len(payload) - offset} trailing bytes in WAL frame")
    return ops


def _frame(ops: Sequence[StoreOp]) -> bytes:
    payload = encode_ops(ops)
    header = len(payload).to_bytes(4, "little") + (
        zlib.crc32(payload) & 0xFFFFFFFF
    ).to_bytes(4, "little")
    return header + payload


def replay_bytes(blob: bytes) -> tuple[int, list[list[StoreOp]], int]:
    """Walk a WAL image; return ``(schema_version, batches, good_end)``.

    ``good_end`` is the offset just past the last intact frame — a torn
    or damaged tail after it is reported by exclusion, never raised.
    Raises :class:`StoreCorruptionError` only for a bad header (wrong
    file, not a crash artifact).
    """
    if len(blob) < HEADER_LEN:
        raise StoreCorruptionError(
            f"WAL header truncated ({len(blob)} bytes, need {HEADER_LEN})"
        )
    if blob[: len(MAGIC)] != MAGIC:
        raise StoreCorruptionError(
            f"bad WAL magic {blob[:len(MAGIC)]!r}; not a repro WAL file"
        )
    version = blob[len(MAGIC)]
    batches: list[list[StoreOp]] = []
    offset = HEADER_LEN
    while offset + _FRAME_HEADER_LEN <= len(blob):
        length = int.from_bytes(blob[offset : offset + 4], "little")
        crc = int.from_bytes(blob[offset + 4 : offset + 8], "little")
        start = offset + _FRAME_HEADER_LEN
        if length > MAX_RECORD_BYTES or start + length > len(blob):
            break  # torn tail: frame never fully reached the disk
        payload = blob[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break  # torn tail: frame bytes are damaged
        try:
            batches.append(decode_ops(payload))
        except DecodeError:
            break  # CRC collided with garbage; still the torn-tail contract
        offset = start + length
    return version, batches, offset


class WriteAheadLog:
    """One append-only log file, shared-safe behind a lock.

    Opening replays the existing file (tolerantly — see module docstring),
    exposes the recovered batches via :attr:`recovered`, truncates any
    torn tail, and appends from there. ``fsync=False`` trades the
    power-loss guarantee for speed (process-crash durability only).
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = True,
        schema_version: int = 1,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self.recovered: list[list[StoreOp]] = []
        self.schema_version = schema_version
        self.appends = 0
        self.bytes_appended = 0
        self.truncations = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            blob = self.path.read_bytes()
            version, batches, good_end = replay_bytes(blob)
            self.schema_version = version
            self.recovered = batches
            self._file = open(self.path, "r+b")
            if good_end < len(blob):
                self._file.truncate(good_end)
            self._file.seek(good_end)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w+b")
            self._file.write(MAGIC + bytes([schema_version]))
            self._file.flush()
            self._sync()

    def _sync(self) -> None:
        if self.fsync:
            os.fsync(self._file.fileno())

    def append(self, ops: Sequence[StoreOp]) -> None:
        """Frame + write + (fsync) one batch; durable on return."""
        frame = _frame(ops)
        with self._lock:
            self._file.write(frame)
            self._file.flush()
            self._sync()
            self.appends += 1
            self.bytes_appended += len(frame)

    def truncate(self, schema_version: int | None = None) -> None:
        """Drop every record (after a checkpoint made them redundant),
        optionally restamping the header's schema version."""
        with self._lock:
            if schema_version is not None:
                self.schema_version = schema_version
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(MAGIC + bytes([self.schema_version]))
            self._file.flush()
            self._sync()
            self.truncations += 1

    def counters(self) -> dict[str, int]:
        """Monotonic append/truncate counters (ops-plane export)."""
        with self._lock:
            return {
                "wal_appends": self.appends,
                "wal_bytes_appended": self.bytes_appended,
                "wal_truncations": self.truncations,
            }

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._file.tell()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
