"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. Sub-hierarchies mirror the package
layout: crypto, wire/proto, ledger substrates, and the interoperability
layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignatureError(CryptoError):
    """A digital signature failed verification."""


class InvalidKeyError(CryptoError):
    """A key is malformed, off-curve, or otherwise unusable."""


class DecryptionError(CryptoError):
    """Ciphertext could not be authenticated or decrypted."""


class CertificateError(CryptoError):
    """A certificate is malformed, expired, or not trusted."""


# ---------------------------------------------------------------------------
# Wire / protocol
# ---------------------------------------------------------------------------


class WireError(ReproError):
    """Base class for wire-format (serialization) failures."""


class EncodeError(WireError):
    """A message could not be serialized."""


class DecodeError(WireError):
    """A byte stream could not be parsed into a message."""


class ProtocolError(ReproError):
    """A relay protocol message violated the protocol contract."""


class AddressError(ProtocolError):
    """A cross-network address string is malformed."""


# ---------------------------------------------------------------------------
# Ledger substrates (Fabric / Corda / Quorum simulators)
# ---------------------------------------------------------------------------


class LedgerError(ReproError):
    """Base class for ledger-substrate failures."""


class ChaincodeError(LedgerError):
    """A chaincode (smart contract) invocation failed."""


class EndorsementError(LedgerError):
    """A transaction failed to gather a valid set of endorsements."""


class EndorsementPolicyError(LedgerError):
    """An endorsement policy expression is invalid or unsatisfiable."""

class ValidationError(LedgerError):
    """A transaction failed commit-time validation (e.g. MVCC conflict)."""


class OrderingError(LedgerError):
    """The ordering service could not order a transaction."""


class MembershipError(LedgerError):
    """An identity is not a member of the required organization/network."""


class StateError(LedgerError):
    """World-state access failed (missing key, bad composite key, ...)."""


class NotaryError(LedgerError):
    """A Corda-style notary rejected a transaction (e.g. double spend)."""


class EVMError(LedgerError):
    """A Quorum-style contract execution failed."""


# ---------------------------------------------------------------------------
# Interoperability layer
# ---------------------------------------------------------------------------


class InteropError(ReproError):
    """Base class for interoperability-layer failures."""


class RelayError(InteropError):
    """A relay could not serve a request."""


class RelayUnavailableError(RelayError):
    """No relay for the target network is reachable."""


class DiscoveryError(InteropError):
    """Network discovery/lookup failed."""


class DriverError(InteropError):
    """A network driver could not translate or execute a request."""


class UnsupportedCapabilityError(DriverError, RelayError):
    """A verb was routed at a driver/relay that does not support it.

    The capability gate *fails closed*: a network that has not opted into
    transactions, events, or asset exchange answers with this typed error
    rather than guessing. Subclasses both :class:`DriverError` (the local,
    driver-side raise) and :class:`RelayError` (the client-side raise when
    the refusal travels back as a capability-marked error envelope), so
    existing handlers for either family keep working.
    """


class AccessDeniedError(InteropError):
    """The source network's exposure-control policy denied the request."""


class ProofError(InteropError):
    """A proof is malformed or fails verification-policy validation."""


class PolicyError(InteropError):
    """A verification policy is malformed or cannot be satisfied."""


class ConfigurationError(InteropError):
    """Foreign-network configuration is missing or inconsistent."""


class ReplayError(InteropError):
    """A proof/nonce was already consumed (replay attack detected)."""


class DoSError(RelayError):
    """A relay shed load due to rate limiting (availability protection)."""


# ---------------------------------------------------------------------------
# Durable state (repro.store)
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """A durable state-store operation failed."""


class StoreCorruptionError(StoreError):
    """Persisted state is unreadable beyond the WAL's torn-tail tolerance
    (bad magic, mid-file CRC damage, an undecodable checkpoint row)."""


class StoreMigrationError(StoreError):
    """Stored schema version cannot be migrated to the running version
    (no registered hook for a step, or the store is from the future)."""


# ---------------------------------------------------------------------------
# Asset exchange (HTLC subsystem)
# ---------------------------------------------------------------------------


class AssetError(InteropError):
    """An asset operation (lock/claim/unlock/status) failed."""


class ExchangeStateError(AssetError):
    """An exchange step was attempted from an incompatible state."""


# ---------------------------------------------------------------------------
# Probabilistic finality (repro.pubchain)
# ---------------------------------------------------------------------------


class FinalityError(InteropError):
    """A record cannot (yet) be treated as final on a probabilistic chain.

    Raised by the verification side of the public-chain driver, never by
    the ledger itself: a transaction can be *included* at any depth, but
    the :class:`repro.pubchain.FinalityPolicy` decides when its effects
    are trustworthy enough to attest across networks.
    """


class FinalityPendingError(FinalityError):
    """The record is on the canonical chain but below the required
    confirmation depth — *pending*, not verified. Retry after more blocks
    accumulate; nothing is wrong with the record itself."""


class ReorgDetectedError(FinalityError):
    """A chain reorganization orphaned a record this query depends on.

    The state previously observable (e.g. an HTLC lock) is no longer on
    the canonical chain and has not been re-included — the caller must
    re-verify from scratch rather than act on stale observations."""
