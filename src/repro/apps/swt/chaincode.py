"""The SWT chaincode: letters of credit and payments.

Letter-of-credit lifecycle (Figure 3, steps 2-4 and 9-10)::

    REQUESTED -> ISSUED -> DOCS_UPLOADED -> PAYMENT_REQUESTED -> PAID

The interoperation modification (§4.3) lives in ``UploadDispatchDocs``:
the chaincode unmarshals the proof accompanying the bill of lading and
invokes the CMDAC to validate it against the recorded STL configuration
and verification policy before accepting the document — the paper's
~20 SLOC one-time change. "L/C terms mandate payment upon dispatch ...
but it must have proof of existence of a valid B/L" — the proof check is
what "lets SWT avoid dependence on the seller, who has incentive to forge
a B/L and claim payment."
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub, require_args
from repro.interop.contracts.cmdac import CMDAC_NAME
from repro.utils.encoding import canonical_json, from_canonical_json

SWT_NETWORK_ID = "swt"
SWT_CHAINCODE_NAME = "WeTradeCC"
SWT_BUYER_BANK_ORG = "buyer-bank-org"
SWT_SELLER_BANK_ORG = "seller-bank-org"

_LC_PREFIX = "lc/"
_DOCS_PREFIX = "docs/"

STATUS_REQUESTED = "REQUESTED"
STATUS_ISSUED = "ISSUED"
STATUS_DOCS_UPLOADED = "DOCS_UPLOADED"
STATUS_PAYMENT_REQUESTED = "PAYMENT_REQUESTED"
STATUS_PAID = "PAID"

# The cross-network source address of the B/L query; a governance-time
# constant of the interop configuration (network/ledger/contract/function).
STL_BL_ADDRESS = "stl/trade-logistics/TradeLensCC/GetBillOfLading"


class WeTradeChaincode(Chaincode):
    """Letter-of-credit management for SWT.

    Functions:

    - ``RequestLC(po_ref, buyer, seller, amount)`` (Buyer's Bank org client)
    - ``IssueLC(po_ref)`` (Buyer's Bank org)
    - ``UploadDispatchDocs(po_ref, bl_json, nonce, proof_json)``
      (Seller's Bank org; interop-enabled)
    - ``RequestPayment(po_ref)`` (Seller's Bank org)
    - ``MakePayment(po_ref)`` (Buyer's Bank org)
    - ``GetLC(po_ref)`` / ``GetDispatchDocs(po_ref)``
    """

    name = SWT_CHAINCODE_NAME

    def invoke(self, stub: ChaincodeStub) -> bytes:
        function = stub.function
        if function == "init":
            return b"ok"
        handler = {
            "RequestLC": self._request_lc,
            "IssueLC": self._issue_lc,
            "UploadDispatchDocs": self._upload_dispatch_docs,
            "RequestPayment": self._request_payment,
            "MakePayment": self._make_payment,
            "GetLC": self._get_lc,
            "GetDispatchDocs": self._get_dispatch_docs,
        }.get(function)
        if handler is None:
            raise ChaincodeError(f"{self.name} has no function {function!r}")
        return handler(stub)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _creator_org(stub: ChaincodeStub) -> str:
        creator = stub.get_creator()
        if creator is None:
            raise ChaincodeError("transaction carries no creator certificate")
        return creator.subject.organization

    @staticmethod
    def _require_org(stub: ChaincodeStub, org: str) -> None:
        actual = WeTradeChaincode._creator_org(stub)
        if actual != org:
            raise ChaincodeError(
                f"{stub.function} may only be invoked by members of {org!r}, "
                f"not {actual!r}"
            )

    def _load_lc(self, stub: ChaincodeStub, po_ref: str) -> dict:
        raw = stub.get_state(_LC_PREFIX + po_ref)
        if raw is None:
            raise ChaincodeError(f"no letter of credit for purchase order {po_ref!r}")
        return from_canonical_json(raw)

    def _store_lc(self, stub: ChaincodeStub, lc: dict) -> None:
        stub.put_state(_LC_PREFIX + lc["po_ref"], canonical_json(lc))

    # -- L/C lifecycle -------------------------------------------------------------

    def _request_lc(self, stub: ChaincodeStub) -> bytes:
        po_ref, buyer, seller, amount = require_args(stub, 4)
        self._require_org(stub, SWT_BUYER_BANK_ORG)
        if stub.get_state(_LC_PREFIX + po_ref) is not None:
            raise ChaincodeError(f"a letter of credit for {po_ref!r} already exists")
        try:
            amount_value = float(amount)
        except ValueError as exc:
            raise ChaincodeError(f"amount {amount!r} is not a number") from exc
        if amount_value <= 0:
            raise ChaincodeError(f"amount must be positive, got {amount_value}")
        lc = {
            "po_ref": po_ref,
            "buyer": buyer,
            "seller": seller,
            "amount": amount_value,
            "status": STATUS_REQUESTED,
            "issuing_bank": "",
            "requested_at": stub.timestamp,
        }
        self._store_lc(stub, lc)
        stub.set_event("LCRequested", po_ref.encode("utf-8"))
        return canonical_json(lc)

    def _issue_lc(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        self._require_org(stub, SWT_BUYER_BANK_ORG)
        lc = self._load_lc(stub, po_ref)
        if lc["status"] != STATUS_REQUESTED:
            raise ChaincodeError(
                f"letter of credit {po_ref!r} is {lc['status']}, cannot issue"
            )
        lc["status"] = STATUS_ISSUED
        lc["issuing_bank"] = self._creator_org(stub)
        self._store_lc(stub, lc)
        stub.set_event("LCIssued", po_ref.encode("utf-8"))
        return canonical_json(lc)

    def _upload_dispatch_docs(self, stub: ChaincodeStub) -> bytes:
        po_ref, bl_json, nonce, proof_json = require_args(stub, 4)
        self._require_org(stub, SWT_SELLER_BANK_ORG)
        lc = self._load_lc(stub, po_ref)
        if lc["status"] != STATUS_ISSUED:
            raise ChaincodeError(
                f"letter of credit {po_ref!r} is {lc['status']}, cannot upload docs"
            )
        bill_of_lading = from_canonical_json(bl_json.encode("utf-8"))
        if bill_of_lading.get("po_ref") != po_ref:
            raise ChaincodeError(
                f"bill of lading references {bill_of_lading.get('po_ref')!r}, "
                f"not this letter of credit's {po_ref!r}"
            )
        # [interop-begin] unmarshal the proof and validate it via the CMDAC (§4.3)
        data_hash = sha256(bl_json.encode("utf-8")).hex()
        stub.invoke_chaincode(
            CMDAC_NAME,
            "ValidateProof",
            [
                "stl",
                STL_BL_ADDRESS,
                canonical_json([po_ref]).decode("ascii"),
                nonce,
                data_hash,
                proof_json,
            ],
        )
        # [interop-end]
        stub.put_state(_DOCS_PREFIX + po_ref, bl_json.encode("utf-8"))
        lc["status"] = STATUS_DOCS_UPLOADED
        self._store_lc(stub, lc)
        stub.set_event("DispatchDocsUploaded", po_ref.encode("utf-8"))
        return canonical_json(lc)

    def _request_payment(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        self._require_org(stub, SWT_SELLER_BANK_ORG)
        lc = self._load_lc(stub, po_ref)
        if lc["status"] != STATUS_DOCS_UPLOADED:
            raise ChaincodeError(
                f"payment requires uploaded dispatch docs; letter of credit "
                f"{po_ref!r} is {lc['status']}"
            )
        lc["status"] = STATUS_PAYMENT_REQUESTED
        self._store_lc(stub, lc)
        stub.set_event("PaymentRequested", po_ref.encode("utf-8"))
        return canonical_json(lc)

    def _make_payment(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        self._require_org(stub, SWT_BUYER_BANK_ORG)
        lc = self._load_lc(stub, po_ref)
        if lc["status"] != STATUS_PAYMENT_REQUESTED:
            raise ChaincodeError(
                f"letter of credit {po_ref!r} is {lc['status']}, cannot pay"
            )
        lc["status"] = STATUS_PAID
        lc["paid_at"] = stub.timestamp
        self._store_lc(stub, lc)
        stub.set_event("PaymentMade", po_ref.encode("utf-8"))
        return canonical_json(lc)

    # -- queries --------------------------------------------------------------------

    def _get_lc(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        return canonical_json(self._load_lc(stub, po_ref))

    def _get_dispatch_docs(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        raw = stub.get_state(_DOCS_PREFIX + po_ref)
        if raw is None:
            raise ChaincodeError(f"no dispatch docs uploaded for {po_ref!r}")
        return raw
