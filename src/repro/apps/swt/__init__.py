"""Simplified We.Trade (SWT): the trade-finance destination network.

"The SWT network consists of 4 peers: 2 in a Buyer's Bank organization
and 2 in a Seller's Bank organization; a Buyer and a Seller are clients
of their respective banks' organizations. A single chaincode manages
letters of credits and payments" (§4.2).
"""

from repro.apps.swt.chaincode import (
    SWT_BUYER_BANK_ORG,
    SWT_CHAINCODE_NAME,
    SWT_NETWORK_ID,
    SWT_SELLER_BANK_ORG,
    WeTradeChaincode,
)
from repro.apps.swt.applications import (
    BuyerApp,
    BuyerBankApp,
    SellerBankApp,
    SwtSellerClient,
    build_swt_network,
)

__all__ = [
    "WeTradeChaincode",
    "SWT_CHAINCODE_NAME",
    "SWT_NETWORK_ID",
    "SWT_BUYER_BANK_ORG",
    "SWT_SELLER_BANK_ORG",
    "BuyerApp",
    "BuyerBankApp",
    "SellerBankApp",
    "SwtSellerClient",
    "build_swt_network",
]
