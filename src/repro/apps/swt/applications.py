"""SWT service applications: buyer, banks, and the interop-enabled seller.

The Seller's client (SWT-SC in Table 1) carries the paper's destination-
side adaptation (~80 SLOC, §5): "(i) inserted a remote query call using
the relay service API before an UploadDispatchDocs transaction submission
... and (ii) added calls to decrypt and validate the response and
metadata, and run the transaction using the decrypted data and proof as
arguments."
"""

from __future__ import annotations

import json

from repro.apps.swt.chaincode import (
    SWT_BUYER_BANK_ORG,
    SWT_CHAINCODE_NAME,
    SWT_NETWORK_ID,
    SWT_SELLER_BANK_ORG,
    WeTradeChaincode,
)
from repro.fabric.gateway import SubmitResult
from repro.fabric.identity import Identity
from repro.fabric.network import FabricNetwork, NetworkBuilder
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.interop.relay import RelayService
from repro.utils.clock import Clock


def build_swt_network(clock: Clock | None = None) -> FabricNetwork:
    """Assemble SWT exactly as §4.2 describes: two peers per bank org."""
    builder = NetworkBuilder(SWT_NETWORK_ID, channel="trade-finance", clock=clock)
    builder.add_org(SWT_BUYER_BANK_ORG).add_org(SWT_SELLER_BANK_ORG)
    builder.add_peer("peer0", SWT_BUYER_BANK_ORG)
    builder.add_peer("peer1", SWT_BUYER_BANK_ORG)
    builder.add_peer("peer0", SWT_SELLER_BANK_ORG)
    builder.add_peer("peer1", SWT_SELLER_BANK_ORG)
    builder.add_client("buyer", SWT_BUYER_BANK_ORG)
    builder.add_client("seller", SWT_SELLER_BANK_ORG)
    builder.add_client("buyer-bank-app", SWT_BUYER_BANK_ORG)
    builder.add_client("seller-bank-app", SWT_SELLER_BANK_ORG)
    builder.add_client("admin", SWT_BUYER_BANK_ORG)
    return builder.build()


def deploy_swt_chaincode(network: FabricNetwork, admin: Identity) -> None:
    """Deploy the SWT chaincode: "2 endorsements: one from a peer each in
    the Buyer's Bank and Seller's Bank organizations" (§4.3)."""
    network.deploy_chaincode(
        WeTradeChaincode(),
        f"AND('{SWT_BUYER_BANK_ORG}.peer', '{SWT_SELLER_BANK_ORG}.peer')",
        initializer=admin,
    )


class _SwtApp:
    def __init__(self, network: FabricNetwork, identity: Identity) -> None:
        self._network = network
        self._identity = identity

    def _submit(self, function: str, args: list[str]) -> SubmitResult:
        return self._network.gateway.submit(
            self._identity, SWT_CHAINCODE_NAME, function, args
        )

    def _evaluate(self, function: str, args: list[str]) -> bytes:
        return self._network.gateway.evaluate(
            self._identity, SWT_CHAINCODE_NAME, function, args
        )

    def get_lc(self, po_ref: str) -> dict:
        return json.loads(self._evaluate("GetLC", [po_ref]))


class BuyerApp(_SwtApp):
    """The Buyer's application (client of the Buyer's Bank org)."""

    def request_lc(self, po_ref: str, buyer: str, seller: str, amount: float) -> dict:
        result = self._submit("RequestLC", [po_ref, buyer, seller, str(amount)])
        return json.loads(result.result)


class BuyerBankApp(_SwtApp):
    """The Buyer's Bank application."""

    def issue_lc(self, po_ref: str) -> dict:
        return json.loads(self._submit("IssueLC", [po_ref]).result)

    def make_payment(self, po_ref: str) -> dict:
        return json.loads(self._submit("MakePayment", [po_ref]).result)


class SellerBankApp(_SwtApp):
    """The Seller's Bank application."""

    def request_payment(self, po_ref: str) -> dict:
        return json.loads(self._submit("RequestPayment", [po_ref]).result)


class SwtSellerClient(_SwtApp):
    """SWT-SC: the seller's interop-enabled client application.

    Beyond ordinary SWT operations it can fetch the bill of lading from
    STL through the relay (step 9 of Figure 3) and submit it with proof.
    """

    def __init__(
        self,
        network: FabricNetwork,
        identity: Identity,
        relay: RelayService,
        bl_address: str,
    ) -> None:
        super().__init__(network, identity)
        # [interop-begin] application adaptation: relay client + remote query,
        # response/metadata decryption, and proof-carrying submission (§5)
        self._interop = InteropClient(
            identity=identity,
            relay=relay,
            network_id=SWT_NETWORK_ID,
            gateway=network.gateway,
        )
        self._bl_address = bl_address

    @property
    def interop_client(self) -> InteropClient:
        return self._interop

    def fetch_bill_of_lading(
        self, po_ref: str, confidential: bool = True
    ) -> RemoteQueryResult:
        """Step 9: cross-network query for the B/L, returning data + proof."""
        return self._interop.remote_query(
            self._bl_address, [po_ref], confidential=confidential
        )

    def upload_dispatch_docs(self, po_ref: str, fetched: RemoteQueryResult) -> dict:
        """Submit UploadDispatchDocs with the decrypted B/L and proof (§4.3)."""
        result = self._submit(
            "UploadDispatchDocs",
            [
                po_ref,
                fetched.data.decode("utf-8"),
                fetched.nonce,
                fetched.proof_json,
            ],
        )
        return json.loads(result.result)

    def fetch_and_upload(self, po_ref: str, confidential: bool = True) -> dict:
        """The full destination-side interop sequence in one call."""
        fetched = self.fetch_bill_of_lading(po_ref, confidential=confidential)
        return self.upload_dispatch_docs(po_ref, fetched)
    # [interop-end]
