"""STL service applications: the Seller's and Carrier's front ends.

"Independent applications were developed for the Seller and Carrier,
invoking chaincode below and offering web UIs above" (§4.2). Here each
application is the service tier: it owns an identity and drives the
chaincode through the gateway.
"""

from __future__ import annotations

import json

from repro.apps.stl.chaincode import (
    STL_CARRIER_ORG,
    STL_CHAINCODE_NAME,
    STL_NETWORK_ID,
    STL_SELLER_ORG,
    TradeLensChaincode,
)
from repro.fabric.gateway import SubmitResult
from repro.fabric.identity import Identity
from repro.fabric.network import FabricNetwork, NetworkBuilder
from repro.utils.clock import Clock


def build_stl_network(clock: Clock | None = None) -> FabricNetwork:
    """Assemble STL exactly as §4.2 describes: one peer per organization."""
    builder = NetworkBuilder(STL_NETWORK_ID, channel="trade-logistics", clock=clock)
    builder.add_org(STL_SELLER_ORG).add_org(STL_CARRIER_ORG)
    builder.add_peer("peer0", STL_SELLER_ORG)
    builder.add_peer("peer0", STL_CARRIER_ORG)
    builder.add_client("seller-app", STL_SELLER_ORG)
    builder.add_client("carrier-app", STL_CARRIER_ORG)
    builder.add_client("admin", STL_SELLER_ORG)
    return builder.build()


def deploy_stl_chaincode(network: FabricNetwork, admin: Identity) -> None:
    """Deploy the STL chaincode under a both-orgs endorsement policy."""
    network.deploy_chaincode(
        TradeLensChaincode(),
        f"AND('{STL_SELLER_ORG}.peer', '{STL_CARRIER_ORG}.peer')",
        initializer=admin,
    )


class _StlApp:
    def __init__(self, network: FabricNetwork, identity: Identity) -> None:
        self._network = network
        self._identity = identity

    def _submit(self, function: str, args: list[str]) -> SubmitResult:
        return self._network.gateway.submit(
            self._identity, STL_CHAINCODE_NAME, function, args
        )

    def _evaluate(self, function: str, args: list[str]) -> bytes:
        return self._network.gateway.evaluate(
            self._identity, STL_CHAINCODE_NAME, function, args
        )

    def get_shipment(self, po_ref: str) -> dict:
        return json.loads(self._evaluate("GetShipment", [po_ref]))


class StlSellerApp(_StlApp):
    """The Seller's application on STL."""

    def create_shipment(self, po_ref: str, goods_description: str) -> dict:
        result = self._submit("CreateShipment", [po_ref, goods_description])
        return json.loads(result.result)


class CarrierApp(_StlApp):
    """The Carrier's application on STL."""

    def accept_shipment(self, po_ref: str) -> dict:
        return json.loads(self._submit("AcceptShipment", [po_ref]).result)

    def record_handover(self, po_ref: str) -> dict:
        return json.loads(self._submit("RecordHandover", [po_ref]).result)

    def issue_bill_of_lading(self, po_ref: str, vessel: str) -> dict:
        result = self._submit("IssueBillOfLading", [po_ref, vessel])
        return json.loads(result.result)
