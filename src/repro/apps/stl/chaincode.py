"""The STL chaincode: shipment state and documentation.

Shipment lifecycle (Figure 3, steps 1 and 5-8)::

    CREATED -> ACCEPTED -> IN_POSSESSION -> BL_ISSUED

The interoperation modification (§4.3, §5 "ease of adaptation") is the
pair of ECC invocations inside ``GetBillOfLading``: an access-control
check before query execution, and a response-sealing (encryption) call
after — the paper's ~35 SLOC one-time change. Incoming relay queries are
detected through the interop transient field ("STL Chaincode was also
modified to check if an incoming query is from a relay").
"""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub, require_args
from repro.interop.contracts.ecc import ECC_NAME
from repro.interop.drivers.fabric_driver import INTEROP_TRANSIENT_KEY
from repro.utils.encoding import canonical_json, from_canonical_json

STL_NETWORK_ID = "stl"
STL_CHAINCODE_NAME = "TradeLensCC"
STL_SELLER_ORG = "seller-org"
STL_CARRIER_ORG = "carrier-org"

_SHIPMENT_PREFIX = "shipment/"
_BL_PREFIX = "bl/"

STATUS_CREATED = "CREATED"
STATUS_ACCEPTED = "ACCEPTED"
STATUS_IN_POSSESSION = "IN_POSSESSION"
STATUS_BL_ISSUED = "BL_ISSUED"


class TradeLensChaincode(Chaincode):
    """Shipment and bill-of-lading management for STL.

    Functions:

    - ``CreateShipment(po_ref, goods_description)`` (Seller org)
    - ``AcceptShipment(po_ref)`` (Carrier org)
    - ``RecordHandover(po_ref)`` (Carrier org, takes possession)
    - ``IssueBillOfLading(po_ref, vessel)`` (Carrier org)
    - ``GetShipment(po_ref)`` -> shipment JSON
    - ``GetBillOfLading(po_ref)`` -> B/L JSON (interop-enabled)
    """

    name = STL_CHAINCODE_NAME

    def invoke(self, stub: ChaincodeStub) -> bytes:
        function = stub.function
        if function == "init":
            return b"ok"
        handler = {
            "CreateShipment": self._create_shipment,
            "AcceptShipment": self._accept_shipment,
            "RecordHandover": self._record_handover,
            "IssueBillOfLading": self._issue_bill_of_lading,
            "GetShipment": self._get_shipment,
            "GetBillOfLading": self._get_bill_of_lading,
        }.get(function)
        if handler is None:
            raise ChaincodeError(f"{self.name} has no function {function!r}")
        # [interop-begin] §4.3 one-time adaptation: if the query comes from a
        # relay, (1) consult the ECC before execution and (2) seal the
        # response after execution. Exposing further functions "only
        # requires the addition of a policy rule, and no further chaincode
        # modification" (§5) because the wrapping is dispatch-wide.
        interop_raw = stub.get_transient(INTEROP_TRANSIENT_KEY)
        if interop_raw is not None:
            interop_ctx = json.loads(interop_raw)
            stub.invoke_chaincode(
                ECC_NAME,
                "CheckAccess",
                [
                    interop_ctx["requesting_network"],
                    interop_ctx["requesting_org"],
                    self.name,
                    function,
                ],
            )
            result = handler(stub)
            return stub.invoke_chaincode(
                ECC_NAME,
                "SealResponse",
                [
                    result.hex(),
                    interop_ctx["client_pubkey"],
                    "true" if interop_ctx["confidential"] else "false",
                ],
            )
        # [interop-end]
        return handler(stub)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _creator_org(stub: ChaincodeStub) -> str:
        creator = stub.get_creator()
        if creator is None:
            raise ChaincodeError("transaction carries no creator certificate")
        return creator.subject.organization

    @staticmethod
    def _require_org(stub: ChaincodeStub, org: str) -> None:
        actual = TradeLensChaincode._creator_org(stub)
        if actual != org:
            raise ChaincodeError(
                f"{stub.function} may only be invoked by members of {org!r}, "
                f"not {actual!r}"
            )

    def _load_shipment(self, stub: ChaincodeStub, po_ref: str) -> dict:
        raw = stub.get_state(_SHIPMENT_PREFIX + po_ref)
        if raw is None:
            raise ChaincodeError(f"no shipment for purchase order {po_ref!r}")
        return from_canonical_json(raw)

    def _store_shipment(self, stub: ChaincodeStub, shipment: dict) -> None:
        stub.put_state(
            _SHIPMENT_PREFIX + shipment["po_ref"], canonical_json(shipment)
        )

    # -- shipment lifecycle -----------------------------------------------------

    def _create_shipment(self, stub: ChaincodeStub) -> bytes:
        po_ref, goods_description = require_args(stub, 2)
        self._require_org(stub, STL_SELLER_ORG)
        if stub.get_state(_SHIPMENT_PREFIX + po_ref) is not None:
            raise ChaincodeError(f"shipment for {po_ref!r} already exists")
        shipment = {
            "po_ref": po_ref,
            "goods_description": goods_description,
            "status": STATUS_CREATED,
            "seller": self._creator_org(stub),
            "carrier": "",
            "created_at": stub.timestamp,
        }
        self._store_shipment(stub, shipment)
        stub.set_event("ShipmentCreated", po_ref.encode("utf-8"))
        return canonical_json(shipment)

    def _accept_shipment(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        self._require_org(stub, STL_CARRIER_ORG)
        shipment = self._load_shipment(stub, po_ref)
        if shipment["status"] != STATUS_CREATED:
            raise ChaincodeError(
                f"shipment {po_ref!r} is {shipment['status']}, cannot accept"
            )
        shipment["status"] = STATUS_ACCEPTED
        shipment["carrier"] = self._creator_org(stub)
        self._store_shipment(stub, shipment)
        return canonical_json(shipment)

    def _record_handover(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        self._require_org(stub, STL_CARRIER_ORG)
        shipment = self._load_shipment(stub, po_ref)
        if shipment["status"] != STATUS_ACCEPTED:
            raise ChaincodeError(
                f"shipment {po_ref!r} is {shipment['status']}, cannot hand over"
            )
        shipment["status"] = STATUS_IN_POSSESSION
        self._store_shipment(stub, shipment)
        return canonical_json(shipment)

    def _issue_bill_of_lading(self, stub: ChaincodeStub) -> bytes:
        po_ref, vessel = require_args(stub, 2)
        self._require_org(stub, STL_CARRIER_ORG)
        shipment = self._load_shipment(stub, po_ref)
        if shipment["status"] != STATUS_IN_POSSESSION:
            raise ChaincodeError(
                f"a B/L can only be issued once the carrier has possession; "
                f"shipment {po_ref!r} is {shipment['status']}"
            )
        bill_of_lading = {
            "document": "bill-of-lading",
            "po_ref": po_ref,
            "goods_description": shipment["goods_description"],
            "shipper": shipment["seller"],
            "carrier": shipment["carrier"],
            "vessel": vessel,
            "issued_at": stub.timestamp,
            "bl_id": f"BL-{po_ref}",
        }
        stub.put_state(_BL_PREFIX + po_ref, canonical_json(bill_of_lading))
        shipment["status"] = STATUS_BL_ISSUED
        self._store_shipment(stub, shipment)
        stub.set_event("BillOfLadingIssued", po_ref.encode("utf-8"))
        return canonical_json(bill_of_lading)

    # -- queries --------------------------------------------------------------

    def _get_shipment(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        return canonical_json(self._load_shipment(stub, po_ref))

    def _get_bill_of_lading(self, stub: ChaincodeStub) -> bytes:
        (po_ref,) = require_args(stub, 1)
        raw = stub.get_state(_BL_PREFIX + po_ref)
        if raw is None:
            raise ChaincodeError(f"no bill of lading recorded for {po_ref!r}")
        return raw
