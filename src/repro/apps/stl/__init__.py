"""Simplified TradeLens (STL): the trade-logistics source network.

"STL retains just a Seller and a Carrier negotiating the export of a
shipment. ... The STL network on Fabric consists of 2 peers: one belongs
to a Seller organization and the other to a Carrier organization. A
single chaincode manages shipment state and documentation" (§4.2).
"""

from repro.apps.stl.chaincode import (
    STL_CHAINCODE_NAME,
    STL_NETWORK_ID,
    STL_CARRIER_ORG,
    STL_SELLER_ORG,
    TradeLensChaincode,
)
from repro.apps.stl.applications import CarrierApp, StlSellerApp, build_stl_network

__all__ = [
    "TradeLensChaincode",
    "STL_CHAINCODE_NAME",
    "STL_NETWORK_ID",
    "STL_SELLER_ORG",
    "STL_CARRIER_ORG",
    "StlSellerApp",
    "CarrierApp",
    "build_stl_network",
]
