"""Use-case applications (paper §4).

Scaled-down versions of two industry blockchain consortium networks:

- :mod:`repro.apps.stl` — Simplified TradeLens, a trade-logistics network
  with a Seller and a Carrier organization; its chaincode manages shipment
  state and documentation (bills of lading).
- :mod:`repro.apps.swt` — Simplified We.Trade, a trade-finance network
  with a Buyer's Bank and a Seller's Bank organization; its chaincode
  manages letters of credit and payments.
- :mod:`repro.apps.trade_workflow` — assembles both networks, augments
  them for interoperation, and runs the full Figure 3 use case, including
  the cross-network bill-of-lading query (step 9).
- :mod:`repro.apps.glossary` — Table 1's acronym glossary.
"""

from repro.apps.trade_workflow import (
    TradeScenario,
    UseCaseResult,
    build_trade_scenario,
    run_full_use_case,
)

__all__ = [
    "TradeScenario",
    "UseCaseResult",
    "build_trade_scenario",
    "run_full_use_case",
]
