"""The end-to-end use case: STL + SWT with trusted data transfer.

Builds both networks, augments them for interoperation (system contracts,
endorsement plugin, relays, mutual configuration records), and runs the
ten steps of Figure 3 — including the cross-network bill-of-lading query
of step 9 with its verification policy "proof from a peer in both the
Seller and Carrier organizations" (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.stl.applications import (
    CarrierApp,
    StlSellerApp,
    build_stl_network,
    deploy_stl_chaincode,
)
from repro.apps.stl.chaincode import (
    STL_CARRIER_ORG,
    STL_CHAINCODE_NAME,
    STL_NETWORK_ID,
    STL_SELLER_ORG,
)
from repro.apps.swt.applications import (
    BuyerApp,
    BuyerBankApp,
    SellerBankApp,
    SwtSellerClient,
    build_swt_network,
    deploy_swt_chaincode,
)
from repro.apps.swt.chaincode import (
    SWT_BUYER_BANK_ORG,
    SWT_NETWORK_ID,
    SWT_SELLER_BANK_ORG,
    STL_BL_ADDRESS,
)
from repro.fabric.network import FabricNetwork
from repro.interop.bootstrap import (
    create_fabric_relay,
    enable_fabric_interop,
    link_networks,
)
from repro.interop.contracts.ecc import ECC_NAME
from repro.interop.discovery import DiscoveryService, InMemoryRegistry
from repro.interop.relay import RateLimiter, RelayService
from repro.utils.clock import Clock


@dataclass
class TradeScenario:
    """Everything assembled for the use case."""

    stl: FabricNetwork
    swt: FabricNetwork
    discovery: DiscoveryService
    stl_relays: list[RelayService]
    swt_relay: RelayService
    stl_seller_app: StlSellerApp
    carrier_app: CarrierApp
    buyer_app: BuyerApp
    buyer_bank_app: BuyerBankApp
    seller_bank_app: SellerBankApp
    swt_seller_client: SwtSellerClient

    @property
    def stl_relay(self) -> RelayService:
        return self.stl_relays[0]


@dataclass
class UseCaseResult:
    """Step-by-step record of one full use-case run (Figure 3)."""

    po_ref: str
    steps: list[str] = field(default_factory=list)
    bill_of_lading: dict | None = None
    final_lc: dict | None = None


def build_trade_scenario(
    clock: Clock | None = None,
    discovery: DiscoveryService | None = None,
    stl_relay_count: int = 1,
    stl_rate_limit: RateLimiter | None = None,
    verification_policy: str | None = None,
) -> TradeScenario:
    """Assemble STL and SWT and wire them for interoperation.

    ``stl_relay_count`` deploys redundant source relays (the paper's DoS
    mitigation); ``verification_policy`` overrides SWT's recorded policy
    about STL (defaults to the paper's: a peer from both STL orgs).
    """
    registry = discovery if discovery is not None else InMemoryRegistry()

    stl = build_stl_network(clock=clock)
    swt = build_swt_network(clock=clock)
    stl_admin = stl.org(STL_SELLER_ORG).member("admin")
    swt_admin = swt.org(SWT_BUYER_BANK_ORG).member("admin")

    # Application chaincodes (the original, non-interoperable networks).
    deploy_stl_chaincode(stl, stl_admin)
    deploy_swt_chaincode(swt, swt_admin)

    # Augmentation for interoperability (§4.3 initialization).
    enable_fabric_interop(stl, stl_admin)
    enable_fabric_interop(swt, swt_admin)

    policy = verification_policy or (
        f"AND(org:{STL_SELLER_ORG}, org:{STL_CARRIER_ORG})"
    )
    link_networks(
        swt,
        swt_admin,
        stl,
        stl_admin,
        policy_a_about_b=policy,  # SWT's policy about STL
        policy_b_about_a=f"AND(org:{SWT_BUYER_BANK_ORG}, org:{SWT_SELLER_BANK_ORG})",
    )

    # The exposure-control rule of §4.3: members of SWT's seller org may
    # call GetBillOfLading. (The paper writes the network id as
    # "we-trade"; this repo's SWT network id is "swt".)
    stl.gateway.submit(
        stl_admin,
        ECC_NAME,
        "AddAccessRule",
        [SWT_NETWORK_ID, SWT_SELLER_BANK_ORG, STL_CHAINCODE_NAME, "GetBillOfLading"],
    )

    # Relays: possibly-redundant relays for STL, one for SWT.
    stl_relays = [
        create_fabric_relay(
            stl,
            registry,
            rate_limiter=stl_rate_limit,
            relay_id=f"relay-stl-{index}",
        )
        for index in range(stl_relay_count)
    ]
    swt_relay = create_fabric_relay(swt, registry, relay_id="relay-swt-0")

    # Applications.
    stl_seller_app = StlSellerApp(stl, stl.org(STL_SELLER_ORG).member("seller-app"))
    carrier_app = CarrierApp(stl, stl.org(STL_CARRIER_ORG).member("carrier-app"))
    buyer_app = BuyerApp(swt, swt.org(SWT_BUYER_BANK_ORG).member("buyer"))
    buyer_bank_app = BuyerBankApp(
        swt, swt.org(SWT_BUYER_BANK_ORG).member("buyer-bank-app")
    )
    seller_bank_app = SellerBankApp(
        swt, swt.org(SWT_SELLER_BANK_ORG).member("seller-bank-app")
    )
    swt_seller_client = SwtSellerClient(
        swt,
        swt.org(SWT_SELLER_BANK_ORG).member("seller"),
        relay=swt_relay,
        bl_address=STL_BL_ADDRESS,
    )

    return TradeScenario(
        stl=stl,
        swt=swt,
        discovery=registry,
        stl_relays=stl_relays,
        swt_relay=swt_relay,
        stl_seller_app=stl_seller_app,
        carrier_app=carrier_app,
        buyer_app=buyer_app,
        buyer_bank_app=buyer_bank_app,
        seller_bank_app=seller_bank_app,
        swt_seller_client=swt_seller_client,
    )


def run_full_use_case(
    scenario: TradeScenario,
    po_ref: str = "PO-2019-0001",
    goods: str = "40ft container of machine parts",
    amount: float = 250_000.0,
    confidential: bool = True,
) -> UseCaseResult:
    """Execute Figure 3's ten steps end to end."""
    result = UseCaseResult(po_ref=po_ref)
    record = result.steps.append

    record(f"1. Purchase order {po_ref} negotiated offline between seller and buyer")

    scenario.buyer_app.request_lc(po_ref, "buyer-corp", "seller-corp", amount)
    record(f"2-3. Buyer requested an L/C for {po_ref} on SWT")
    lc = scenario.buyer_bank_app.issue_lc(po_ref)
    record(f"4. Buyer's bank issued the L/C (status={lc['status']})")

    scenario.stl_seller_app.create_shipment(po_ref, goods)
    record(f"5. Seller created shipment for {po_ref} on STL")
    scenario.carrier_app.accept_shipment(po_ref)
    record("6. Carrier accepted the shipment")
    scenario.carrier_app.record_handover(po_ref)
    record("7. Carrier took possession of the shipment")
    bl = scenario.carrier_app.issue_bill_of_lading(po_ref, vessel="MV Simulated")
    record(f"8. Carrier issued bill of lading {bl['bl_id']}")

    fetched = scenario.swt_seller_client.fetch_bill_of_lading(
        po_ref, confidential=confidential
    )
    result.bill_of_lading = __import__("json").loads(fetched.data)
    record(
        f"9. SWT seller fetched the B/L from STL via cross-network query "
        f"({len(fetched.proof)} attestations)"
    )
    lc = scenario.swt_seller_client.upload_dispatch_docs(po_ref, fetched)
    record(f"9b. Dispatch docs accepted on SWT after proof validation "
           f"(status={lc['status']})")

    lc = scenario.seller_bank_app.request_payment(po_ref)
    record(f"10. Seller's bank requested payment (status={lc['status']})")
    lc = scenario.buyer_bank_app.make_payment(po_ref)
    record(f"10b. Buyer's bank paid (status={lc['status']})")

    result.final_lc = lc
    return result
