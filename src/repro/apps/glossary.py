"""Table 1 of the paper: common use-case acronyms."""

from __future__ import annotations

GLOSSARY: list[tuple[str, str]] = [
    ("L/C", "Letter of Credit: Trade Financing Instrument"),
    ("B/L", "Bill of Lading: Carrier Acknowledgement of Shipment Receipt"),
    ("(S)TL", "(Simplified) TradeLens: Trade Logistics Network"),
    ("(S)WT", "(Simplified) We.Trade: Trade Finance Network"),
    ("SWT-SC", "Simplified We.Trade-Seller Client"),
    ("ECC", "Exposure Control Chaincode"),
    ("CMDAC", "Configuration Management & Data Acceptance Chaincode"),
]


def render_glossary() -> str:
    """Render Table 1 as aligned text."""
    width = max(len(acronym) for acronym, _ in GLOSSARY)
    lines = [f"{'Acronym':<{width}}  Expansion & Description"]
    lines.append("-" * (width + 2 + max(len(d) for _, d in GLOSSARY)))
    for acronym, description in GLOSSARY:
        lines.append(f"{acronym:<{width}}  {description}")
    return "\n".join(lines)
