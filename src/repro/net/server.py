"""The relay as a real network service: an asyncio TCP frame server.

:class:`RelayServer` is the deployment shape the paper implies — "the
relay service serves requests for authentic data" (§3.2) *from remote
parties over the wire*. It listens on a socket, speaks the
length-prefixed envelope framing of :mod:`repro.net.framing`, and serves
requests **concurrently**: the asyncio loop multiplexes connections and
frame I/O, while each request's actual serving — the existing synchronous
:meth:`RelayService.handle_request` path (interceptor chain, dispatch,
driver, proof collection) — runs on a bounded worker-thread executor.
Nothing about the relay's protocol behavior changes; the server is a
transport shell around the very same object the in-process tests drive.

Failure semantics mirror the in-process contract:

- protocol-level failures are *answered* (error envelopes travel back as
  ordinary frames — a remote relay cannot catch our exceptions);
- a relay that is down (:class:`RelayUnavailableError`) or a client that
  sends unframeable bytes gets its connection closed, which the peer's
  :class:`~repro.net.client.TcpRelayEndpoint` surfaces as the same typed
  :class:`RelayUnavailableError` the failover loop already handles.

The server owns a private event loop on a daemon thread, so synchronous
deployments (and tests) just call :meth:`start` / :meth:`stop`; asyncio
applications embed it with :meth:`start_async` / :meth:`stop_async`.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import DecodeError, RelayUnavailableError
from repro.net.framing import DEFAULT_MAX_FRAME_BYTES, read_frame, write_frame
from repro.ops.trace import TRACE_ID_HEADER

#: Transport-layer structured logging (see :mod:`repro.ops.logging`).
logger = logging.getLogger("repro.net")

_STAT_NAMES = (
    "connections_accepted",
    "connections_closed",
    "frames_served",
    "frames_rejected",
    "in_flight",
    "in_flight_peak",
)


class RelayServerStats:
    """Operational counters for one server (all guarded by one lock)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.connections_accepted = 0
        self.connections_closed = 0
        self.frames_served = 0
        self.frames_rejected = 0
        self.in_flight = 0
        self.in_flight_peak = 0

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def enter_flight(self) -> None:
        with self._lock:
            self.in_flight += 1
            self.in_flight_peak = max(self.in_flight_peak, self.in_flight)

    def leave_flight(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def snapshot(self) -> dict[str, int]:
        """All counters, read atomically (one lock acquisition)."""
        with self._lock:
            return {name: getattr(self, name) for name in _STAT_NAMES}


class RelayServer:
    """Serves one :class:`RelayService` on a TCP socket, concurrently.

    ``max_workers`` sizes the executor that runs the synchronous serve
    path: it is the server's concurrency ceiling. ``max_workers=1``
    degenerates to single-in-flight serving (useful as a benchmark
    baseline, or for fronting a substrate that cannot take concurrent
    load *without* installing a
    :class:`~repro.api.SerializingInterceptor`). Frames pipelined on one
    connection are served concurrently too; replies are written in
    completion order, each as one atomic frame (the client's
    one-in-flight-per-connection discipline means ordering never
    matters to a conforming peer).
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_pipeline_depth: int = 32,
        probe_port: int | None = None,
        registry=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_pipeline_depth < 1:
            raise ValueError("max_pipeline_depth must be >= 1")
        self.service = service
        #: ``probe_port`` opens the ops plane: an HTTP listener on its own
        #: port (0 = ephemeral) serving ``/metrics``, ``/healthz`` and
        #: ``/readyz`` next to the frame socket. ``registry`` shares a
        #: :class:`~repro.ops.MetricsRegistry` across servers; omitted, a
        #: private one is created. ``None`` keeps the probe plane off.
        self.probe_port = probe_port
        self.registry = registry
        self.probe = None  # the live OpsProbeServer while started
        self._ops_wired = False  # exporters register once, not per (re)start
        self._requested_host = host
        self._requested_port = port
        self.max_workers = max_workers
        self.max_frame_bytes = max_frame_bytes
        #: Per-connection bound on frames in flight: past it the read
        #: loop stops pulling bytes, so TCP flow control pushes back on
        #: the peer instead of the server buffering unbounded frames —
        #: without this, pipelining would bypass ``max_frame_bytes`` as
        #: a memory bound (N frames x 8 MB each, all queued).
        self.max_pipeline_depth = max_pipeline_depth
        self.stats = RelayServerStats()
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.host: str | None = None
        self.port: int | None = None

    # -- addressing ---------------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound ``tcp://host:port`` address (after start)."""
        if self.host is None or self.port is None:
            raise RuntimeError("server is not started")
        return f"tcp://{self.host}:{self.port}"

    def endpoint(self, timeout: float = 10.0, **kwargs):
        """A fresh :class:`TcpRelayEndpoint` dialed at this server."""
        from repro.net.client import TcpRelayEndpoint

        if self.host is None or self.port is None:
            raise RuntimeError("server is not started")
        return TcpRelayEndpoint(self.host, self.port, timeout=timeout, **kwargs)

    # -- async lifecycle ----------------------------------------------------------

    async def start_async(self) -> "RelayServer":
        """Bind and start accepting on the current event loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix=f"relay-{self.service.network_id}",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        if self.probe_port is not None:
            await self._start_probe()
        self._started.set()
        return self

    async def _start_probe(self) -> None:
        """Stand up the ops probe listener next to the frame socket.

        Lazy imports: :mod:`repro.ops.exporters` pulls in the api and
        relay layers, which import :mod:`repro.ops` themselves — by serve
        time everything is loaded, at module-import time it would cycle.
        """
        from repro.ops import MetricsRegistry, OpsProbeServer, relay_checks
        from repro.ops.exporters import register_relay, register_server

        if self.registry is None:
            self.registry = MetricsRegistry()
        if not self._ops_wired:
            register_server(self.registry, self)
            register_relay(self.registry, self.service)
            self._ops_wired = True
        health = relay_checks(self.service)
        health.add_check(
            "executor_accepting",
            lambda: (self._executor is not None, f"{self.max_workers} workers"),
        )
        self.probe = OpsProbeServer(
            registry=self.registry,
            health=health,
            host=self._requested_host,
            port=self.probe_port,
        )
        await self.probe.start_async()

    async def stop_async(self) -> None:
        if self.probe is not None:
            await self.probe.stop_async()
            self.probe = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # -- sync lifecycle (private loop on a daemon thread) -------------------------

    def start(self) -> "RelayServer":
        """Start on a private background event loop; returns when bound.

        A stopped server can be started again; it binds a fresh socket
        (and, with ``port=0``, gets a fresh ephemeral port).
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started.clear()
        self._startup_error = None
        self.host = self.port = None
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"relay-server-{self.service.network_id}",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=10.0)
            self._thread = None
            raise RuntimeError(f"relay server failed to start: {error}") from error
        if not self._started.is_set():
            raise RuntimeError("relay server did not start within 10s")
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = loop.create_future()
        self._stop_future = stop
        try:
            loop.run_until_complete(self.start_async())
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        try:
            loop.run_until_complete(stop)
            loop.run_until_complete(self.stop_async())
            # Let cancelled connection tasks unwind before closing the loop.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            loop.close()

    def stop(self) -> None:
        """Stop a :meth:`start`-ed server and join its loop thread."""
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and not loop.is_closed():
            def _finish() -> None:
                if not self._stop_future.done():
                    self._stop_future.set_result(None)

            try:
                loop.call_soon_threadsafe(_finish)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None
        self._started.clear()
        self.host = self.port = None

    def __enter__(self) -> "RelayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the serve path -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.bump("connections_accepted")
        write_lock = asyncio.Lock()
        pipeline_slots = asyncio.Semaphore(self.max_pipeline_depth)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                # Backpressure: don't even read the next frame while the
                # connection already has max_pipeline_depth in flight.
                await pipeline_slots.acquire()
                try:
                    frame = await read_frame(reader, self.max_frame_bytes)
                except DecodeError:
                    # Unframeable inbound bytes: the stream cannot be
                    # resynchronized — drop the connection. The peer sees
                    # a typed transport failure, not silent misbehavior.
                    pipeline_slots.release()
                    self.stats.bump("frames_rejected")
                    break
                if frame is None:
                    pipeline_slots.release()
                    break  # clean EOF
                task = asyncio.ensure_future(
                    self._serve_frame(frame, writer, write_lock)
                )
                tasks.add(task)

                def finished(done: asyncio.Task, slots=pipeline_slots) -> None:
                    tasks.discard(done)
                    slots.release()

                task.add_done_callback(finished)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self.stats.bump("connections_closed")

    def _log_frame(self, frame: bytes) -> None:
        """DEBUG-gated trace-correlated frame log (best-effort peek).

        The serve itself runs on an executor thread where
        ``handle_request`` activates the envelope's trace; this log runs
        on the asyncio loop *outside* that context, so the trace id is
        read straight off the envelope headers and passed explicitly.
        """
        from repro.proto.messages import RelayEnvelope

        try:
            envelope = RelayEnvelope.decode(frame)
        except Exception:  # noqa: BLE001 - undecodable frames are _dispatch's problem; the peek never rejects
            logger.debug(
                "frame received (undecodable envelope)",
                extra={"relay_id": self.service.relay_id, "bytes_in": len(frame)},
            )
            return
        logger.debug(
            "frame received",
            extra={
                "relay_id": self.service.relay_id,
                "request_id": envelope.request_id,
                "kind": envelope.kind,
                "bytes_in": len(frame),
                "trace_id": envelope.headers.get(TRACE_ID_HEADER, ""),
            },
        )

    async def _serve_frame(
        self,
        frame: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        if logger.isEnabledFor(logging.DEBUG):
            self._log_frame(frame)
        self.stats.enter_flight()
        try:
            reply = await loop.run_in_executor(
                self._executor, self.service.handle_request, frame
            )
        except RelayUnavailableError:
            # The relay models itself as down: over the wire that is a
            # dead service, so the connection dies with it.
            self.stats.bump("frames_rejected")
            writer.close()
            return
        except Exception:  # noqa: BLE001 - a serve bug must not hang peers
            self.stats.bump("frames_rejected")
            writer.close()
            return
        finally:
            self.stats.leave_flight()
        # Counted when serving completes, before the reply flushes: a
        # client that has read its reply must never observe a count that
        # hasn't included it yet.
        self.stats.bump("frames_served")
        async with write_lock:
            if writer.is_closing():
                return
            write_frame(writer, reply)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
