"""repro.net: the relay's real-network transport layer.

The paper's relays are services that untrusted parties reach *over the
wire*; this package takes the reproduction's envelope protocol onto real
sockets without touching a single protocol rule:

- :mod:`repro.net.framing` — length-prefixed envelope frames (varint
  prefix, defensive decoding, typed :class:`~repro.errors.DecodeError`
  on garbage/oversize/truncation);
- :mod:`repro.net.transport` — the pluggable :class:`RelayTransport`
  seam between discovery addresses and live endpoints, with
  :class:`LocalTransport` (the named form of the original in-process
  call) and :class:`TcpTransport` (``tcp://host:port`` dialing);
- :mod:`repro.net.client` — :class:`TcpRelayEndpoint`, a pooled,
  per-request-timeout client adapter that fails over exactly like a
  dead in-process relay (typed :class:`RelayUnavailableError`);
- :mod:`repro.net.server` — :class:`RelayServer`, an asyncio TCP
  server that serves the existing synchronous
  :class:`~repro.interop.relay.RelayService` concurrently on a
  worker-thread executor;
- :mod:`repro.net.balancer` — :class:`BalancedDiscovery` /
  :class:`EndpointPool`, client-side load balancing over redundant
  relay replicas (power-of-two-choices for reads, consistent-hash
  stickiness for side effects) with ``/readyz``-driven
  :class:`ReadinessMonitor` eviction.

Trust boundary: the socket is the *untrusted edge*. Everything a
malicious peer can do to a frame — drop, delay, duplicate, corrupt — is
below the protocol's protection boundary; proofs verify end to end, so
transported data is exactly as trustworthy as in-process data.
"""

from repro.net.balancer import (
    BalancedDiscovery,
    EndpointPool,
    ReadinessMonitor,
    endpoint_key,
)
from repro.net.client import TcpRelayEndpoint
from repro.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.net.server import RelayServer, RelayServerStats
from repro.net.transport import (
    LocalTransport,
    RelayTransport,
    TcpTransport,
    address_scheme,
    parse_tcp_address,
)

__all__ = [
    "BalancedDiscovery",
    "DEFAULT_MAX_FRAME_BYTES",
    "EndpointPool",
    "FrameDecoder",
    "LocalTransport",
    "ReadinessMonitor",
    "endpoint_key",
    "RelayServer",
    "RelayServerStats",
    "RelayTransport",
    "TcpRelayEndpoint",
    "TcpTransport",
    "address_scheme",
    "encode_frame",
    "parse_tcp_address",
    "read_frame",
    "write_frame",
]
