"""Client-side load balancing over redundant relay endpoints.

The paper's DoS mitigation (§5) is *redundant relays per network*; a
discovery lookup returns all of them and the failover loop in
:meth:`RelayService._exchange` walks the list in order. That is
availability, not scale: the first healthy endpoint serves every request
until it dies. This module turns the raw lookup result into a managed
:class:`EndpointPool` per destination network with two balancing
strategies chosen per request:

- **Read-only envelopes** (queries, batches, subscribe handshakes)
  spread by *power-of-two-choices* on in-flight count: pick two replicas
  at random, prefer the less loaded. P2C gets within a constant factor
  of least-loaded routing while sampling only two counters — no global
  scan, no herd behaviour when counters are stale.
- **Side-effecting envelopes** (transactions, asset commands) route by
  *consistent hashing* on the envelope ``request_id``, so a duplicate or
  replayed request lands on the same replica that holds its
  exactly-once idempotency record. The relay's idempotency record is
  per-process (until a shared :mod:`repro.store` deployment makes
  placement irrelevant); stickiness is what keeps exactly-once true
  across a fleet. The ring uses a keyed BLAKE2 hash — Python's builtin
  ``hash`` is salted per process, which would break stickiness across
  restarts and between cooperating clients.

Health: a :class:`ReadinessMonitor` polls each replica's ``/readyz``
probe (:mod:`repro.ops.probe`) in the background and temporarily
*evicts* not-ready endpoints from rotation, restoring them when the
probe recovers. Eviction only narrows the candidate ordering — evicted
endpoints move to the tail rather than vanishing, and the existing
failover loop still walks the full list, so the race where a replica
dies mid-request (or every replica is evicted at once) degrades to
exactly the pre-fleet behaviour instead of an outage.

:class:`BalancedDiscovery` wraps any
:class:`~repro.interop.discovery.DiscoveryService` and is a drop-in for
the relay's ``discovery=`` argument: ``lookup`` keeps its contract, and
the relay's ``_exchange`` passes request context through the optional
``lookup_for`` extension so ordering can be request-aware.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import threading
import urllib.error
import urllib.request
from typing import Callable, Mapping

from repro.interop.discovery import DiscoveryService, RelayEndpoint

__all__ = [
    "BalancedDiscovery",
    "EndpointPool",
    "ReadinessMonitor",
    "endpoint_key",
]

#: Virtual nodes per member on the consistent-hash ring. 64 vnodes keeps
#: the load split within a few percent of even for small fleets while the
#: ring stays tiny (8 replicas -> 512 entries).
DEFAULT_VNODES = 64


def endpoint_key(endpoint: RelayEndpoint) -> str:
    """A stable identity for an endpoint across lookups.

    Prefers the transport address (stable across re-dials), then a relay
    id (in-process endpoints), then object identity as a last resort.
    """
    address = getattr(endpoint, "address", None)
    if isinstance(address, str) and address:
        return address
    relay_id = getattr(endpoint, "relay_id", None)
    if isinstance(relay_id, str) and relay_id:
        return relay_id
    return f"endpoint-{id(endpoint):x}"


def _ring_hash(value: str) -> int:
    """64-bit stable hash (builtin ``hash`` is salted per process)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _Member:
    """One replica's pool-side bookkeeping."""

    __slots__ = ("key", "endpoint", "in_flight", "evicted", "requests", "failures")

    def __init__(self, key: str, endpoint: RelayEndpoint) -> None:
        self.key = key
        self.endpoint = endpoint
        self.in_flight = 0
        self.evicted = False
        self.requests = 0
        self.failures = 0


class _BalancedEndpoint:
    """Wraps a pool member so in-flight accounting rides every request.

    The pool lock is taken only to bump counters — never across the
    delegated ``handle_request`` (which does socket I/O).
    """

    __slots__ = ("_pool", "_member")

    def __init__(self, pool: "EndpointPool", member: _Member) -> None:
        self._pool = pool
        self._member = member

    @property
    def key(self) -> str:
        return self._member.key

    @property
    def address(self) -> str:
        return self._member.key

    @property
    def evicted(self) -> bool:
        return self._member.evicted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BalancedEndpoint({self._member.key})"

    def handle_request(self, data: bytes) -> bytes:
        self._pool._enter(self._member)
        try:
            reply = self._member.endpoint.handle_request(data)
        except BaseException:
            self._pool._exit(self._member, failed=True)
            raise
        self._pool._exit(self._member, failed=False)
        return reply


class EndpointPool:
    """The managed replica set for one destination network.

    Membership follows discovery (:meth:`update` reconciles against the
    latest lookup, preserving in-flight/eviction state for endpoints
    that persist), :meth:`candidates` produces the per-request failover
    ordering, and :meth:`evict`/:meth:`restore` move members out of and
    back into rotation without ever dropping them from the candidate
    tail. Thread-safe; ``rng`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        network_id: str,
        rng: random.Random | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.network_id = network_id
        self._lock = threading.Lock()
        self._rng = rng if rng is not None else random.Random()
        self._vnodes = vnodes
        self._members: dict[str, _Member] = {}
        #: Sorted ``(hash, member_key)`` pairs — the consistent-hash ring.
        self._ring: list[tuple[int, str]] = []
        #: Monotonic counters (exported via :meth:`snapshot`).
        self.p2c_decisions = 0
        self.sticky_decisions = 0
        self.evictions = 0
        self.restores = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    # -- membership ---------------------------------------------------------------

    def update(self, endpoints: "list[RelayEndpoint]") -> None:
        """Reconcile membership against the latest discovery result."""
        with self._lock:
            seen: dict[str, _Member] = {}
            for endpoint in endpoints:
                key = endpoint_key(endpoint)
                member = self._members.get(key)
                if member is None:
                    member = _Member(key, endpoint)
                else:
                    # Same identity, possibly a re-dialed endpoint object
                    # (e.g. TcpTransport evicted a closed one).
                    member.endpoint = endpoint
                seen[key] = member
            changed = seen.keys() != self._members.keys()
            self._members = seen
            if changed:
                self._ring = self._build_ring(seen.keys())

    def _build_ring(self, keys) -> list[tuple[int, str]]:
        ring: list[tuple[int, str]] = []
        for key in keys:
            for replica in range(self._vnodes):
                ring.append((_ring_hash(f"{key}#{replica}"), key))
        ring.sort()
        return ring

    def member_keys(self) -> list[str]:
        with self._lock:
            return list(self._members)

    def members(self) -> "list[tuple[str, RelayEndpoint, bool]]":
        """Snapshot of ``(key, endpoint, evicted)`` per member."""
        with self._lock:
            return [(m.key, m.endpoint, m.evicted) for m in self._members.values()]

    # -- health -------------------------------------------------------------------

    def evict(self, key: str) -> bool:
        """Move a member out of rotation (it stays a last-resort tail
        candidate). Returns whether the state changed."""
        with self._lock:
            member = self._members.get(key)
            if member is None or member.evicted:
                return False
            member.evicted = True
            self.evictions += 1
            return True

    def restore(self, key: str) -> bool:
        """Return an evicted member to rotation."""
        with self._lock:
            member = self._members.get(key)
            if member is None or not member.evicted:
                return False
            member.evicted = False
            self.restores += 1
            return True

    # -- balancing ----------------------------------------------------------------

    def candidates(
        self, request_id: str = "", side_effecting: bool = False
    ) -> "list[RelayEndpoint]":
        """The failover-ordered endpoint list for one request.

        Healthy members come first — power-of-two-choices order for
        read-only traffic, ring-walk order from ``request_id`` for
        side-effecting traffic — and evicted members are appended at the
        tail (least loaded first) so a fully-evicted pool still serves
        rather than failing closed: the probe can be wrong, the failover
        loop is the final arbiter.
        """
        with self._lock:
            if not self._members:
                return []
            if side_effecting and request_id:
                ordered = self._sticky_order_locked(request_id)
                self.sticky_decisions += 1
            else:
                ordered = self._p2c_order_locked()
                self.p2c_decisions += 1
            healthy = [m for m in ordered if not m.evicted]
            benched = sorted(
                (m for m in ordered if m.evicted), key=lambda m: m.in_flight
            )
            return [_BalancedEndpoint(self, m) for m in (*healthy, *benched)]

    def _p2c_order_locked(self) -> "list[_Member]":
        members = list(self._members.values())
        if len(members) <= 1:
            return members
        first, second = self._rng.sample(members, 2)
        if second.in_flight < first.in_flight:
            first, second = second, first
        rest = sorted(
            (m for m in members if m is not first and m is not second),
            key=lambda m: m.in_flight,
        )
        return [first, second, *rest]

    def _sticky_order_locked(self, request_id: str) -> "list[_Member]":
        ring = self._ring
        if not ring:
            return list(self._members.values())
        start = bisect.bisect_right(ring, (_ring_hash(request_id), ""))
        ordered: list[_Member] = []
        seen: set[str] = set()
        for offset in range(len(ring)):
            _, key = ring[(start + offset) % len(ring)]
            if key in seen:
                continue
            seen.add(key)
            member = self._members.get(key)
            if member is not None:
                ordered.append(member)
            if len(ordered) == len(self._members):
                break
        return ordered

    # -- accounting (called by _BalancedEndpoint) ---------------------------------

    def _enter(self, member: _Member) -> None:
        with self._lock:
            member.in_flight += 1
            member.requests += 1

    def _exit(self, member: _Member, failed: bool) -> None:
        with self._lock:
            member.in_flight = max(0, member.in_flight - 1)
            if failed:
                member.failures += 1

    # -- observability ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Atomic copy of pool state for metrics exporters."""
        with self._lock:
            return {
                "network": self.network_id,
                "p2c_decisions": self.p2c_decisions,
                "sticky_decisions": self.sticky_decisions,
                "evictions": self.evictions,
                "restores": self.restores,
                "members": {
                    m.key: {
                        "in_flight": m.in_flight,
                        "evicted": m.evicted,
                        "requests": m.requests,
                        "failures": m.failures,
                    }
                    for m in self._members.values()
                },
            }


class BalancedDiscovery(DiscoveryService):
    """Wraps a discovery service with per-network managed endpoint pools.

    A drop-in for :class:`RelayService`'s ``discovery=``: plain
    ``lookup`` still returns a failover-ordered endpoint list (now
    p2c-ordered and health-aware), and the relay's ``_exchange`` feeds
    request context through :meth:`lookup_for` so side-effecting
    envelopes get consistent-hash stickiness.
    """

    def __init__(
        self, inner: DiscoveryService, rng: random.Random | None = None
    ) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self._rng = rng if rng is not None else random.Random()
        self._pools: dict[str, EndpointPool] = {}
        self._monitors: list[ReadinessMonitor] = []

    @property
    def inner(self) -> DiscoveryService:
        return self._inner

    def pool(self, network_id: str) -> EndpointPool:
        """The (lazily created) pool for ``network_id``."""
        with self._lock:
            pool = self._pools.get(network_id)
            if pool is None:
                # Derive a per-pool rng so injected seeds stay deterministic.
                pool = EndpointPool(
                    network_id, rng=random.Random(self._rng.getrandbits(64))
                )
                self._pools[network_id] = pool
            return pool

    def pools(self) -> "list[dict]":
        """Snapshots of every pool (for metrics exporters)."""
        with self._lock:
            pools = list(self._pools.values())
        return [pool.snapshot() for pool in pools]

    def counters(self) -> dict[str, int]:
        """Pass through the inner service's counters (if it keeps any)."""
        inner_counters = getattr(self._inner, "counters", None)
        if callable(inner_counters):
            return dict(inner_counters())
        return {}

    def lookup(self, network_id: str) -> "list[RelayEndpoint]":
        return self.lookup_for(network_id)

    def lookup_for(
        self,
        network_id: str,
        request_id: str = "",
        side_effecting: bool = False,
    ) -> "list[RelayEndpoint]":
        """Request-aware lookup: refresh the pool from the inner service,
        then order candidates for this specific request."""
        endpoints = self._inner.lookup(network_id)  # may raise DiscoveryError
        pool = self.pool(network_id)
        pool.update(endpoints)
        candidates = pool.candidates(
            request_id=request_id, side_effecting=side_effecting
        )
        # An inner lookup that raced membership away entirely falls back
        # to the raw result — never return fewer endpoints than inner did.
        return candidates if candidates else endpoints

    def monitor(
        self,
        network_id: str,
        probe_urls: "Mapping[str, str] | None" = None,
        check: "Callable[[str, RelayEndpoint], bool | None] | None" = None,
        interval: float = 1.0,
        timeout: float = 2.0,
    ) -> "ReadinessMonitor":
        """Start (and track) a background readiness monitor for one pool."""
        monitor = ReadinessMonitor(
            self.pool(network_id),
            probe_urls=probe_urls,
            check=check,
            interval=interval,
            timeout=timeout,
        )
        with self._lock:
            self._monitors.append(monitor)
        monitor.start()
        return monitor

    def close(self) -> None:
        """Stop all background monitors."""
        with self._lock:
            monitors, self._monitors = list(self._monitors), []
        for monitor in monitors:
            monitor.stop()


class ReadinessMonitor:
    """Polls replica ``/readyz`` probes and drives pool evict/restore.

    ``probe_urls`` maps member keys (usually ``tcp://host:port``
    addresses) to the *ops probe* base URL of that replica (the
    :class:`~repro.ops.probe.OpsProbeServer` ``url``). Members with no
    known probe are never evicted — no signal is not a death sentence.
    A custom ``check(key, endpoint) -> bool | None`` replaces the HTTP
    probe entirely (``None`` meaning "no signal").

    ``poll_once`` is public so tests (and cron-style callers) can drive
    the lifecycle deterministically without the background thread.
    """

    def __init__(
        self,
        pool: EndpointPool,
        probe_urls: "Mapping[str, str] | None" = None,
        check: "Callable[[str, RelayEndpoint], bool | None] | None" = None,
        interval: float = 1.0,
        timeout: float = 2.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.pool = pool
        self._probe_urls = dict(probe_urls) if probe_urls else {}
        self._check = check
        self._interval = interval
        self._timeout = timeout
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def set_probe_url(self, key: str, url: str) -> None:
        self._probe_urls[key] = url

    def _probe_ready(self, url: str) -> bool:
        try:
            with urllib.request.urlopen(
                url.rstrip("/") + "/readyz", timeout=self._timeout
            ) as response:
                return 200 <= response.status < 300
        except OSError:
            # HTTPError (503 not-ready) and URLError (unreachable) are
            # both OSErrors: either way the replica gets no traffic.
            return False

    def poll_once(self) -> dict[str, bool]:
        """One readiness sweep; returns the per-member verdicts."""
        verdicts: dict[str, bool] = {}
        for key, endpoint, _evicted in self.pool.members():
            ready: bool | None = None
            if self._check is not None:
                try:
                    ready = self._check(key, endpoint)
                except Exception:  # noqa: BLE001 - a crashing readiness check means not-ready, never a dead monitor thread
                    ready = False
            else:
                url = self._probe_urls.get(key)
                if url is not None:
                    ready = self._probe_ready(url)
            if ready is None:
                continue  # no signal for this member — leave it alone
            verdicts[key] = ready
            if ready:
                self.pool.restore(key)
            else:
                self.pool.evict(key)
        return verdicts

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.poll_once()

    def start(self) -> "ReadinessMonitor":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run,
                name=f"readiness-{self.pool.network_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ReadinessMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
