"""The socket-side client adapter: a RelayEndpoint over TCP frames.

:class:`TcpRelayEndpoint` makes a remote
:class:`~repro.net.server.RelayServer` look exactly like the in-process
endpoints the relay machinery already speaks to: one blocking
``handle_request(bytes) -> bytes`` call. Underneath, each request is one
length-prefixed frame on a pooled TCP connection, with one request in
flight per connection (so replies need no transport-level correlation —
envelope ``request_id`` correlation still applies end to end).

Failure translation is the whole point of the adapter: connect failures,
resets, timeouts, mid-frame EOFs, and un-frameable replies all surface as
the typed :class:`~repro.errors.RelayUnavailableError` the failover loop
in :meth:`RelayService._exchange` already treats as "advance to the next
redundant relay". The transport can fail, but it fails exactly like a
dead in-process relay — no caller changes.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque

from repro.errors import DecodeError, RelayUnavailableError
from repro.net.framing import DEFAULT_MAX_FRAME_BYTES, FrameDecoder, encode_frame


class _PooledConnection:
    """One dialed socket, strictly one request in flight at a time."""

    def __init__(self, sock: socket.socket, max_frame_bytes: int) -> None:
        self.sock = sock
        self.decoder = FrameDecoder(max_frame_bytes)
        #: Whether the current/last round-trip saw any reply bytes —
        #: the structural input to the caller's stale-pool retry decision.
        self.got_reply_bytes = False

    def round_trip(self, data: bytes, deadline: float) -> bytes:
        # The caller threads ONE monotonic deadline through dial, send,
        # and every receive: each socket operation gets only the
        # remaining budget, so neither a server dribbling one byte per
        # almost-timeout nor a dial-then-retry sequence can stack fresh
        # full timeouts on top of each other.
        self.got_reply_bytes = False
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise socket.timeout("request deadline exhausted before send")
        self.sock.settimeout(remaining)
        self.sock.sendall(encode_frame(data))
        while True:
            frame = self.decoder.next_frame()
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout(
                    "no complete reply frame within the request deadline"
                )
            self.sock.settimeout(remaining)
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionResetError("server closed the connection")
            self.got_reply_bytes = True
            self.decoder.feed(chunk)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class TcpRelayEndpoint:
    """A remote relay reached over TCP, presented as a local endpoint.

    Connections are pooled: a request borrows an idle connection (dialing
    a fresh one when none is idle), and returns it on success. Up to
    ``max_pool_size`` idle connections are kept warm; a connection that
    saw any failure is discarded, never reused — stream framing cannot be
    resynchronized after an error. Thread-safe: concurrent callers each
    borrow their own connection, which is how a destination relay issues
    parallel queries (batch fan-out, exchange legs) over one endpoint.

    ``timeout`` bounds each request round-trip (connect + send + reply).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        max_pool_size: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_pool_size < 1:
            raise ValueError("max_pool_size must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_pool_size = max_pool_size
        self.max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._idle: deque[_PooledConnection] = deque()
        self._closed = False
        #: Operational counters (reads are advisory).
        self.requests_sent = 0
        self.connections_dialed = 0
        self.transport_failures = 0

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (a closed endpoint fails
        every request; transports use this to evict-and-redial)."""
        with self._lock:
            return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TcpRelayEndpoint({self.address})"

    # -- the RelayEndpoint surface ------------------------------------------------

    def handle_request(self, data: bytes) -> bytes:
        """One framed round-trip; raises :class:`RelayUnavailableError`
        on any transport-level failure so the failover loop engages.

        An idle pooled connection may have been closed server-side while
        it sat in the pool (server restart, OS idle reaping); when one
        fails *before any reply byte arrived*, the request is retried
        once on a freshly dialed connection instead of bubbling a
        spurious failure out of a healthy deployment.

        One monotonic deadline (``now + timeout``) covers the whole call
        — dial, round-trip, and any stale-pool retry all draw from the
        same budget, so the worst case is ~``timeout``, never a multiple
        of it.
        """
        if self._closed:
            raise RelayUnavailableError(
                f"endpoint for {self.address} has been closed"
            )
        deadline = time.monotonic() + self.timeout
        connection, from_pool = self._borrow(deadline)
        try:
            reply = connection.round_trip(data, deadline)
        except DecodeError as exc:
            # The server sent bytes that do not frame (or exceed the
            # frame bound): the stream is poisoned. Typed and retryable.
            self._discard(connection)
            raise RelayUnavailableError(
                f"relay at {self.address} sent an undecodable frame: {exc}"
            ) from exc
        except (OSError, ConnectionError) as exc:
            self._discard(connection)
            stale = (
                from_pool
                and isinstance(exc, ConnectionError)
                and not connection.got_reply_bytes
            )
            if not stale:
                raise RelayUnavailableError(
                    f"relay at {self.address} is unreachable: {exc}"
                ) from exc
            connection = self._dial(deadline)  # raises typed on dial failure
            try:
                reply = connection.round_trip(data, deadline)
            except DecodeError as retry_exc:
                self._discard(connection)
                raise RelayUnavailableError(
                    f"relay at {self.address} sent an undecodable frame: "
                    f"{retry_exc}"
                ) from retry_exc
            except (OSError, ConnectionError) as retry_exc:
                self._discard(connection)
                raise RelayUnavailableError(
                    f"relay at {self.address} is unreachable: {retry_exc}"
                ) from retry_exc
        with self._lock:
            self.requests_sent += 1
        if connection.decoder.buffered or connection.decoder.next_frame() is not None:
            # A conforming server answers one frame per request; surplus
            # bytes mean the stream is out of step — never reuse it.
            self._discard(connection)
        else:
            self._give_back(connection)
        return reply

    # -- pool management ----------------------------------------------------------

    def _borrow(self, deadline: float | None = None) -> tuple[_PooledConnection, bool]:
        """An idle connection (``True``) or a fresh dial (``False``)."""
        with self._lock:
            if self._idle:
                return self._idle.popleft(), True
        return self._dial(deadline), False

    def _dial(self, deadline: float | None = None) -> _PooledConnection:
        connect_timeout = self.timeout
        if deadline is not None:
            connect_timeout = deadline - time.monotonic()
            if connect_timeout <= 0:
                with self._lock:
                    self.transport_failures += 1
                raise RelayUnavailableError(
                    f"cannot connect to relay at {self.address}: "
                    "request deadline exhausted"
                )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=connect_timeout
            )
        except OSError as exc:
            with self._lock:
                self.transport_failures += 1
            raise RelayUnavailableError(
                f"cannot connect to relay at {self.address}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self.connections_dialed += 1
        return _PooledConnection(sock, self.max_frame_bytes)

    def _give_back(self, connection: _PooledConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.max_pool_size:
                self._idle.append(connection)
                return
        connection.close()

    def _discard(self, connection: _PooledConnection) -> None:
        with self._lock:
            self.transport_failures += 1
        connection.close()

    def close(self) -> None:
        """Close all idle pooled connections; in-flight ones finish solo."""
        with self._lock:
            self._closed = True
            idle, self._idle = list(self._idle), deque()
        for connection in idle:
            connection.close()
