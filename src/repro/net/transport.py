"""The pluggable transport seam between discovery and live relays.

The paper's relay is a *network service*: a discovery lookup yields
addresses, and something must turn an address into a live
:class:`~repro.interop.discovery.RelayEndpoint`. That something is a
:class:`RelayTransport` — the explicit, pluggable boundary this module
names. Two implementations ship:

- :class:`LocalTransport` — the original in-process call: an explicit
  ``address -> endpoint`` table, zero copies, zero sockets. This is what
  :class:`~repro.interop.discovery.AddressResolver` has always been; it
  now has a name and sits behind the same seam as real transports.
- :class:`TcpTransport` — dials ``tcp://host:port`` addresses and hands
  back pooled :class:`~repro.net.client.TcpRelayEndpoint` adapters that
  speak length-prefixed envelope frames to a
  :class:`~repro.net.server.RelayServer`.

The seam is *below* the trust boundary: a transport moves opaque
serialized envelopes, and nothing about the protocol's guarantees —
proof verification, nonce binding, replay protection — depends on which
transport carried the bytes. Swapping ``relay://`` for ``tcp://`` in a
registry file is a deployment decision, not a protocol change.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import DiscoveryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.interop.discovery import RelayEndpoint


def address_scheme(address: str) -> str:
    """The ``scheme`` of ``scheme://rest`` (empty when there is none)."""
    scheme, separator, _ = address.partition("://")
    return scheme if separator else ""


def parse_tcp_address(address: str) -> tuple[str, int]:
    """Split ``tcp://host:port`` into ``(host, port)``.

    Raises :class:`DiscoveryError` on anything malformed — a registry
    file is operator-edited configuration, so bad entries must fail with
    a message naming the offending address.
    """
    scheme, separator, rest = address.partition("://")
    if not separator or scheme != "tcp":
        raise DiscoveryError(f"address {address!r} is not a tcp:// address")
    host, colon, port_text = rest.rpartition(":")
    if not colon or not host:
        raise DiscoveryError(
            f"tcp address {address!r} must look like tcp://host:port"
        )
    # Bracketed IPv6 literals: tcp://[::1]:9000.
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError as exc:
        raise DiscoveryError(
            f"tcp address {address!r} has a non-numeric port"
        ) from exc
    if not (0 < port < 65536):
        raise DiscoveryError(f"tcp address {address!r} has an invalid port")
    return host, port


class RelayTransport(ABC):
    """One way of turning relay addresses into live endpoints.

    Implementations declare which URI ``schemes`` they serve and produce
    a :class:`RelayEndpoint` per address. ``connect`` may be called from
    any thread and must be idempotent-cheap: resolvers call it on every
    lookup, so connection state (pools, dialed sockets) belongs inside
    the returned endpoint, cached per address.
    """

    #: URI schemes this transport serves (e.g. ``("tcp",)``).
    schemes: tuple[str, ...] = ()

    @abstractmethod
    def connect(self, address: str) -> "RelayEndpoint":
        """A live endpoint for ``address``; raises :class:`DiscoveryError`
        when the address is malformed or unknown."""

    def close(self) -> None:
        """Release any transport-held connection state (optional)."""


class LocalTransport(RelayTransport):
    """The in-process transport: an explicit address -> endpoint table.

    This is the simulation's original "transport" — a direct Python call
    on the destination relay object — now named and mounted behind the
    :class:`RelayTransport` seam. Useful schemes are ``relay://`` and
    ``local://``, but any address explicitly bound resolves regardless of
    scheme, matching the historical :class:`AddressResolver` contract.
    """

    schemes = ("relay", "local")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._endpoints: dict[str, "RelayEndpoint"] = {}

    def bind(self, address: str, endpoint: "RelayEndpoint") -> None:
        """Map ``address`` to a live endpoint (rebinding replaces)."""
        with self._lock:
            self._endpoints[address] = endpoint

    def unbind(self, address: str) -> None:
        with self._lock:
            self._endpoints.pop(address, None)

    def known(self, address: str) -> bool:
        with self._lock:
            return address in self._endpoints

    def connect(self, address: str) -> "RelayEndpoint":
        with self._lock:
            endpoint = self._endpoints.get(address)
        if endpoint is None:
            raise DiscoveryError(f"relay address {address!r} does not resolve")
        return endpoint


class TcpTransport(RelayTransport):
    """Dials ``tcp://host:port`` relays; endpoints are cached per address.

    Endpoint options (``timeout``, ``max_pool_size``, ``max_frame_bytes``)
    are fixed per transport instance and shared by every endpoint it
    hands out; deployments needing per-relay tuning mount several
    transports on distinct resolvers.
    """

    schemes = ("tcp",)

    def __init__(
        self,
        timeout: float = 10.0,
        max_pool_size: int = 8,
        max_frame_bytes: int | None = None,
    ) -> None:
        from repro.net.framing import DEFAULT_MAX_FRAME_BYTES

        self._timeout = timeout
        self._max_pool_size = max_pool_size
        self._max_frame_bytes = (
            max_frame_bytes if max_frame_bytes is not None else DEFAULT_MAX_FRAME_BYTES
        )
        self._lock = threading.RLock()
        self._endpoints: dict[str, "RelayEndpoint"] = {}

    def connect(self, address: str) -> "RelayEndpoint":
        host, port = parse_tcp_address(address)
        with self._lock:
            endpoint = self._endpoints.get(address)
            if endpoint is not None and getattr(endpoint, "closed", False):
                # A close()d endpoint fails every request forever; caching
                # it would make the address permanently unreachable even
                # though the relay behind it may be perfectly healthy.
                # Evict and redial.
                self._endpoints.pop(address, None)
                endpoint = None
            if endpoint is None:
                from repro.net.client import TcpRelayEndpoint

                endpoint = TcpRelayEndpoint(
                    host,
                    port,
                    timeout=self._timeout,
                    max_pool_size=self._max_pool_size,
                    max_frame_bytes=self._max_frame_bytes,
                )
                self._endpoints[address] = endpoint
        return endpoint

    def close(self) -> None:
        with self._lock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
        for endpoint in endpoints:
            close = getattr(endpoint, "close", None)
            if close is not None:
                close()
