"""Length-prefixed envelope framing for stream transports.

A TCP stream has no message boundaries, so serialized
:class:`~repro.proto.messages.RelayEnvelope` bytes travel as *frames*:
a varint length prefix (the same encoding :mod:`repro.wire` uses inside
messages) followed by exactly that many payload bytes. The framing layer
sits *below* the protocol's protection boundary — a frame is opaque
ciphertext-or-not bytes; integrity comes from the proofs inside, never
from the transport.

Decoding is defensive, because the peer is untrusted:

- a declared length above ``max_frame_bytes`` is rejected *before* any
  payload is read (an attacker cannot make the server buffer gigabytes);
- a prefix that cannot be a varint (more than 10 continuation bytes) is
  rejected as garbage immediately;
- a truncated frame is never silently delivered: either the decoder
  waits for more bytes (streaming) or :meth:`FrameDecoder.finish` /
  :func:`read_frame` raise a typed :class:`~repro.errors.DecodeError`.

All rejections are typed :class:`DecodeError`\\ s — a malformed stream can
fail, but it can never hang a reader or smuggle a mis-framed message.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import DecodeError
from repro.wire.varint import MAX_VARINT_LEN, decode_varint, encode_varint

#: Default upper bound on one frame's payload. Generous for envelopes
#: (a batch of large confidential results stays well under it) while
#: bounding what one malicious peer can make a server buffer.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """One wire frame: ``varint(len(payload)) || payload``."""
    return encode_varint(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; completed frames queue up and
    pop via :meth:`next_frame` (or iterate :meth:`frames`). The decoder
    never blocks and never buffers beyond one frame plus the inbound
    chunk: a hostile prefix fails fast, an incomplete frame simply waits.

    Call :meth:`finish` at end-of-stream: leftover bytes mean the peer
    died (or lied) mid-frame, which is a :class:`DecodeError`, not data.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be >= 1")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._frames: deque[bytes] = deque()
        self.frames_decoded = 0

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a frame to complete."""
        return len(self._buffer)

    def feed(self, data: bytes) -> int:
        """Absorb ``data``; returns how many new frames completed.

        Raises :class:`DecodeError` on an impossible prefix or an
        oversized declared length (the stream is then poisoned — discard
        the connection, there is no way to resynchronize).
        """
        self._buffer.extend(data)
        completed = 0
        while True:
            frame = self._try_decode()
            if frame is None:
                return completed
            self._frames.append(frame)
            self.frames_decoded += 1
            completed += 1

    def _try_decode(self) -> bytes | None:
        if not self._buffer:
            return None
        # Find the varint terminator (first byte without the continuation
        # bit) structurally, so "honest partial prefix" vs "garbage" never
        # depends on another module's exception wording.
        prefix_length = None
        for position in range(min(len(self._buffer), MAX_VARINT_LEN)):
            if not self._buffer[position] & 0x80:
                prefix_length = position + 1
                break
        if prefix_length is None:
            if len(self._buffer) < MAX_VARINT_LEN:
                return None  # an honest partial prefix: wait for more bytes
            raise DecodeError("garbage frame prefix: varint longer than 10 bytes")
        try:
            length, offset = decode_varint(bytes(self._buffer[:prefix_length]))
        except DecodeError as exc:  # e.g. a length overflowing 64 bits
            raise DecodeError(f"garbage frame prefix: {exc}") from exc
        if length > self.max_frame_bytes:
            raise DecodeError(
                f"declared frame length {length} exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        if len(self._buffer) - offset < length:
            return None  # prefix complete, payload still in flight
        payload = bytes(self._buffer[offset : offset + length])
        del self._buffer[: offset + length]
        return payload

    def next_frame(self) -> bytes | None:
        """Pop the oldest completed frame (``None`` when none is ready)."""
        if self._frames:
            return self._frames.popleft()
        return None

    def frames(self):
        """Drain all completed frames."""
        while self._frames:
            yield self._frames.popleft()

    def finish(self) -> None:
        """Assert a clean end-of-stream (no bytes stuck mid-frame)."""
        if self._buffer:
            raise DecodeError(
                f"stream ended mid-frame with {len(self._buffer)} undelivered "
                f"byte(s)"
            )


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean end-of-stream at a frame boundary; raises
    :class:`DecodeError` for a garbage/oversized prefix or a connection
    that dies mid-frame. The declared length is validated *before* the
    payload is read.
    """
    prefix = bytearray()
    while True:
        byte = await reader.read(1)
        if not byte:
            if not prefix:
                return None  # clean EOF between frames
            raise DecodeError("stream ended inside a frame length prefix")
        prefix += byte
        if not byte[0] & 0x80:
            break
        if len(prefix) >= MAX_VARINT_LEN:
            raise DecodeError("garbage frame prefix: varint longer than 10 bytes")
    length, _ = decode_varint(bytes(prefix))
    if length > max_frame_bytes:
        raise DecodeError(
            f"declared frame length {length} exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise DecodeError(
            f"stream ended mid-frame: got {len(exc.partial)} of {length} "
            f"payload byte(s)"
        ) from exc


def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one frame on an asyncio stream (call ``await writer.drain()``)."""
    writer.write(encode_frame(payload))
