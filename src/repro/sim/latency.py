"""Latency modeling for protocol-step accounting.

The in-process simulator executes the whole protocol in microseconds; to
report *shaped* per-step latencies (relay hops dominated by WAN RTT, peer
queries by chaincode execution, commits by ordering), experiments attach a
:class:`LatencyModel` to a :class:`~repro.utils.clock.SimulatedClock` and
charge each protocol step its modeled cost.

Defaults approximate a two-datacenter deployment (same order of magnitude
as the paper's Kubernetes PoC): WAN hops in the tens of milliseconds,
intra-network operations in the low milliseconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.utils.clock import SimulatedClock


@dataclass(frozen=True)
class LatencyProfile:
    """Mean latencies (seconds) for each protocol step category."""

    wan_hop: float = 0.040  # relay <-> relay across networks
    lan_hop: float = 0.002  # app <-> relay, relay <-> peer
    chaincode_exec: float = 0.005
    crypto_op: float = 0.003  # sign/encrypt/decrypt on commodity hardware
    ordering: float = 0.150  # batching + consensus delay
    jitter: float = 0.2  # relative std-dev applied to every sample

    @classmethod
    def colocated(cls) -> "LatencyProfile":
        """Both networks in one datacenter (the paper's k8s PoC shape)."""
        return cls(wan_hop=0.004, lan_hop=0.001, chaincode_exec=0.004, ordering=0.100)

    @classmethod
    def intercontinental(cls) -> "LatencyProfile":
        """Networks on different continents."""
        return cls(wan_hop=0.140, lan_hop=0.002, chaincode_exec=0.005, ordering=0.200)


@dataclass
class LatencyModel:
    """Samples per-step latencies and charges them to a simulated clock."""

    clock: SimulatedClock
    profile: LatencyProfile = field(default_factory=LatencyProfile)
    seed: int = 42

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def _sample(self, mean: float) -> float:
        if mean <= 0:
            return 0.0
        jitter = self.profile.jitter
        value = self._rng.gauss(mean, mean * jitter)
        return max(mean * 0.1, value)

    def charge(self, category: str, count: int = 1) -> float:
        """Advance the clock by a sampled duration; returns seconds charged."""
        mean = {
            "wan_hop": self.profile.wan_hop,
            "lan_hop": self.profile.lan_hop,
            "chaincode_exec": self.profile.chaincode_exec,
            "crypto_op": self.profile.crypto_op,
            "ordering": self.profile.ordering,
        }.get(category)
        if mean is None:
            raise KeyError(f"unknown latency category {category!r}")
        total = sum(self._sample(mean) for _ in range(count))
        self.clock.sleep(total)
        return total
