"""SLOC accounting for the §5 "ease of use and adaptation" experiment.

The paper measures adaptation cost as added source lines of code:
~35 SLOC in the source network's chaincode, ~20 SLOC in the destination
chaincode, ~80 SLOC in the destination application. This repo marks every
interop-added region with ``# [interop-begin]`` / ``# [interop-end]``
comments, so the measurement is reproducible from the actual code.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

_BEGIN = "[interop-begin]"
_END = "[interop-end]"


def count_sloc(source: str) -> int:
    """Count non-blank, non-comment source lines."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def interop_regions(source: str) -> list[str]:
    """Extract the text of every ``[interop-begin] .. [interop-end]`` region."""
    regions: list[str] = []
    current: list[str] | None = None
    for line in source.splitlines():
        if _BEGIN in line:
            if current is not None:
                raise ValueError("nested [interop-begin] markers")
            current = []
            continue
        if _END in line:
            if current is None:
                raise ValueError("[interop-end] without matching begin")
            regions.append("\n".join(current))
            current = None
            continue
        if current is not None:
            current.append(line)
    if current is not None:
        raise ValueError("unterminated [interop-begin] region")
    return regions


def interop_sloc_of(obj: Any) -> int:
    """Total interop-added SLOC across the marked regions of ``obj``'s source."""
    source = inspect.getsource(obj)
    return sum(count_sloc(region) for region in interop_regions(source))


@dataclass(frozen=True)
class AdaptationReport:
    """Measured vs paper-reported adaptation SLOC."""

    source_chaincode_sloc: int
    destination_chaincode_sloc: int
    destination_app_sloc: int

    PAPER_SOURCE_CHAINCODE: int = 35
    PAPER_DESTINATION_CHAINCODE: int = 20
    PAPER_DESTINATION_APP: int = 80

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                "source chaincode (STL, GetBillOfLading)",
                f"~{self.PAPER_SOURCE_CHAINCODE}",
                str(self.source_chaincode_sloc),
            ),
            (
                "destination chaincode (SWT, UploadDispatchDocs)",
                f"~{self.PAPER_DESTINATION_CHAINCODE}",
                str(self.destination_chaincode_sloc),
            ),
            (
                "destination application (SWT seller client)",
                f"~{self.PAPER_DESTINATION_APP}",
                str(self.destination_app_sloc),
            ),
        ]


def measure_adaptation() -> AdaptationReport:
    """Measure the interop-added SLOC of this repo's STL/SWT adaptation."""
    from repro.apps.stl.chaincode import TradeLensChaincode
    from repro.apps.swt.chaincode import WeTradeChaincode
    from repro.apps.swt import applications as swt_applications

    return AdaptationReport(
        source_chaincode_sloc=interop_sloc_of(TradeLensChaincode),
        destination_chaincode_sloc=interop_sloc_of(WeTradeChaincode),
        destination_app_sloc=interop_sloc_of(swt_applications.SwtSellerClient),
    )
