"""Simulation utilities: latency modeling, step metrics, SLOC accounting."""

from repro.sim.latency import LatencyModel, LatencyProfile
from repro.sim.metrics import StepTimer, format_table
from repro.sim.sloc import count_sloc, interop_sloc_of, measure_adaptation

__all__ = [
    "LatencyModel",
    "LatencyProfile",
    "StepTimer",
    "format_table",
    "count_sloc",
    "interop_sloc_of",
    "measure_adaptation",
]
