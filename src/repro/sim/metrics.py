"""Step timing and table rendering for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.clock import Clock, SystemClock


@dataclass
class StepRecord:
    name: str
    seconds: float


@dataclass
class StepTimer:
    """Records named step durations against any clock.

    Usage::

        timer = StepTimer(clock)
        with timer.step("proof collection"):
            ...
        print(format_table(timer.rows()))
    """

    clock: Clock = field(default_factory=SystemClock)
    records: list[StepRecord] = field(default_factory=list)

    def step(self, name: str) -> "_StepContext":
        return _StepContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.records.append(StepRecord(name=name, seconds=seconds))

    def total(self) -> float:
        return sum(record.seconds for record in self.records)

    def rows(self) -> list[tuple[str, str, str]]:
        """(step, milliseconds, percent-of-total) rows for display."""
        total = self.total() or 1.0
        rows = []
        for record in self.records:
            rows.append(
                (
                    record.name,
                    f"{record.seconds * 1000:.2f} ms",
                    f"{100 * record.seconds / total:5.1f}%",
                )
            )
        rows.append(("TOTAL", f"{self.total() * 1000:.2f} ms", "100.0%"))
        return rows


class _StepContext:
    def __init__(self, timer: StepTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StepContext":
        self._start = self._timer.clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = self._timer.clock.now() - self._start
        self._timer.add(self._name, elapsed)


def format_table(rows: list[tuple], headers: list[str] | None = None) -> str:
    """Render rows (tuples of strings) as an aligned text table."""
    if headers:
        rows = [tuple(headers)] + [tuple(str(c) for c in row) for row in rows]
    else:
        rows = [tuple(str(c) for c in row) for row in rows]
    if not rows:
        return ""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if headers and index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
