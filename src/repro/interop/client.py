"""The application-facing interop client.

Wraps the relay service API the way the paper's adapted SWT Seller
application uses it (§4.3/§5): issue a remote query via the local relay,
decrypt the response and proof metadata, and hand back the data plus a
proof bundle ready to be passed as transaction arguments to an
application chaincode (which will have the CMDAC validate it).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.errors import (
    AccessDeniedError,
    FinalityPendingError,
    ProofError,
    ProtocolError,
    RelayError,
    ReorgDetectedError,
)
from repro.fabric.gateway import Gateway
from repro.fabric.identity import Identity
from repro.interop.contracts.cmdac import CMDAC_NAME
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import (
    AttestationProofScheme,
    ProofBundle,
    decrypt_attestation,
    unseal_result,
)
from repro.interop.relay import RelayService
from repro.crypto.hashing import sha256
from repro.proto.address import CrossNetworkAddress, parse_address
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_ACCESS_DENIED,
    STATUS_OK,
    STATUS_PENDING_FINALITY,
    STATUS_REORG,
    AuthInfo,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
    VerificationPolicyMsg,
)
from repro.ops.trace import ensure_trace
from repro.utils.ids import random_id

#: Client-session structured logging (see :mod:`repro.ops.logging`).
logger = logging.getLogger("repro.api")


@dataclass
class RemoteQueryResult:
    """Decrypted outcome of a cross-network query.

    ``data`` is the plaintext remote result; ``proof`` / ``proof_json`` is
    the decrypted proof bundle to pass into the destination transaction;
    ``nonce`` must accompany the transaction so the CMDAC can bind proof to
    request and enforce replay protection.
    """

    address: str
    args: list[str]
    data: bytes
    proof: ProofBundle
    nonce: str
    response: QueryResponse

    @property
    def proof_json(self) -> str:
        return self.proof.to_json()

    @property
    def data_hash(self) -> str:
        return sha256(self.data).hex()


@dataclass
class PreparedQuery:
    """A fully-built wire query awaiting transport.

    Produced by :meth:`InteropClient.prepare_query` and consumed by
    :meth:`InteropClient.finalize_response`; carries everything the client
    needs to check and decrypt the eventual reply (nonce binding, parsed
    policy, confidentiality mode).
    """

    address_text: str
    address: CrossNetworkAddress
    args: list[str]
    nonce: str
    query: NetworkQuery
    parsed_policy: object
    confidential: bool
    verify_locally: bool

    @property
    def target_network(self) -> str:
        return self.address.network


class InteropClient:
    """Issues trusted cross-network queries on behalf of one identity.

    The client's MSP-issued key pair doubles as its decryption key pair:
    "the SWT-SC generates an asymmetric key pair and gets a certificate
    from the Seller organization's MSP" (§4.3).
    """

    def __init__(
        self,
        identity: Identity,
        relay: RelayService,
        network_id: str,
        gateway: Gateway | None = None,
    ) -> None:
        self._identity = identity
        self._relay = relay
        self._network_id = network_id
        self._gateway = gateway
        self._scheme = AttestationProofScheme()

    @property
    def identity(self) -> Identity:
        return self._identity

    @property
    def relay(self) -> RelayService:
        return self._relay

    @property
    def network_id(self) -> str:
        return self._network_id

    def _lookup_policy(self, target_network: str) -> str:
        """Fetch the locally-recorded verification policy for a network.

        Verification policies are governance decisions recorded on the
        local ledger via the CMDAC (§3.3), so by default the client reads
        them from there rather than inventing its own.
        """
        if self._gateway is None:
            raise ProtocolError(
                "no verification policy given and no gateway available to "
                "read one from the CMDAC"
            )
        raw = self._gateway.evaluate(
            self._identity, CMDAC_NAME, "GetVerificationPolicy", [target_network]
        )
        return raw.decode("utf-8")

    def lookup_policy(self, target_network: str) -> str:
        """Public form of the CMDAC policy lookup (used by batch executors
        to resolve the policy once per target network instead of once per
        member query)."""
        return self._lookup_policy(target_network)

    def prepare_query(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
        verify_locally: bool = True,
    ) -> PreparedQuery:
        """Build the wire query for one request without sending it.

        This is the front half of :meth:`remote_query`, exposed so batch
        and pipelined executors (:mod:`repro.api`) can prepare many queries
        up front, ship them in one envelope, and finish each reply with
        :meth:`finalize_response`.
        """
        address = parse_address(address_text)
        policy_expression = policy if policy is not None else self._lookup_policy(
            address.network
        )
        parsed_policy = parse_verification_policy(policy_expression)
        nonce = random_id("nonce-")
        query = NetworkQuery(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=address.network,
                ledger=address.ledger,
                contract=address.contract,
                function=address.function,
            ),
            args=list(args),
            nonce=nonce,
            auth=AuthInfo(
                requesting_network=self._network_id,
                requesting_org=self._identity.org,
                requestor=self._identity.name,
                certificate=self._identity.certificate.to_bytes(),
                public_key=self._identity.keypair.public.to_bytes(),
            ),
            policy=VerificationPolicyMsg(expression=policy_expression),
            confidential=confidential,
        )
        return PreparedQuery(
            address_text=address_text,
            address=address,
            args=list(args),
            nonce=nonce,
            query=query,
            parsed_policy=parsed_policy,
            confidential=confidential,
            verify_locally=verify_locally,
        )

    def finalize_response(
        self, prepared: PreparedQuery, response: QueryResponse
    ) -> RemoteQueryResult:
        """Decrypt, check, and (optionally) locally verify one reply.

        The back half of :meth:`remote_query`; raises exactly the same
        errors (:class:`AccessDeniedError`, :class:`RelayError`,
        :class:`ProofError`).
        """
        address_text = prepared.address_text
        if response.status == STATUS_ACCESS_DENIED:
            raise AccessDeniedError(
                f"source network denied the query {address_text!r}: "
                f"{response.error}"
            )
        if response.status == STATUS_PENDING_FINALITY:
            raise FinalityPendingError(
                f"remote query {address_text!r} is below its required "
                f"confirmation depth: {response.error}"
            )
        if response.status == STATUS_REORG:
            raise ReorgDetectedError(
                f"remote query {address_text!r} depends on a reorged-out "
                f"record: {response.error}"
            )
        if response.status != STATUS_OK:
            raise RelayError(
                f"remote query {address_text!r} failed: {response.error}"
            )
        if response.nonce != prepared.nonce:
            raise ProofError(
                f"response nonce {response.nonce!r} does not match the query "
                f"nonce {prepared.nonce!r} (possible replay or relay confusion)"
            )
        envelope = (
            response.result_cipher if prepared.confidential else response.result_plain
        )
        if not envelope:
            raise ProofError("response carries no result envelope")
        private_key = self._identity.keypair.private if prepared.confidential else None
        data = unseal_result(envelope, private_key)
        attestations = tuple(
            decrypt_attestation(attestation, self._identity.keypair.private)
            for attestation in response.attestations
        )
        bundle = ProofBundle(attestations=attestations)
        if prepared.verify_locally:
            self._verify_locally(
                prepared.address,
                prepared.args,
                prepared.nonce,
                data,
                bundle,
                prepared.parsed_policy,
            )
        return RemoteQueryResult(
            address=address_text,
            args=list(prepared.args),
            data=data,
            proof=bundle,
            nonce=prepared.nonce,
            response=response,
        )

    def remote_query(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
        verify_locally: bool = True,
    ) -> RemoteQueryResult:
        """Execute steps (1)-(9) of the message flow and decrypt the reply.

        Raises :class:`AccessDeniedError` if the source network's exposure
        control denied the request, :class:`RelayError` for relay-level
        failures, and :class:`ProofError` if the response or proof fails
        client-side checks.
        """
        with ensure_trace():
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "remote query",
                    extra={"address": address_text, "confidential": confidential},
                )
            prepared = self.prepare_query(
                address_text, args, policy, confidential, verify_locally
            )
            response = self._relay.remote_query(prepared.query)
            return self.finalize_response(prepared, response)

    def remote_query_batch(
        self, requests: list[tuple[str, list[str]]], **options
    ) -> list[RemoteQueryResult]:
        """Execute N queries as batch envelopes (one per target network).

        ``requests`` is a list of ``(address, args)`` pairs; ``options``
        are forwarded to each member (``policy``, ``confidential``,
        ``verify_locally``). Unlike the :class:`repro.api.InteropGateway`
        pipeline, this convenience raises on the *first* failed member —
        use the gateway's :class:`~repro.api.QuerySet` for per-member
        partial-failure handling.
        """
        with ensure_trace():
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug("remote query batch", extra={"members": len(requests)})
            prepared = [
                self.prepare_query(address_text, args, **options)
                for address_text, args in requests
            ]
            responses = self._relay.remote_query_batch([p.query for p in prepared])
            return [
                self.finalize_response(p, response)
                for p, response in zip(prepared, responses)
            ]

    def _verify_locally(
        self,
        address: CrossNetworkAddress,
        args: list[str],
        nonce: str,
        data: bytes,
        bundle: ProofBundle,
        parsed_policy,
    ) -> None:
        """Client-side pre-validation (signatures + consistency + policy).

        This cannot replace the consensual CMDAC validation — the client
        has no ledger-recorded org roots, so it checks internal consistency
        against the certificates embedded in the proof — but it fails fast
        before a doomed transaction is submitted.
        """
        if not bundle.attestations:
            raise ProofError("response proof is empty")
        from repro.crypto.ecdsa import Signature, verify as verify_sig

        data_hash = sha256(data).hex()
        attesters = []
        for position, attestation in enumerate(bundle.attestations):
            metadata = attestation.metadata()
            certificate = attestation.decoded_certificate()
            if not verify_sig(
                certificate.public_key,
                attestation.metadata_bytes,
                Signature.from_bytes(attestation.signature),
            ):
                raise ProofError(f"attestation[{position}]: bad signature")
            if metadata.nonce != nonce:
                raise ProofError(f"attestation[{position}]: nonce mismatch")
            from repro.interop.proofs import envelope_plaintext_hash

            if envelope_plaintext_hash(metadata.result) != data_hash:
                raise ProofError(
                    f"attestation[{position}]: attested hash does not cover the "
                    f"decrypted data"
                )
            attesters.append((metadata.org, metadata.peer_id))
        if not parsed_policy.satisfied_by(attesters):
            raise ProofError(
                f"attesters {sorted(attesters)} do not satisfy the requested "
                f"policy {parsed_policy.expression()}"
            )
