"""Attestation-based proofs: generation, packaging, validation.

The paper's proof format (§4.3): each source peer produces
``<encrypted result, encrypted metadata, signature>``; the array of
``<encrypted metadata, signature>`` pairs constitutes the proof. The
signature is over the *plaintext* metadata (peers sign, then encrypt), so
after the requesting client decrypts the metadata, anyone holding the
source network's recorded configuration can validate the signatures —
which is exactly what the destination's Data Acceptance contract does.

Result confidentiality uses a *seal envelope*: canonical JSON carrying the
SHA-256 hash of the plaintext plus either the ECIES ciphertext
(confidential mode) or the plaintext itself. Because the envelope — hash
included — is embedded in the signed metadata, the proof binds the
plaintext data to the source network's consensus view even though peers
encrypted their responses.

The architecture "allows any suitable proof scheme to be plugged in" (§6);
:class:`ProofScheme` is that plug point and
:class:`AttestationProofScheme` is the paper's scheme.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.crypto.certs import Certificate, validate_chain
from repro.crypto.ecdsa import Signature, verify
from repro.crypto.ecies import ecies_decrypt, ecies_encrypt
from repro.crypto.hashing import sha256
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import DecryptionError, ProofError
from repro.fabric.identity import Identity
from repro.interop.policy import Attester, VerificationPolicy
from repro.proto.address import CrossNetworkAddress
from repro.proto.messages import Attestation, NetworkAddressMsg, ProofMetadata
from repro.utils.encoding import canonical_json, from_canonical_json


# ---------------------------------------------------------------------------
# Seal envelopes (result channel)
# ---------------------------------------------------------------------------


def seal_result(
    plaintext: bytes,
    client_key: PublicKey | None,
    confidential: bool,
) -> bytes:
    """Package a query result for the response channel.

    Confidential mode encrypts under the requesting client's public key so
    "an untrusted relay cannot read or exfiltrate the information" (§5);
    either way the envelope carries the plaintext hash that the signed
    metadata will bind to.
    """
    envelope: dict[str, str] = {"hash": sha256(plaintext).hex()}
    if confidential:
        if client_key is None:
            raise ProofError("confidential responses require the client public key")
        envelope["cipher"] = ecies_encrypt(client_key, plaintext).hex()
    else:
        envelope["plain"] = plaintext.hex()
    return canonical_json(envelope)


def unseal_result(envelope_bytes: bytes, client_key: PrivateKey | None = None) -> bytes:
    """Recover and integrity-check the plaintext from a seal envelope."""
    envelope = _parse_envelope(envelope_bytes)
    try:
        if "cipher" in envelope:
            if client_key is None:
                raise ProofError(
                    "envelope is confidential but no private key was supplied"
                )
            plaintext = ecies_decrypt(client_key, bytes.fromhex(envelope["cipher"]))
        elif "plain" in envelope:
            plaintext = bytes.fromhex(envelope["plain"])
        else:
            raise ProofError("seal envelope carries neither cipher nor plain payload")
    except (ValueError, DecryptionError) as exc:
        raise ProofError(
            f"seal envelope payload is corrupt or undecryptable: {exc}"
        ) from exc
    if sha256(plaintext).hex() != envelope.get("hash"):
        raise ProofError("seal envelope hash does not match its payload")
    return plaintext


def envelope_plaintext_hash(envelope_bytes: bytes) -> str:
    """Extract the plaintext hash a seal envelope commits to (hex)."""
    return _parse_envelope(envelope_bytes)["hash"]


def _parse_envelope(envelope_bytes: bytes) -> dict:
    try:
        envelope = from_canonical_json(envelope_bytes)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProofError(f"malformed seal envelope: {exc}") from exc
    if not isinstance(envelope, dict) or "hash" not in envelope:
        raise ProofError("seal envelope must be an object with a 'hash' field")
    return envelope


# ---------------------------------------------------------------------------
# Signed attestations and proof bundles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SignedAttestation:
    """One peer's decrypted attestation: plaintext metadata + signature."""

    metadata_bytes: bytes
    signature: bytes
    certificate: bytes

    def metadata(self) -> ProofMetadata:
        return ProofMetadata.decode(self.metadata_bytes)

    def decoded_certificate(self) -> Certificate:
        return Certificate.from_bytes(self.certificate)

    def attester(self) -> Attester:
        meta = self.metadata()
        return (meta.org, meta.peer_id)

    def to_dict(self) -> dict:
        return {
            "metadata": self.metadata_bytes.hex(),
            "signature": self.signature.hex(),
            "certificate": self.certificate.hex(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SignedAttestation":
        try:
            return cls(
                metadata_bytes=bytes.fromhex(data["metadata"]),
                signature=bytes.fromhex(data["signature"]),
                certificate=bytes.fromhex(data["certificate"]),
            )
        except (KeyError, ValueError) as exc:
            raise ProofError(f"malformed attestation record: {exc}") from exc


@dataclass(frozen=True)
class ProofBundle:
    """The decrypted proof a destination transaction carries as an argument."""

    attestations: tuple[SignedAttestation, ...]

    def to_json(self) -> str:
        return json.dumps(
            [attestation.to_dict() for attestation in self.attestations],
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ProofBundle":
        try:
            records = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProofError(f"proof bundle is not valid JSON: {exc}") from exc
        if not isinstance(records, list):
            raise ProofError("proof bundle must be a JSON array")
        return cls(
            attestations=tuple(
                SignedAttestation.from_dict(record) for record in records
            )
        )

    def __len__(self) -> int:
        return len(self.attestations)


# ---------------------------------------------------------------------------
# Proof schemes
# ---------------------------------------------------------------------------


class ProofScheme(ABC):
    """Plug point for proof mechanisms (§6: attestations, SPV, NIPoPoW...)."""

    name: str = ""

    @abstractmethod
    def generate_attestation(
        self,
        peer_identity: Identity,
        network: str,
        address: CrossNetworkAddress,
        args: Sequence[str],
        nonce: str,
        result_envelope: bytes,
        client_key: PublicKey | None,
        confidential: bool,
        timestamp: float,
    ) -> Attestation:
        """Peer-side: sign (and optionally encrypt) an attestation."""

    @abstractmethod
    def validate_bundle(
        self,
        bundle: ProofBundle,
        *,
        expected_network: str,
        expected_address: CrossNetworkAddress,
        expected_args: Sequence[str],
        expected_nonce: str,
        expected_data_hash: str,
        policy: VerificationPolicy,
        org_roots: Mapping[str, Certificate],
    ) -> list[Attester]:
        """Destination-side: validate a decrypted proof bundle.

        Returns the attesters on success; raises :class:`ProofError` with a
        specific reason otherwise.
        """


class AttestationProofScheme(ProofScheme):
    """The paper's scheme: per-peer signatures under a verification policy."""

    name = "attestation"

    def build_metadata(
        self,
        peer_identity: Identity,
        network: str,
        address: CrossNetworkAddress,
        args: Sequence[str],
        nonce: str,
        result_envelope: bytes,
        timestamp: float,
    ) -> ProofMetadata:
        return ProofMetadata(
            address=NetworkAddressMsg(
                network=address.network,
                ledger=address.ledger,
                contract=address.contract,
                function=address.function,
            ),
            args=list(args),
            nonce=nonce,
            result_hash=sha256(result_envelope),
            peer_id=peer_identity.id,
            org=peer_identity.org,
            network=network,
            timestamp=timestamp,
            result=result_envelope,
        )

    def generate_attestation(
        self,
        peer_identity: Identity,
        network: str,
        address: CrossNetworkAddress,
        args: Sequence[str],
        nonce: str,
        result_envelope: bytes,
        client_key: PublicKey | None,
        confidential: bool,
        timestamp: float,
    ) -> Attestation:
        metadata = self.build_metadata(
            peer_identity, network, address, args, nonce, result_envelope, timestamp
        )
        metadata_bytes = metadata.encode()
        signature = peer_identity.sign(metadata_bytes).to_bytes()
        attestation = Attestation(
            signature=signature,
            certificate=peer_identity.certificate.to_bytes(),
            peer_id=peer_identity.id,
            org=peer_identity.org,
        )
        if confidential:
            if client_key is None:
                raise ProofError("confidential attestations require the client key")
            attestation.metadata_cipher = ecies_encrypt(client_key, metadata_bytes)
        else:
            attestation.metadata_plain = metadata_bytes
        return attestation

    # -- validation ------------------------------------------------------------

    def validate_bundle(
        self,
        bundle: ProofBundle,
        *,
        expected_network: str,
        expected_address: CrossNetworkAddress,
        expected_args: Sequence[str],
        expected_nonce: str,
        expected_data_hash: str,
        policy: VerificationPolicy,
        org_roots: Mapping[str, Certificate],
    ) -> list[Attester]:
        if not bundle.attestations:
            raise ProofError("proof bundle is empty")
        attesters: list[Attester] = []
        for position, attestation in enumerate(bundle.attestations):
            attesters.append(
                self._validate_attestation(
                    position,
                    attestation,
                    expected_network=expected_network,
                    expected_address=expected_address,
                    expected_args=expected_args,
                    expected_nonce=expected_nonce,
                    expected_data_hash=expected_data_hash,
                    org_roots=org_roots,
                )
            )
        if not policy.satisfied_by(attesters):
            raise ProofError(
                f"verification policy {policy.expression()} not satisfied by "
                f"attesters {sorted(attesters)}"
            )
        return attesters

    def _validate_attestation(
        self,
        position: int,
        attestation: SignedAttestation,
        *,
        expected_network: str,
        expected_address: CrossNetworkAddress,
        expected_args: Sequence[str],
        expected_nonce: str,
        expected_data_hash: str,
        org_roots: Mapping[str, Certificate],
    ) -> Attester:
        label = f"attestation[{position}]"
        try:
            certificate = attestation.decoded_certificate()
        except Exception as exc:
            raise ProofError(f"{label}: unparseable certificate: {exc}") from exc
        org_id = certificate.subject.organization
        root = org_roots.get(org_id)
        if root is None:
            raise ProofError(
                f"{label}: organization {org_id!r} is not in the recorded "
                f"configuration of network {expected_network!r}"
            )
        try:
            validate_chain(certificate, [root])
        except Exception as exc:
            raise ProofError(f"{label}: signer certificate not trusted: {exc}") from exc
        if certificate.subject.role != "peer":
            raise ProofError(
                f"{label}: signer role {certificate.subject.role!r} is not a peer"
            )
        try:
            metadata = attestation.metadata()
        except Exception as exc:
            raise ProofError(f"{label}: unparseable metadata: {exc}") from exc
        if metadata.network != expected_network:
            raise ProofError(
                f"{label}: attests network {metadata.network!r}, expected "
                f"{expected_network!r}"
            )
        if metadata.org != org_id:
            raise ProofError(
                f"{label}: metadata org {metadata.org!r} does not match "
                f"certificate org {org_id!r}"
            )
        address = metadata.address
        if address is None or (
            address.network,
            address.ledger,
            address.contract,
            address.function,
        ) != (
            expected_address.network,
            expected_address.ledger,
            expected_address.contract,
            expected_address.function,
        ):
            raise ProofError(f"{label}: attested address does not match the query")
        if list(metadata.args) != list(expected_args):
            raise ProofError(f"{label}: attested arguments do not match the query")
        if metadata.nonce != expected_nonce:
            raise ProofError(
                f"{label}: attested nonce {metadata.nonce!r} does not match "
                f"{expected_nonce!r}"
            )
        if sha256(metadata.result).hex() != metadata.result_hash.hex():
            raise ProofError(f"{label}: result hash does not match embedded result")
        try:
            inner_hash = envelope_plaintext_hash(metadata.result)
        except ProofError as exc:
            raise ProofError(f"{label}: {exc}") from exc
        if inner_hash != expected_data_hash:
            raise ProofError(
                f"{label}: attested data hash {inner_hash} does not match the "
                f"transaction data hash {expected_data_hash}"
            )
        if not verify(
            certificate.public_key,
            attestation.metadata_bytes,
            Signature.from_bytes(attestation.signature),
        ):
            raise ProofError(f"{label}: signature verification failed")
        return (metadata.org, metadata.peer_id)


def decrypt_attestation(
    attestation: Attestation, client_key: PrivateKey | None
) -> SignedAttestation:
    """Client-side: decrypt one wire attestation into its signed plaintext.

    "Only the SWT-SC possesses a decryption key" (§4.3) — this is the step
    where the requesting client turns the exfiltration-proof wire form into
    the validatable plaintext form it submits on-ledger.
    """
    if attestation.metadata_cipher:
        if client_key is None:
            raise ProofError("attestation metadata is encrypted; private key required")
        try:
            metadata_bytes = ecies_decrypt(client_key, attestation.metadata_cipher)
        except DecryptionError as exc:
            raise ProofError(
                f"attestation metadata is corrupt or undecryptable: {exc}"
            ) from exc
    elif attestation.metadata_plain:
        metadata_bytes = attestation.metadata_plain
    else:
        raise ProofError("attestation carries no metadata")
    return SignedAttestation(
        metadata_bytes=metadata_bytes,
        signature=attestation.signature,
        certificate=attestation.certificate,
    )
