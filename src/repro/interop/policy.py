"""Verification-policy algebra.

"The network requesting data must be able to specify a policy for proofs
(termed as Verification Policy) that the source network will satisfy if
possible" (§3.1). A verification policy names which source-network units
must attest to a query result, e.g. the paper's use case requires "proof
from a peer in both the Seller and Carrier organizations" (§4.3)::

    AND(org:SellerOrg, org:CarrierOrg)

Grammar::

    policy  := leaf | AND(policy, ...) | OR(policy, ...) | OutOf(n, policy, ...)
    leaf    := org:<org-id>        (any peer of the organization)
             | peer:<peer-id>      (one specific peer)

Policies both *select* the peers a source relay must query and *validate*
the attestations a destination receives. The expression string is the
network-neutral wire form (:class:`repro.proto.VerificationPolicyMsg`).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import PolicyError

# An attester is identified by (org_id, peer_id).
Attester = tuple[str, str]


class VerificationPolicy(ABC):
    """A predicate over sets of attesting source-network peers."""

    @abstractmethod
    def satisfied_by(self, attesters: Iterable[Attester]) -> bool:
        """True iff the attester set satisfies this policy."""

    @abstractmethod
    def expression(self) -> str:
        """Canonical source-text form (round-trips through the parser)."""

    @abstractmethod
    def mentioned_orgs(self) -> set[str]:
        """Every organization the policy references (directly or via peers)."""

    def select_attesters(self, available: Sequence[Attester]) -> list[Attester] | None:
        """Choose a minimal subset of ``available`` peers satisfying the policy.

        This is how a source relay "orchestrates proof collection by
        selecting a set of peers to query based on the verification policy
        it receives" (§4.3). Returns ``None`` when the policy cannot be
        satisfied by the available peers.
        """
        pool = list(dict.fromkeys(available))
        for size in range(1, len(pool) + 1):
            for subset in combinations(pool, size):
                if self.satisfied_by(subset):
                    return list(subset)
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.expression()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VerificationPolicy):
            return NotImplemented
        return self.expression() == other.expression()

    def __hash__(self) -> int:
        return hash(self.expression())


@dataclass(frozen=True, eq=False)
class OrgAttestation(VerificationPolicy):
    """Leaf: an attestation from any peer of ``org``."""

    org: str

    def satisfied_by(self, attesters: Iterable[Attester]) -> bool:
        return any(org == self.org for org, _ in attesters)

    def expression(self) -> str:
        return f"org:{self.org}"

    def mentioned_orgs(self) -> set[str]:
        return {self.org}


@dataclass(frozen=True, eq=False)
class PeerAttestation(VerificationPolicy):
    """Leaf: an attestation from one specific peer (``peer_id``)."""

    peer_id: str

    def satisfied_by(self, attesters: Iterable[Attester]) -> bool:
        return any(peer == self.peer_id for _, peer in attesters)

    def expression(self) -> str:
        return f"peer:{self.peer_id}"

    def mentioned_orgs(self) -> set[str]:
        # peer ids are qualified as name.org; tolerate unqualified ids.
        if "." in self.peer_id:
            return {self.peer_id.split(".", 1)[1]}
        return set()


@dataclass(frozen=True, eq=False)
class ThresholdPolicy(VerificationPolicy):
    """At least ``threshold`` of ``children`` must be satisfied."""

    threshold: int
    children: tuple[VerificationPolicy, ...]
    label: str = "OutOf"

    def __post_init__(self) -> None:
        if not self.children:
            raise PolicyError("policy combinator requires sub-policies")
        if not (1 <= self.threshold <= len(self.children)):
            raise PolicyError(
                f"threshold {self.threshold} out of range for "
                f"{len(self.children)} sub-policies"
            )

    def satisfied_by(self, attesters: Iterable[Attester]) -> bool:
        pool = list(attesters)
        return (
            sum(1 for child in self.children if child.satisfied_by(pool))
            >= self.threshold
        )

    def expression(self) -> str:
        inner = ", ".join(child.expression() for child in self.children)
        if self.label == "AND":
            return f"AND({inner})"
        if self.label == "OR":
            return f"OR({inner})"
        return f"OutOf({self.threshold}, {inner})"

    def mentioned_orgs(self) -> set[str]:
        orgs: set[str] = set()
        for child in self.children:
            orgs |= child.mentioned_orgs()
        return orgs


def policy_all_of(*children: VerificationPolicy) -> ThresholdPolicy:
    return ThresholdPolicy(len(children), tuple(children), label="AND")


def policy_any_of(*children: VerificationPolicy) -> ThresholdPolicy:
    return ThresholdPolicy(1, tuple(children), label="OR")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<number>\d+)"
    r"|(?P<leaf>(?:org|peer):[A-Za-z0-9_.\-]+)"
    r"|(?P<word>AND|OR|OutOf))",
    re.IGNORECASE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PolicyError(
                f"unexpected character at position {position} in policy {text!r}"
            )
        position = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._position = 0

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._position] if self._position < len(self._tokens) else None

    def _next(self, expected: str | None = None) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PolicyError(f"unexpected end of policy {self._source!r}")
        if expected is not None and token[0] != expected:
            raise PolicyError(
                f"expected {expected}, found {token[1]!r} in policy {self._source!r}"
            )
        self._position += 1
        return token

    def parse(self) -> VerificationPolicy:
        node = self._parse_node()
        if self._peek() is not None:
            raise PolicyError(f"trailing tokens in policy {self._source!r}")
        return node

    def _parse_node(self) -> VerificationPolicy:
        kind, value = self._next()
        if kind == "leaf":
            scheme, _, name = value.partition(":")
            if scheme.lower() == "org":
                return OrgAttestation(org=name)
            return PeerAttestation(peer_id=name)
        if kind == "word":
            return self._parse_combinator(value.upper())
        raise PolicyError(
            f"expected a leaf or combinator, found {value!r} in {self._source!r}"
        )

    def _parse_combinator(self, word: str) -> VerificationPolicy:
        self._next("lparen")
        threshold: int | None = None
        if word == "OUTOF":
            threshold = int(self._next("number")[1])
            self._next("comma")
        children = [self._parse_node()]
        while True:
            token = self._peek()
            if token is None:
                raise PolicyError(f"unterminated combinator in policy {self._source!r}")
            if token[0] == "comma":
                self._next()
                children.append(self._parse_node())
            elif token[0] == "rparen":
                self._next()
                break
            else:
                raise PolicyError(
                    f"expected ',' or ')', found {token[1]!r} in {self._source!r}"
                )
        if word == "AND":
            return policy_all_of(*children)
        if word == "OR":
            return policy_any_of(*children)
        assert threshold is not None
        return ThresholdPolicy(threshold, tuple(children))


def parse_verification_policy(text: str) -> VerificationPolicy:
    """Parse a verification-policy expression string.

    Examples::

        parse_verification_policy("AND(org:SellerOrg, org:CarrierOrg)")
        parse_verification_policy("OutOf(2, org:A, org:B, org:C)")
        parse_verification_policy("peer:peer0.carrier-org")
    """
    if not text or not text.strip():
        raise PolicyError("empty verification policy expression")
    tokens = _tokenize(text)
    return _Parser(tokens, text).parse()


def all_orgs_policy(orgs: Iterable[str]) -> VerificationPolicy:
    """Convenience: require an attestation from every listed organization.

    This is the "optimal verification policy from a network's consensus
    policy" starting point the paper leaves to future work (§7) — the
    strictest attestation policy a fully-endorsed network supports.
    """
    org_list = sorted(set(orgs))
    if not org_list:
        raise PolicyError("cannot build a policy over zero organizations")
    leaves = [OrgAttestation(org) for org in org_list]
    if len(leaves) == 1:
        return leaves[0]
    return policy_all_of(*leaves)
