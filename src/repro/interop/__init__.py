"""The paper's core contribution: trusted cross-network data transfer.

Components (paper §3):

- :class:`~repro.interop.relay.RelayService` — the per-network relay that
  serves applications' requests for authentic remote data (§3.2), with
  pluggable drivers and discovery, redundant-relay failover and DoS
  protection.
- :mod:`repro.interop.drivers` — network drivers translating the
  network-neutral protocol into calls on a concrete platform (Fabric,
  Corda-like, Quorum-like).
- :mod:`repro.interop.contracts` — the system contracts: Exposure Control
  (ECC) and Configuration Management & Data Acceptance (CMDAC).
- :class:`~repro.interop.client.InteropClient` — the application-facing
  API: remote query, response decryption, proof unmarshalling.
- :mod:`repro.interop.policy` — verification-policy algebra.
- :mod:`repro.interop.proofs` — attestation-based proof assembly and
  validation (pluggable proof schemes).
- :mod:`repro.testing` — the threat-model harness used by the security
  evaluation (malicious relays, byzantine peers, replay, DoS) plus the
  seeded fault-injection and cross-driver conformance machinery
  (:mod:`repro.interop.adversary` remains as a deprecation shim).
"""

from repro.interop.policy import VerificationPolicy, parse_verification_policy
from repro.interop.proofs import (
    AttestationProofScheme,
    ProofBundle,
    ProofScheme,
    SignedAttestation,
)
from repro.interop.discovery import (
    DiscoveryService,
    FileRegistry,
    InMemoryRegistry,
)
from repro.interop.relay import (
    RateLimiter,
    RateLimitInterceptor,
    RelayContext,
    RelayService,
)
from repro.interop.client import InteropClient, PreparedQuery, RemoteQueryResult
from repro.interop.bootstrap import (
    create_fabric_relay,
    create_interop_gateway,
    enable_fabric_interop,
    link_networks,
)

__all__ = [
    "VerificationPolicy",
    "parse_verification_policy",
    "ProofScheme",
    "AttestationProofScheme",
    "ProofBundle",
    "SignedAttestation",
    "DiscoveryService",
    "InMemoryRegistry",
    "FileRegistry",
    "RelayService",
    "RateLimiter",
    "RateLimitInterceptor",
    "RelayContext",
    "InteropClient",
    "PreparedQuery",
    "RemoteQueryResult",
    "enable_fabric_interop",
    "create_fabric_relay",
    "create_interop_gateway",
    "link_networks",
]
