"""ECC: Exposure Control Chaincode.

"The Exposure Control contract enforces access control policy rules
against incoming requests, determining which data items in the local
ledger and smart contract functions can be exposed" (§3.2).

Rules follow the paper's §4.3 tuple form
``<network ID, organization ID, chaincode name, chaincode function>``:
the subject is a member of a (foreign) network organization, the object
is a local chaincode function. The example rule recorded on STL is
``<"we-trade", "seller-org", "TradeLensCC", "GetBillOfLading">``.

Application chaincode on a source network inserts exactly two calls
(the paper's ~35 SLOC adaptation): ``CheckAccess`` before query execution
and ``SealResponse`` after. Certificate authentication of the foreign
requestor delegates to the CMDAC's recorded configuration, as in the
paper ("the ECC validates the SWT-SC's certificate using the recorded
SWT configuration (managed by the CMDAC)").
"""

from __future__ import annotations

from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub, require_args
from repro.interop.contracts.cmdac import CMDAC_NAME
from repro.interop.proofs import seal_result
from repro.utils.encoding import canonical_json

ECC_NAME = "ecc"

_RULE_PREFIX = "rule/"
_WILDCARD = "*"


def _rule_key(network: str, org: str, chaincode: str, function: str) -> str:
    return f"{_RULE_PREFIX}{network}/{org}/{chaincode}/{function}"


class ExposureControlChaincode(Chaincode):
    """The ECC system contract.

    Functions:

    - ``init()``
    - ``AddAccessRule(network, org, chaincode, function)`` — ``org`` and
      ``function`` accept ``*`` wildcards
    - ``RemoveAccessRule(network, org, chaincode, function)``
    - ``ListAccessRules()`` -> JSON array of rule tuples
    - ``CheckAccess(requesting_network, requesting_org, chaincode, function)``
      -> b"OK"; authenticates the proposal creator's certificate against
      the CMDAC-recorded foreign configuration, then matches rules.
      Raises :class:`AccessDeniedError` otherwise.
    - ``SealResponse(result_hex, client_pubkey_hex, confidential)`` ->
      seal-envelope bytes (the result channel of the proof format, §4.3).
    """

    name = ECC_NAME

    def invoke(self, stub: ChaincodeStub) -> bytes:
        function = stub.function
        if function == "init":
            return b"ok"
        handler = {
            "AddAccessRule": self._add_rule,
            "RemoveAccessRule": self._remove_rule,
            "ListAccessRules": self._list_rules,
            "CheckAccess": self._check_access,
            "SealResponse": self._seal_response,
        }.get(function)
        if handler is None:
            raise ChaincodeError(f"ECC has no function {function!r}")
        return handler(stub)

    # -- rule management -----------------------------------------------------------

    def _add_rule(self, stub: ChaincodeStub) -> bytes:
        network, org, chaincode, function = require_args(stub, 4)
        if not network or network == _WILDCARD:
            raise ChaincodeError("access rules must name a specific network")
        if not chaincode or chaincode == _WILDCARD:
            raise ChaincodeError("access rules must name a specific chaincode")
        stub.put_state(_rule_key(network, org, chaincode, function), b"allow")
        stub.set_event(
            "AccessRuleAdded",
            canonical_json([network, org, chaincode, function]),
        )
        return b"ok"

    def _remove_rule(self, stub: ChaincodeStub) -> bytes:
        network, org, chaincode, function = require_args(stub, 4)
        key = _rule_key(network, org, chaincode, function)
        if stub.get_state(key) is None:
            raise ChaincodeError(
                f"no access rule <{network}, {org}, {chaincode}, {function}>"
            )
        stub.del_state(key)
        return b"ok"

    def _list_rules(self, stub: ChaincodeStub) -> bytes:
        entries = stub.get_state_by_range(_RULE_PREFIX, _RULE_PREFIX + "￿")
        rules = [key[len(_RULE_PREFIX):].split("/") for key, _ in entries]
        return canonical_json(rules)

    # -- access decisions --------------------------------------------------------------

    def _check_access(self, stub: ChaincodeStub) -> bytes:
        requesting_network, requesting_org, chaincode, function = require_args(stub, 4)

        # 1. Authenticate the requestor: the proposal creator must present a
        #    certificate chaining to the recorded configuration of the
        #    requesting network (delegated to the CMDAC, §4.3).
        creator = stub.get_creator()
        if creator is None:
            raise AccessDeniedError("interop request carries no creator certificate")
        if creator.subject.organization != requesting_org:
            raise AccessDeniedError(
                f"creator certificate belongs to org "
                f"{creator.subject.organization!r}, but the request claims org "
                f"{requesting_org!r}"
            )
        stub.invoke_chaincode(
            CMDAC_NAME,
            "ValidateForeignCertificate",
            [requesting_network, creator.to_bytes().hex()],
        )

        # 2. Match access rules at decreasing granularity (§3.3 allows
        #    policies at network, organization, or entity level).
        candidates = [
            _rule_key(requesting_network, requesting_org, chaincode, function),
            _rule_key(requesting_network, requesting_org, chaincode, _WILDCARD),
            _rule_key(requesting_network, _WILDCARD, chaincode, function),
            _rule_key(requesting_network, _WILDCARD, chaincode, _WILDCARD),
        ]
        for key in candidates:
            if stub.get_state(key) is not None:
                return b"OK"
        raise AccessDeniedError(
            f"exposure control denied <{requesting_network}, {requesting_org}, "
            f"{chaincode}, {function}>: no matching access rule"
        )

    # -- response sealing ---------------------------------------------------------------

    def _seal_response(self, stub: ChaincodeStub) -> bytes:
        result_hex, client_pubkey_hex, confidential_text = require_args(stub, 3)
        confidential = confidential_text.lower() == "true"
        client_key: PublicKey | None = None
        if confidential:
            try:
                client_key = PublicKey.from_bytes(bytes.fromhex(client_pubkey_hex))
            except Exception as exc:
                raise ChaincodeError(
                    f"invalid client public key for response sealing: {exc}"
                ) from exc
        try:
            plaintext = bytes.fromhex(result_hex)
        except ValueError as exc:
            raise ChaincodeError(f"result_hex is not valid hex: {exc}") from exc
        return seal_result(plaintext, client_key, confidential)
