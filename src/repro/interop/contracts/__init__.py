"""System contracts for interoperability (paper §3.2).

"A set of special system contracts, independent of application business
logic and deployed on all the peers of the interoperating networks,
enforces network rules for data exposure and acceptance."

- :class:`~repro.interop.contracts.ecc.ExposureControlChaincode` (ECC) —
  enforces access-control policy against incoming remote requests and
  seals (encrypts) responses for the requesting client.
- :class:`~repro.interop.contracts.cmdac.ConfigAndDataAcceptanceChaincode`
  (CMDAC) — maintains foreign-network identity/configuration records and
  verification policies, validates proofs, and tracks nonces for replay
  protection. The paper combines Configuration Management and Data
  Acceptance into one chaincode "for runtime efficiency, as proof
  verification depends on foreign networks' configurations" (§4.3).
"""

from repro.interop.contracts.ecc import ECC_NAME, ExposureControlChaincode
from repro.interop.contracts.cmdac import CMDAC_NAME, ConfigAndDataAcceptanceChaincode

__all__ = [
    "ExposureControlChaincode",
    "ConfigAndDataAcceptanceChaincode",
    "ECC_NAME",
    "CMDAC_NAME",
]
