"""CMDAC: Configuration Management & Data Acceptance Chaincode.

Two of the paper's three system contracts in one chaincode, as deployed in
the proof-of-concept: "The Configuration Management and Data Acceptance
contracts are combined into a single application chaincode (called CMDAC)
for runtime efficiency, as proof verification depends on foreign
networks' configurations" (§4.3).

Responsibilities:

- **Configuration management**: record foreign networks' identity and
  topology (org MSP root certificates, peer identities) on the local
  ledger, applied through the network's own consensus (§3.3).
- **Verification policies**: record, per foreign network, the criteria a
  proof must satisfy (e.g. ``AND(org:seller-org, org:carrier-org)``).
- **Data acceptance**: validate a proof bundle accompanying remote data
  against the recorded configuration and verification policy before the
  calling application chaincode writes the data to the local ledger.
- **Replay protection**: record consumed nonces on the ledger so a captured
  proof cannot be re-submitted (§4.3).

All functions run as ordinary chaincode: every record lands on the ledger
through endorsement + ordering, which is what makes exposure/acceptance
decisions *consensual* rather than unilateral.
"""

from __future__ import annotations

from repro.crypto.certs import Certificate, validate_chain
from repro.errors import ChaincodeError, ConfigurationError, ProofError, ReplayError
from repro.fabric.chaincode import Chaincode, ChaincodeStub, require_args
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme, ProofBundle
from repro.proto.address import parse_address
from repro.proto.messages import NetworkConfigMsg
from repro.utils.encoding import canonical_json, from_canonical_json

CMDAC_NAME = "cmdac"

_CONFIG_PREFIX = "config/"
_POLICY_PREFIX = "policy/"
_NONCE_PREFIX = "nonce/"


def org_roots_from_config(config: NetworkConfigMsg) -> dict[str, Certificate]:
    """Extract ``org_id -> MSP root certificate`` from a recorded config."""
    roots: dict[str, Certificate] = {}
    for org in config.organizations:
        try:
            roots[org.org_id] = Certificate.from_bytes(org.root_certificate)
        except Exception as exc:
            raise ConfigurationError(
                f"recorded root certificate for org {org.org_id!r} is "
                f"malformed: {exc}"
            ) from exc
    return roots


class ConfigAndDataAcceptanceChaincode(Chaincode):
    """The CMDAC system contract.

    Functions (dispatched on ``stub.function``):

    - ``init()``
    - ``RecordNetworkConfig(network_id, config_hex)``
    - ``GetNetworkConfig(network_id)`` -> config bytes (hex)
    - ``ListNetworks()`` -> JSON array of network ids
    - ``SetVerificationPolicy(network_id, expression)``
    - ``GetVerificationPolicy(network_id)`` -> expression string
    - ``ValidateProof(source_network, address, args_json, nonce,
      data_hash_hex, proof_json)`` -> b"OK" (raises on any failure) and
      consumes the nonce
    - ``ValidateForeignCertificate(network_id, cert_hex)`` -> b"OK"
    """

    name = CMDAC_NAME

    def __init__(self) -> None:
        self._scheme = AttestationProofScheme()

    def invoke(self, stub: ChaincodeStub) -> bytes:
        function = stub.function
        if function == "init":
            return b"ok"
        handler = {
            "RecordNetworkConfig": self._record_network_config,
            "GetNetworkConfig": self._get_network_config,
            "ListNetworks": self._list_networks,
            "SetVerificationPolicy": self._set_verification_policy,
            "GetVerificationPolicy": self._get_verification_policy,
            "ValidateProof": self._validate_proof,
            "ValidateForeignCertificate": self._validate_foreign_certificate,
        }.get(function)
        if handler is None:
            raise ChaincodeError(f"CMDAC has no function {function!r}")
        return handler(stub)

    # -- configuration management ------------------------------------------------

    def _record_network_config(self, stub: ChaincodeStub) -> bytes:
        network_id, config_hex = require_args(stub, 2)
        try:
            config = NetworkConfigMsg.decode(bytes.fromhex(config_hex))
        except Exception as exc:
            raise ConfigurationError(f"undecodable network config: {exc}") from exc
        if config.network_id != network_id:
            raise ConfigurationError(
                f"config is for network {config.network_id!r}, not {network_id!r}"
            )
        if not config.organizations:
            raise ConfigurationError(
                f"config for {network_id!r} lists no organizations"
            )
        org_roots_from_config(config)  # reject malformed root certificates early
        stub.put_state(_CONFIG_PREFIX + network_id, bytes.fromhex(config_hex))
        stub.set_event("NetworkConfigRecorded", network_id.encode("utf-8"))
        return b"ok"

    def _load_config(self, stub: ChaincodeStub, network_id: str) -> NetworkConfigMsg:
        raw = stub.get_state(_CONFIG_PREFIX + network_id)
        if raw is None:
            raise ConfigurationError(
                f"no configuration recorded for foreign network {network_id!r}"
            )
        return NetworkConfigMsg.decode(raw)

    def _get_network_config(self, stub: ChaincodeStub) -> bytes:
        (network_id,) = require_args(stub, 1)
        raw = stub.get_state(_CONFIG_PREFIX + network_id)
        if raw is None:
            raise ConfigurationError(
                f"no configuration recorded for foreign network {network_id!r}"
            )
        return raw.hex().encode("ascii")

    def _list_networks(self, stub: ChaincodeStub) -> bytes:
        entries = stub.get_state_by_range(_CONFIG_PREFIX, _CONFIG_PREFIX + "￿")
        networks = [key[len(_CONFIG_PREFIX):] for key, _ in entries]
        return canonical_json(networks)

    # -- verification policies ------------------------------------------------------

    def _set_verification_policy(self, stub: ChaincodeStub) -> bytes:
        network_id, expression = require_args(stub, 2)
        parse_verification_policy(expression)  # reject malformed policies
        stub.put_state(_POLICY_PREFIX + network_id, expression.encode("utf-8"))
        return b"ok"

    def _get_verification_policy(self, stub: ChaincodeStub) -> bytes:
        (network_id,) = require_args(stub, 1)
        raw = stub.get_state(_POLICY_PREFIX + network_id)
        if raw is None:
            raise ConfigurationError(
                f"no verification policy recorded for network {network_id!r}"
            )
        return raw

    # -- data acceptance ---------------------------------------------------------------

    def _validate_proof(self, stub: ChaincodeStub) -> bytes:
        (
            source_network,
            address_text,
            args_json,
            nonce,
            data_hash_hex,
            proof_json,
        ) = require_args(stub, 6)
        address = parse_address(address_text)
        if address.network != source_network:
            raise ProofError(
                f"address {address_text!r} does not belong to source network "
                f"{source_network!r}"
            )
        try:
            expected_args = from_canonical_json(args_json.encode("utf-8"))
        except ValueError as exc:
            raise ProofError(f"args_json is not valid JSON: {exc}") from exc
        if not isinstance(expected_args, list):
            raise ProofError("args_json must be a JSON array of strings")

        config = self._load_config(stub, source_network)
        org_roots = org_roots_from_config(config)
        policy_raw = stub.get_state(_POLICY_PREFIX + source_network)
        if policy_raw is None:
            raise ProofError(
                f"no verification policy recorded for network {source_network!r}"
            )
        policy = parse_verification_policy(policy_raw.decode("utf-8"))

        bundle = ProofBundle.from_json(proof_json)
        self._scheme.validate_bundle(
            bundle,
            expected_network=source_network,
            expected_address=address,
            expected_args=[str(a) for a in expected_args],
            expected_nonce=nonce,
            expected_data_hash=data_hash_hex,
            policy=policy,
            org_roots=org_roots,
        )

        # Replay protection: consume the nonce on the ledger (§4.3).
        nonce_key = f"{_NONCE_PREFIX}{source_network}/{nonce}"
        if stub.get_state(nonce_key) is not None:
            raise ReplayError(
                f"nonce {nonce!r} from network {source_network!r} was already "
                f"consumed: replayed proof rejected"
            )
        stub.put_state(nonce_key, b"consumed")
        stub.set_event("ProofAccepted", f"{source_network}/{nonce}".encode("utf-8"))
        return b"OK"

    # -- foreign certificate validation (used by the source-side ECC) ---------------------

    def _validate_foreign_certificate(self, stub: ChaincodeStub) -> bytes:
        network_id, cert_hex = require_args(stub, 2)
        config = self._load_config(stub, network_id)
        org_roots = org_roots_from_config(config)
        try:
            certificate = Certificate.from_bytes(bytes.fromhex(cert_hex))
        except Exception as exc:
            raise ChaincodeError(f"unparseable foreign certificate: {exc}") from exc
        root = org_roots.get(certificate.subject.organization)
        if root is None:
            raise ChaincodeError(
                f"organization {certificate.subject.organization!r} is not part "
                f"of the recorded configuration for network {network_id!r}"
            )
        validate_chain(certificate, [root])
        return b"OK"
