"""Platform ports of the system contracts for Corda-like and Quorum-like networks.

"To extend our protocol to other permissioned blockchains, the relay
service ... can be directly reused ... The system contracts need
platform-specific implementations. ... The functions served by these
contracts will remain the same" (§5).

:class:`InteropPort` re-implements the ECC + CMDAC *functions* (access
rules over ``<network, org, contract, function>`` tuples, foreign-config
records, verification policies, foreign-certificate validation, response
sealing) as a node-attached service, which is how a platform without
Fabric-style chaincode would host them. The Fabric implementation lives in
:mod:`repro.interop.contracts.ecc` / ``cmdac`` as real chaincode.
"""

from __future__ import annotations

from repro.crypto.certs import Certificate, validate_chain
from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, ConfigurationError
from repro.interop.contracts.cmdac import org_roots_from_config
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import seal_result
from repro.proto.messages import NetworkConfigMsg

_WILDCARD = "*"


class InteropPort:
    """Exposure-control + configuration-management state for one network.

    The same rule granularity and semantics as the Fabric ECC/CMDAC, held
    in platform-native service state (e.g. Corda network parameters or a
    Quorum precompile) rather than chaincode world state.
    """

    def __init__(self, network_id: str) -> None:
        self.network_id = network_id
        self._rules: set[tuple[str, str, str, str]] = set()
        self._foreign_configs: dict[str, NetworkConfigMsg] = {}
        self._verification_policies: dict[str, str] = {}

    # -- configuration management (CMDAC functions) ------------------------------

    def record_network_config(self, config: NetworkConfigMsg) -> None:
        if not config.network_id:
            raise ConfigurationError("network config carries no network id")
        org_roots_from_config(config)  # reject malformed roots early
        self._foreign_configs[config.network_id] = config

    def get_network_config(self, network_id: str) -> NetworkConfigMsg:
        config = self._foreign_configs.get(network_id)
        if config is None:
            raise ConfigurationError(
                f"no configuration recorded for foreign network {network_id!r}"
            )
        return config

    def set_verification_policy(self, network_id: str, expression: str) -> None:
        parse_verification_policy(expression)
        self._verification_policies[network_id] = expression

    def get_verification_policy(self, network_id: str) -> str:
        expression = self._verification_policies.get(network_id)
        if expression is None:
            raise ConfigurationError(
                f"no verification policy recorded for network {network_id!r}"
            )
        return expression

    def validate_foreign_certificate(
        self, network_id: str, certificate: Certificate
    ) -> None:
        config = self.get_network_config(network_id)
        roots = org_roots_from_config(config)
        root = roots.get(certificate.subject.organization)
        if root is None:
            raise ConfigurationError(
                f"organization {certificate.subject.organization!r} is not part "
                f"of the recorded configuration for network {network_id!r}"
            )
        validate_chain(certificate, [root])

    # -- exposure control (ECC functions) --------------------------------------------

    def add_access_rule(
        self, network: str, org: str, contract: str, function: str
    ) -> None:
        self._rules.add((network, org, contract, function))

    def remove_access_rule(
        self, network: str, org: str, contract: str, function: str
    ) -> None:
        self._rules.discard((network, org, contract, function))

    def list_access_rules(self) -> list[tuple[str, str, str, str]]:
        return sorted(self._rules)

    def check_access(
        self,
        requesting_network: str,
        requesting_org: str,
        contract: str,
        function: str,
        creator: Certificate | None,
    ) -> None:
        if creator is None:
            raise AccessDeniedError("interop request carries no creator certificate")
        if creator.subject.organization != requesting_org:
            raise AccessDeniedError(
                f"creator certificate belongs to org "
                f"{creator.subject.organization!r}, not {requesting_org!r}"
            )
        self.validate_foreign_certificate(requesting_network, creator)
        candidates = [
            (requesting_network, requesting_org, contract, function),
            (requesting_network, requesting_org, contract, _WILDCARD),
            (requesting_network, _WILDCARD, contract, function),
            (requesting_network, _WILDCARD, contract, _WILDCARD),
        ]
        if not any(candidate in self._rules for candidate in candidates):
            raise AccessDeniedError(
                f"exposure control denied <{requesting_network}, "
                f"{requesting_org}, {contract}, {function}>: no matching rule"
            )

    # -- response sealing (ECC SealResponse) --------------------------------------------

    def seal(
        self, plaintext: bytes, client_key: PublicKey | None, confidential: bool
    ) -> bytes:
        return seal_result(plaintext, client_key, confidential)
