"""Bootstrapping interoperability onto existing Fabric networks.

The paper stresses that "existing blockchain deployments can be adapted
for interoperation" with minimal, one-time effort (§1, §5). This module
is that adaptation path:

- :func:`enable_fabric_interop` deploys the two system contracts (ECC and
  CMDAC) onto an existing network and registers the interop endorsement
  plugin on its peers — no change to the network's protocol or peers'
  normal operation.
- :func:`create_fabric_relay` stands up a relay fronting the network.
- :func:`link_networks` performs the §3.3 initialization: each network
  records the other's identity configuration and a verification policy on
  its own ledger, through its own consensus.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.fabric.identity import Identity
from repro.fabric.network import FabricNetwork
from repro.fabric.peer import Peer, Proposal
from repro.fabric.state import ReadWriteSet
from repro.interop.contracts import (
    CMDAC_NAME,
    ConfigAndDataAcceptanceChaincode,
    ECC_NAME,
    ExposureControlChaincode,
)
from repro.interop.drivers.fabric_driver import (
    INTEROP_PLUGIN,
    INTEROP_TRANSIENT_KEY,
    FabricDriver,
)
from repro.interop.discovery import DiscoveryService, InMemoryRegistry
from repro.interop.policy import all_orgs_policy
from repro.interop.proofs import AttestationProofScheme
from repro.interop.relay import RateLimiter, RelayService
from repro.store import open_store
from repro.crypto.keys import PublicKey
from repro.proto.address import CrossNetworkAddress
from repro.utils.encoding import from_canonical_json


def _consortium_policy_expression(network: FabricNetwork) -> str:
    """Endorsement policy requiring a peer of every org (consensual writes)."""
    orgs = sorted(network.organizations)
    if len(orgs) == 1:
        return f"'{orgs[0]}.peer'"
    principals = ", ".join(f"'{org}.peer'" for org in orgs)
    return f"AND({principals})"


def make_interop_endorsement_plugin(network_id: str):
    """Build the custom endorsement logic of §4.3.

    Replaces the normal endorsement signature for relay queries: the peer
    signs proof metadata (including the sealed result) and then encrypts
    the signed metadata with the requesting client's public key, so that a
    malicious relay can neither read nor exfiltrate a verifiable proof.
    The returned bytes are a serialized :class:`repro.proto.Attestation`.
    """
    scheme = AttestationProofScheme()

    def plugin(peer: Peer, proposal: Proposal, result: bytes, rwset: ReadWriteSet) -> bytes:
        raw_context = proposal.transient.get(INTEROP_TRANSIENT_KEY)
        if raw_context is None:
            raise ValueError("interop endorsement requires the interop context")
        context = from_canonical_json(raw_context)
        address = CrossNetworkAddress(
            network=context["address"]["network"],
            ledger=context["address"]["ledger"],
            contract=context["address"]["contract"],
            function=context["address"]["function"],
        )
        confidential = bool(context["confidential"])
        client_key = None
        if confidential:
            client_key = PublicKey.from_bytes(bytes.fromhex(context["client_pubkey"]))
        attestation = scheme.generate_attestation(
            peer_identity=peer.identity,
            network=network_id,
            address=address,
            args=list(context["args"]),
            nonce=context["nonce"],
            result_envelope=result,
            client_key=client_key,
            confidential=confidential,
            timestamp=proposal.timestamp,
        )
        return attestation.encode()

    return plugin


def enable_fabric_interop(network: FabricNetwork, admin: Identity) -> None:
    """Deploy ECC + CMDAC and register the interop endorsement plugin.

    This is the one-time, protocol-preserving augmentation of §4: system
    contracts "can be implemented and deployed in the same way as
    application contracts" and the endorsement customization uses Fabric's
    pluggable endorsement (no peer code changes).
    """
    policy = _consortium_policy_expression(network)
    network.deploy_chaincode(ExposureControlChaincode(), policy, initializer=admin)
    network.deploy_chaincode(
        ConfigAndDataAcceptanceChaincode(), policy, initializer=admin
    )
    plugin = make_interop_endorsement_plugin(network.name)
    for peer in network.peers:
        peer.register_endorsement_plugin(INTEROP_PLUGIN, plugin)


def create_fabric_relay(
    network: FabricNetwork,
    discovery: DiscoveryService,
    rate_limiter: RateLimiter | None = None,
    relay_id: str | None = None,
    register: bool = True,
    middleware: Sequence | None = None,
    state_dir: "str | Path | None" = None,
) -> RelayService:
    """Stand up a relay service fronting ``network``.

    With ``register`` (and an :class:`InMemoryRegistry`), the relay is
    registered for discovery; deploy several relays for one network to get
    the paper's redundant-relay DoS mitigation. ``middleware`` installs
    interceptors (see :mod:`repro.api.middleware`) after the legacy
    ``rate_limiter`` shim, in the given order. ``state_dir`` is the
    ``--state-dir`` deployment option: ``None`` keeps the volatile
    default, a path makes the relay durable (``repro.store.open_store``)
    and immediately :meth:`~RelayService.recover`\\ s any state already
    journaled there.
    """
    relay = RelayService(
        network_id=network.name,
        discovery=discovery,
        clock=network.clock,
        rate_limiter=rate_limiter,
        relay_id=relay_id,
        store=open_store(state_dir),
    )
    if middleware:
        relay.use(*middleware)
    relay.register_driver(FabricDriver(network))
    if state_dir is not None:
        relay.recover()  # re-open event taps journaled by a predecessor
    if register and isinstance(discovery, InMemoryRegistry):
        discovery.register(network.name, relay)
    return relay


def create_interop_gateway(
    identity: Identity,
    relay: RelayService,
    network_id: str,
    ledger_gateway=None,
):
    """Stand up the application-facing :class:`repro.api.InteropGateway`.

    Convenience mirror of :func:`create_fabric_relay` for the destination
    side; imports lazily so :mod:`repro.interop` stays importable without
    the api layer.
    """
    from repro.api.gateway import InteropGateway

    return InteropGateway(
        identity, relay, network_id, ledger_gateway=ledger_gateway
    )


def record_foreign_network(
    local: FabricNetwork,
    admin: Identity,
    foreign: FabricNetwork,
    verification_policy: str | None = None,
) -> None:
    """Record a foreign network's config + verification policy locally.

    Both records go through the local network's consensus (they are
    ordinary CMDAC transactions), implementing the §3.3 initialization.
    The default verification policy requires an attestation from every
    organization of the foreign network.
    """
    config_hex = foreign.export_config().encode().hex()
    result = local.gateway.submit(
        admin, CMDAC_NAME, "RecordNetworkConfig", [foreign.name, config_hex]
    )
    if not result.committed:
        raise RuntimeError(
            f"recording config of {foreign.name!r} on {local.name!r} failed: "
            f"{result.validation_code.value}"
        )
    expression = verification_policy or all_orgs_policy(
        foreign.organizations
    ).expression()
    result = local.gateway.submit(
        admin, CMDAC_NAME, "SetVerificationPolicy", [foreign.name, expression]
    )
    if not result.committed:
        raise RuntimeError(
            f"recording verification policy for {foreign.name!r} on "
            f"{local.name!r} failed: {result.validation_code.value}"
        )


def link_networks(
    network_a: FabricNetwork,
    admin_a: Identity,
    network_b: FabricNetwork,
    admin_b: Identity,
    policy_a_about_b: str | None = None,
    policy_b_about_a: str | None = None,
) -> None:
    """Mutually record configurations and verification policies (§3.3).

    "We assume that interoperating networks have a priori knowledge of each
    others' identities and configurations, recorded on their ledgers."
    """
    record_foreign_network(network_a, admin_a, network_b, policy_a_about_b)
    record_foreign_network(network_b, admin_b, network_a, policy_b_about_a)
