"""Cross-network transaction invocation (the §5 extension).

"The query protocol presented in this paper can be easily extended to
enable cross-network chaincode invocations. While the sequence of steps is
expected to be different, the relay service, system contracts, and
application client support described earlier can be reused directly."

This module is that extension. A cross-network *transaction* reuses the
query machinery end to end — addressing, exposure control, relays,
attestation proofs — with two differences:

1. the source driver routes the request through the source network's
   normal endorse-order-commit pipeline (under a dedicated local *invoker*
   identity, since the foreign client is not a source-network member), and
2. the returned attestations cover the *committed* outcome: the metadata
   embeds the transaction id, block number and validation code alongside
   the result, so the destination can verify that the update really
   entered the source ledger.

Exposure control uses the same ``<network, org, chaincode, function>``
rules — a governance decision must whitelist each remotely-invokable
function, exactly as for queries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import AccessDeniedError, ProofError, RelayError, ReproError
from repro.fabric.identity import Identity
from repro.fabric.network import FabricNetwork
from repro.interop.client import InteropClient
from repro.interop.drivers.base import NetworkDriver
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme, decrypt_attestation, seal_result
from repro.crypto.certs import Certificate, validate_chain
from repro.crypto.keys import PublicKey
from repro.proto.address import CrossNetworkAddress, parse_address
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    Attestation,
    AuthInfo,
    NetworkAddressMsg,
    NetworkQuery,
    QueryResponse,
    VerificationPolicyMsg,
)
from repro.utils.encoding import canonical_json, from_canonical_json
from repro.utils.ids import random_id

from repro.proto.messages import INVOCATION_TRANSACTION

# Legacy alias: the invocation discriminator now lives on the wire
# (NetworkQuery.invocation) so batch envelopes can mix members.
INVOKE_TRANSACTION = INVOCATION_TRANSACTION


@dataclass
class RemoteTransactionResult:
    """Outcome of a cross-network transaction."""

    address: str
    args: list[str]
    result: bytes
    tx_id: str
    block_number: int
    nonce: str
    attesting_orgs: list[str]


def check_remote_invocation_exposure(
    network: FabricNetwork,
    invoker: Identity,
    auth: AuthInfo | None,
    contract: str,
    function: str,
) -> None:
    """ECC-gate and authenticate one remote invocation on a Fabric network.

    The same governance gate remote *queries* pass, applied to the other
    side-effecting verbs (transactions, asset lock/claim/unlock): the
    foreign requestor must present a certificate chaining to the
    CMDAC-recorded configuration of its claimed network, and an ECC rule
    must whitelist ``<network, org, contract, function>``. Raises
    :class:`AccessDeniedError` otherwise. ``invoker`` is the designated
    local identity used for the ledger reads.
    """
    if auth is None or not auth.certificate:
        raise AccessDeniedError("remote invocation carries no certificate")
    creator = Certificate.from_bytes(auth.certificate)
    if creator.subject.organization != auth.requesting_org:
        raise AccessDeniedError(
            f"certificate org {creator.subject.organization!r} does not "
            f"match claimed org {auth.requesting_org!r}"
        )
    rules_raw = network.gateway.evaluate(invoker, "ecc", "ListAccessRules", [])
    rules = {tuple(rule) for rule in json.loads(rules_raw)}
    candidates = {
        (auth.requesting_network, auth.requesting_org, contract, function),
        (auth.requesting_network, auth.requesting_org, contract, "*"),
        (auth.requesting_network, "*", contract, function),
        (auth.requesting_network, "*", contract, "*"),
    }
    if not candidates & rules:
        raise AccessDeniedError(
            f"exposure control denied remote invocation "
            f"<{auth.requesting_network}, {auth.requesting_org}, "
            f"{contract}, {function}>"
        )
    # Authenticate the foreign certificate against recorded config.
    config_hex = network.gateway.evaluate(
        invoker, "cmdac", "GetNetworkConfig", [auth.requesting_network]
    )
    from repro.interop.contracts.cmdac import org_roots_from_config
    from repro.proto.messages import NetworkConfigMsg

    config = NetworkConfigMsg.decode(bytes.fromhex(config_hex.decode("ascii")))
    roots = org_roots_from_config(config)
    root = roots.get(creator.subject.organization)
    if root is None:
        raise AccessDeniedError(
            f"org {creator.subject.organization!r} not in recorded config "
            f"of {auth.requesting_network!r}"
        )
    validate_chain(creator, [root])


class FabricTransactionDriver(NetworkDriver):
    """Source-side driver for remote *transactions* on a Fabric network.

    Deployed alongside the query driver under the same relay. The
    ``invoker`` identity is the network's designated local submitter for
    remote requests (a governance choice, like the exposure rules).
    """

    platform = "fabric"
    supports_transactions = True
    #: Transactions in one batch commit sequentially: concurrent submission
    #: would race MVCC validation for overlapping keys, and envelope-level
    #: ordering is part of the batch contract.
    batch_concurrency = 1

    def __init__(self, network: FabricNetwork, invoker: Identity) -> None:
        super().__init__(network.name + "#tx")
        self._network = network
        self._invoker = invoker
        self._scheme = AttestationProofScheme()

    def _check_exposure(self, query: NetworkQuery, address: CrossNetworkAddress) -> None:
        """Remote transactions pass the same ECC gate as remote queries."""
        check_remote_invocation_exposure(
            self._network, self._invoker, query.auth, address.contract, address.function
        )

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        """Legacy route: ``MSG_KIND_QUERY_REQUEST`` to the ``#tx``
        pseudo-network executes the transaction (pre-gateway wire shape)."""
        return self.execute_transaction(query)

    def execute_transaction(self, query: NetworkQuery) -> QueryResponse:
        address_msg = query.address
        if address_msg is None:
            return self._error(query, "transaction request has no address")
        address = CrossNetworkAddress(
            network=address_msg.network.removesuffix("#tx"),
            ledger=address_msg.ledger,
            contract=address_msg.contract,
            function=address_msg.function,
        )
        try:
            policy = parse_verification_policy(query.policy.expression)
        except (ReproError, AttributeError) as exc:
            return self._error(query, f"malformed verification policy: {exc}")
        try:
            self._check_exposure(query, address)
        except AccessDeniedError as exc:
            return self._denied(query, str(exc))
        except ReproError as exc:
            return self._error(query, str(exc))

        try:
            submit = self._network.gateway.submit(
                self._invoker, address.contract, address.function, list(query.args)
            )
        except ReproError as exc:
            return self._error(query, f"source transaction failed: {exc}")
        if not submit.committed:
            return self._error(
                query,
                f"source transaction invalidated: {submit.validation_code.value}",
            )

        # Attest the committed outcome under the verification policy.
        available = [(peer.org, peer.peer_id) for peer in self._network.peers]
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query, f"policy {policy.expression()} unsatisfiable on this network"
            )
        client_key = (
            PublicKey.from_bytes(query.auth.public_key) if query.confidential else None
        )
        outcome = canonical_json(
            {
                "result": submit.result.hex(),
                "tx_id": submit.tx_id,
                "block_number": submit.block_number,
                "validation_code": submit.validation_code.value,
            }
        )
        envelope = seal_result(outcome, client_key, query.confidential)
        attestations: list[Attestation] = []
        for org, peer_id in selection:
            peer = self._network.peer(peer_id)
            # Each attesting peer confirms the tx is on ITS ledger replica.
            if not peer.ledger.contains_tx(submit.tx_id):
                return self._error(
                    query, f"peer {peer_id!r} has not committed {submit.tx_id!r}"
                )
            attestations.append(
                self._scheme.generate_attestation(
                    peer_identity=peer.identity,
                    network=self._network.name,
                    address=address,
                    args=list(query.args),
                    nonce=query.nonce,
                    result_envelope=envelope,
                    client_key=client_key,
                    confidential=query.confidential,
                    timestamp=self._network.clock.now(),
                )
            )
        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response.result_cipher = envelope
        else:
            response.result_plain = envelope
        return response


@dataclass
class PreparedTransaction:
    """A fully-built wire transaction awaiting transport.

    The front half of a cross-network transaction, mirroring
    :class:`repro.interop.client.PreparedQuery` so the gateway's pipelined
    executors can prepare many transactions, ship them (singly or as batch
    members), and finish each reply with
    :meth:`RemoteTransactionClient.finalize_transaction`.
    """

    address_text: str
    address: CrossNetworkAddress
    args: list[str]
    nonce: str
    query: NetworkQuery
    policy_expression: str
    confidential: bool

    @property
    def target_network(self) -> str:
        return self.address.network


class RemoteTransactionClient:
    """Application-facing API for cross-network transactions.

    Reuses the interop client's relay, identity, and decryption machinery
    ("the relay service, system contracts, and application client support
    ... can be reused directly", §5). Split into
    :meth:`prepare_transaction` / :meth:`finalize_transaction` halves so
    the gateway can pipeline and batch transactions exactly like queries;
    :meth:`remote_transact` remains as the synchronous shim over them.
    """

    def __init__(self, interop_client: InteropClient, relay=None) -> None:
        self._client = interop_client
        self._relay = relay if relay is not None else interop_client.relay

    @property
    def client(self) -> InteropClient:
        return self._client

    @property
    def relay(self):
        return self._relay

    def prepare_transaction(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
    ) -> PreparedTransaction:
        """Build the wire transaction without sending it.

        With ``policy=None`` the locally-recorded CMDAC verification policy
        for the target network is used, exactly as for queries.
        """
        address = parse_address(address_text)
        policy_expression = (
            policy if policy is not None
            else self._client.lookup_policy(address.network)
        )
        identity = self._client.identity
        nonce = random_id("txnonce-")
        query = NetworkQuery(
            version=PROTOCOL_VERSION,
            address=NetworkAddressMsg(
                network=address.network,
                ledger=address.ledger,
                contract=address.contract,
                function=address.function,
            ),
            args=list(args),
            nonce=nonce,
            auth=AuthInfo(
                requesting_network=self._client.network_id,
                requesting_org=identity.org,
                requestor=identity.name,
                certificate=identity.certificate.to_bytes(),
                public_key=identity.keypair.public.to_bytes(),
            ),
            policy=VerificationPolicyMsg(expression=policy_expression),
            confidential=confidential,
            invocation=INVOCATION_TRANSACTION,
        )
        return PreparedTransaction(
            address_text=address_text,
            address=address,
            args=list(args),
            nonce=nonce,
            query=query,
            policy_expression=policy_expression,
            confidential=confidential,
        )

    def finalize_transaction(
        self, prepared: PreparedTransaction, response: QueryResponse
    ) -> RemoteTransactionResult:
        """Decrypt and verify one transaction reply.

        Checks that the source committed the transaction (validation code),
        that every attestation binds to this request's nonce, and that the
        attesting organizations satisfy the verification policy.
        """
        from repro.interop.proofs import unseal_result
        from repro.proto.messages import STATUS_ACCESS_DENIED

        identity = self._client.identity
        confidential = prepared.confidential
        if response.status == STATUS_ACCESS_DENIED:
            raise AccessDeniedError(response.error)
        if response.status != STATUS_OK:
            raise RelayError(f"remote transaction failed: {response.error}")
        envelope = response.result_cipher if confidential else response.result_plain
        outcome_bytes = unseal_result(
            envelope, identity.keypair.private if confidential else None
        )
        outcome = from_canonical_json(outcome_bytes)
        if outcome.get("validation_code") != "VALID":
            raise ProofError(
                f"source network reports the transaction as "
                f"{outcome.get('validation_code')!r}"
            )
        attesting_orgs = []
        for attestation in response.attestations:
            signed = decrypt_attestation(
                attestation, identity.keypair.private if confidential else None
            )
            metadata = signed.metadata()
            if metadata.nonce != prepared.nonce:
                raise ProofError("attestation nonce mismatch on remote transaction")
            attesting_orgs.append(metadata.org)
        if not parse_verification_policy(prepared.policy_expression).satisfied_by(
            [(org, f"?.{org}") for org in attesting_orgs]
        ):
            raise ProofError(
                f"attesting orgs {sorted(attesting_orgs)} do not satisfy "
                f"{prepared.policy_expression}"
            )
        return RemoteTransactionResult(
            address=prepared.address_text,
            args=list(prepared.args),
            result=bytes.fromhex(outcome["result"]),
            tx_id=outcome["tx_id"],
            block_number=int(outcome["block_number"]),
            nonce=prepared.nonce,
            attesting_orgs=sorted(attesting_orgs),
        )

    def remote_transact(
        self,
        address_text: str,
        args: list[str],
        policy: str | None = None,
        confidential: bool = True,
    ) -> RemoteTransactionResult:
        """Synchronous single transaction (legacy shim over the halves)."""
        prepared = self.prepare_transaction(address_text, args, policy, confidential)
        response = self._relay.remote_transact(prepared.query)
        return self.finalize_transaction(prepared, response)


def enable_remote_transactions(
    network: FabricNetwork, relay, invoker: Identity, discovery=None
) -> None:
    """Attach a transaction driver for ``network`` to its relay.

    The driver answers to the pseudo-network ``<name>#tx`` so queries and
    transactions route independently; with an in-memory ``discovery`` the
    relay is registered under that name too.
    """
    relay.register_driver(FabricTransactionDriver(network, invoker))
    from repro.interop.discovery import InMemoryRegistry

    if discovery is not None and isinstance(discovery, InMemoryRegistry):
        discovery.register(network.name + "#tx", relay)
