"""Cross-network event publish/subscribe (the §2 third primitive).

Networks "should expose the following operations for interoperability:
(i) query ... (ii) carry out transactions ... and (iii) publish and
subscribe to events" (§2); cross-network events are named future work in
§7. This module implements the notify-then-verify pattern:

- A destination application *subscribes* through its local relay to named
  chaincode events of a remote network. The subscription is access-
  controlled by the source ECC (rule object ``event:<name>``).
- The source relay bridges its network's event hub to remote subscribers,
  forwarding compact, *unauthenticated* notifications (block number,
  transaction id, payload).
- Because notifications are not consensus-backed, the subscriber turns a
  notification into *trusted* data with a follow-up proof-carrying query —
  the helper :meth:`RemoteEventSubscription.verify_with_query` wires that
  up. This keeps the trust argument identical to the paper's: only
  attestation proofs are believed.

Since the gateway redesign, remote delivery rides relay envelopes
(``MSG_KIND_EVENT_SUBSCRIBE`` / ``MSG_KIND_EVENT_PUBLISH`` /
``MSG_KIND_EVENT_UNSUBSCRIBE``) through the same discovery, failover, and
interceptor chain as queries — see :meth:`RelayService.remote_subscribe`
and the :class:`repro.api.GatewaySession` / ``VerifiedEventStream``
surface. :func:`enable_relay_events` switches a network's relay driver on
for that path. The in-process :class:`EventBridge` below predates it and
is kept as a thin shim over the same exposure check
(:func:`check_event_exposure`) and hub tap (:func:`open_hub_tap`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AccessDeniedError, DiscoveryError
from repro.fabric.events import ChaincodeEvent
from repro.fabric.identity import Identity
from repro.fabric.network import FabricNetwork
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.utils.encoding import canonical_json, from_canonical_json
from repro.utils.ids import random_id


@dataclass(frozen=True)
class RemoteEventNotification:
    """An unauthenticated event notification from a remote network."""

    source_network: str
    chaincode: str
    name: str
    payload: bytes
    block_number: int
    tx_id: str

    def to_bytes(self) -> bytes:
        return canonical_json(
            {
                "source_network": self.source_network,
                "chaincode": self.chaincode,
                "name": self.name,
                "payload": self.payload.hex(),
                "block_number": self.block_number,
                "tx_id": self.tx_id,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RemoteEventNotification":
        decoded = from_canonical_json(data)
        return cls(
            source_network=decoded["source_network"],
            chaincode=decoded["chaincode"],
            name=decoded["name"],
            payload=bytes.fromhex(decoded["payload"]),
            block_number=int(decoded["block_number"]),
            tx_id=decoded["tx_id"],
        )


EventCallback = Callable[[RemoteEventNotification], None]


def check_event_exposure(
    network: FabricNetwork,
    reader: Identity,
    requesting_network: str,
    requesting_org: str,
    chaincode: str,
    name: str,
) -> None:
    """Gate one event subscription on the source ECC.

    Subscriptions use the same ``<network, org, chaincode, object>`` rule
    shape as queries and transactions, with the object ``event:<name>``
    (or ``event:*``) — a governance decision must whitelist each remotely
    observable event, mirroring data-exposure control.
    """
    rules_raw = network.gateway.evaluate(reader, "ecc", "ListAccessRules", [])
    rules = {tuple(rule) for rule in json.loads(rules_raw)}
    candidates = {
        (requesting_network, requesting_org, chaincode, f"event:{name}"),
        (requesting_network, requesting_org, chaincode, "event:*"),
        (requesting_network, "*", chaincode, f"event:{name}"),
        (requesting_network, "*", chaincode, "event:*"),
    }
    if not candidates & rules:
        raise AccessDeniedError(
            f"exposure control denied event subscription "
            f"<{requesting_network}, {requesting_org}, {chaincode}, "
            f"event:{name}>"
        )


@dataclass
class HubTap:
    """A closeable listener registration on a network's event hub.

    The hub offers no unregistration, so closing flips a flag the
    listener closure checks — the registration stays but goes inert.
    """

    network_id: str
    chaincode: str
    event_name: str
    active: bool = True

    def close(self) -> None:
        self.active = False


def open_hub_tap(
    network: FabricNetwork,
    chaincode: str,
    event_name: str,
    listener: EventCallback,
) -> HubTap:
    """Tap ``network``'s event hub, delivering wire-shape notifications.

    Each matching committed :class:`ChaincodeEvent` is normalized into a
    :class:`RemoteEventNotification` and handed to ``listener`` while the
    returned tap is open. Exposure control is the caller's job
    (:func:`check_event_exposure`) — the tap is mechanism, not policy.
    """
    tap = HubTap(network_id=network.name, chaincode=chaincode, event_name=event_name)

    def _fan_out(event: ChaincodeEvent) -> None:
        if not tap.active:
            return
        listener(
            RemoteEventNotification(
                source_network=network.name,
                chaincode=event.chaincode,
                name=event.name,
                payload=event.payload,
                block_number=event.block_number,
                tx_id=event.tx_id,
            )
        )

    network.event_hub.on_chaincode_event(chaincode, event_name, _fan_out)
    return tap


def enable_relay_events(
    network: FabricNetwork, relay, reader: Identity
) -> None:
    """Switch ``network``'s relay driver on for relay-side subscriptions.

    ``reader`` is the local identity the driver uses for ECC rule reads at
    subscribe time (a governance choice, like the transaction invoker).
    After this call the relay serves ``MSG_KIND_EVENT_SUBSCRIBE``
    envelopes for the network and pushes ``MSG_KIND_EVENT_PUBLISH``
    notifications to subscriber networks through discovery + failover.
    """
    driver = relay.driver_for(network.name)
    if driver is None:
        raise DiscoveryError(
            f"relay {relay.relay_id!r} has no driver for network "
            f"{network.name!r} to enable events on"
        )
    driver.enable_events(reader)


@dataclass
class RemoteEventSubscription:
    """A live subscription held by a destination application."""

    subscription_id: str
    source_network: str
    chaincode: str
    event_name: str
    notifications: list[RemoteEventNotification] = field(default_factory=list)
    callback: EventCallback | None = None

    def deliver(self, notification: RemoteEventNotification) -> None:
        self.notifications.append(notification)
        if self.callback is not None:
            self.callback(notification)

    def verify_with_query(
        self,
        client: InteropClient,
        address: str,
        args: list[str],
        policy: str | None = None,
    ) -> RemoteQueryResult:
        """Turn a notification into trusted data via a proof-backed query."""
        return client.remote_query(address, args, policy=policy)


class EventBridge:
    """Legacy in-process bridge from a network's event hub to subscribers.

    Predates the relay-envelope subscription path; kept as a thin shim
    over the shared exposure check (:func:`check_event_exposure`) and hub
    tap (:func:`open_hub_tap`) for callers wired before the
    :class:`~repro.api.GatewaySession` surface existed. New code should
    subscribe through the gateway so delivery rides discovery, failover,
    and the interceptor chain.
    """

    def __init__(self, network: FabricNetwork, admin_reader) -> None:
        self._network = network
        self._reader = admin_reader  # identity used for ECC rule reads
        self._taps: dict[str, HubTap] = {}  # subscription id -> live tap

    def subscribe(
        self,
        requesting_network: str,
        requesting_org: str,
        chaincode: str,
        event_name: str,
        callback: EventCallback | None = None,
    ) -> RemoteEventSubscription:
        """Register a remote subscriber (raises on exposure denial)."""
        check_event_exposure(
            self._network, self._reader,
            requesting_network, requesting_org, chaincode, event_name,
        )
        subscription = RemoteEventSubscription(
            subscription_id=random_id("sub-"),
            source_network=self._network.name,
            chaincode=chaincode,
            event_name=event_name,
            callback=callback,
        )
        self._taps[subscription.subscription_id] = open_hub_tap(
            self._network, chaincode, event_name, subscription.deliver
        )
        return subscription

    def unsubscribe(self, subscription: RemoteEventSubscription) -> None:
        tap = self._taps.pop(subscription.subscription_id, None)
        if tap is not None:
            tap.close()


class EventBridgeRegistry:
    """Destination-side lookup of source event bridges (like discovery)."""

    def __init__(self) -> None:
        self._bridges: dict[str, EventBridge] = {}

    def register(self, network_id: str, bridge: EventBridge) -> None:
        self._bridges[network_id] = bridge

    def lookup(self, network_id: str) -> EventBridge:
        bridge = self._bridges.get(network_id)
        if bridge is None:
            raise DiscoveryError(f"no event bridge registered for {network_id!r}")
        return bridge
