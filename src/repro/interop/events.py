"""Cross-network event publish/subscribe (the §2 third primitive).

Networks "should expose the following operations for interoperability:
(i) query ... (ii) carry out transactions ... and (iii) publish and
subscribe to events" (§2); cross-network events are named future work in
§7. This module implements the notify-then-verify pattern:

- A destination application *subscribes* through its local relay to named
  chaincode events of a remote network. The subscription is access-
  controlled by the source ECC (rule object ``event:<name>``).
- The source relay bridges its network's event hub to remote subscribers,
  forwarding compact, *unauthenticated* notifications (block number,
  transaction id, payload).
- Because notifications are not consensus-backed, the subscriber turns a
  notification into *trusted* data with a follow-up proof-carrying query —
  the helper :meth:`RemoteEventSubscription.verify_with_query` wires that
  up. This keeps the trust argument identical to the paper's: only
  attestation proofs are believed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AccessDeniedError, DiscoveryError
from repro.fabric.events import ChaincodeEvent
from repro.fabric.network import FabricNetwork
from repro.interop.client import InteropClient, RemoteQueryResult
from repro.utils.encoding import canonical_json, from_canonical_json
from repro.utils.ids import random_id


@dataclass(frozen=True)
class RemoteEventNotification:
    """An unauthenticated event notification from a remote network."""

    source_network: str
    chaincode: str
    name: str
    payload: bytes
    block_number: int
    tx_id: str

    def to_bytes(self) -> bytes:
        return canonical_json(
            {
                "source_network": self.source_network,
                "chaincode": self.chaincode,
                "name": self.name,
                "payload": self.payload.hex(),
                "block_number": self.block_number,
                "tx_id": self.tx_id,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RemoteEventNotification":
        decoded = from_canonical_json(data)
        return cls(
            source_network=decoded["source_network"],
            chaincode=decoded["chaincode"],
            name=decoded["name"],
            payload=bytes.fromhex(decoded["payload"]),
            block_number=int(decoded["block_number"]),
            tx_id=decoded["tx_id"],
        )


EventCallback = Callable[[RemoteEventNotification], None]


@dataclass
class RemoteEventSubscription:
    """A live subscription held by a destination application."""

    subscription_id: str
    source_network: str
    chaincode: str
    event_name: str
    notifications: list[RemoteEventNotification] = field(default_factory=list)
    callback: EventCallback | None = None

    def deliver(self, notification: RemoteEventNotification) -> None:
        self.notifications.append(notification)
        if self.callback is not None:
            self.callback(notification)

    def verify_with_query(
        self,
        client: InteropClient,
        address: str,
        args: list[str],
        policy: str | None = None,
    ) -> RemoteQueryResult:
        """Turn a notification into trusted data via a proof-backed query."""
        return client.remote_query(address, args, policy=policy)


class EventBridge:
    """Source-side: bridges a Fabric network's event hub to remote relays.

    Attached next to the network's relay. Subscriptions are checked
    against the ECC (rule ``<network, org, chaincode, event:<name>>``) at
    subscribe time, mirroring data-exposure governance.
    """

    def __init__(self, network: FabricNetwork, admin_reader) -> None:
        self._network = network
        self._reader = admin_reader  # identity used for ECC rule reads
        self._active: set[str] = set()  # live subscription ids

    def _check_exposure(
        self, requesting_network: str, requesting_org: str, chaincode: str, name: str
    ) -> None:
        rules_raw = self._network.gateway.evaluate(
            self._reader, "ecc", "ListAccessRules", []
        )
        rules = {tuple(rule) for rule in json.loads(rules_raw)}
        candidates = {
            (requesting_network, requesting_org, chaincode, f"event:{name}"),
            (requesting_network, requesting_org, chaincode, "event:*"),
            (requesting_network, "*", chaincode, f"event:{name}"),
            (requesting_network, "*", chaincode, "event:*"),
        }
        if not candidates & rules:
            raise AccessDeniedError(
                f"exposure control denied event subscription "
                f"<{requesting_network}, {requesting_org}, {chaincode}, "
                f"event:{name}>"
            )

    def subscribe(
        self,
        requesting_network: str,
        requesting_org: str,
        chaincode: str,
        event_name: str,
        callback: EventCallback | None = None,
    ) -> RemoteEventSubscription:
        """Register a remote subscriber (raises on exposure denial)."""
        self._check_exposure(requesting_network, requesting_org, chaincode, event_name)
        subscription = RemoteEventSubscription(
            subscription_id=random_id("sub-"),
            source_network=self._network.name,
            chaincode=chaincode,
            event_name=event_name,
            callback=callback,
        )
        # Register the concrete (chaincode, name) listener on the hub.
        self._active.add(subscription.subscription_id)
        self._network.event_hub.on_chaincode_event(
            chaincode,
            event_name,
            lambda event: self._fan_out_single(event, subscription),
        )
        return subscription

    def _fan_out_single(
        self, event: ChaincodeEvent, subscription: RemoteEventSubscription
    ) -> None:
        if subscription.subscription_id not in self._active:
            return  # unsubscribed; the hub listener is inert
        subscription.deliver(
            RemoteEventNotification(
                source_network=self._network.name,
                chaincode=event.chaincode,
                name=event.name,
                payload=event.payload,
                block_number=event.block_number,
                tx_id=event.tx_id,
            )
        )

    def unsubscribe(self, subscription: RemoteEventSubscription) -> None:
        self._active.discard(subscription.subscription_id)


class EventBridgeRegistry:
    """Destination-side lookup of source event bridges (like discovery)."""

    def __init__(self) -> None:
        self._bridges: dict[str, EventBridge] = {}

    def register(self, network_id: str, bridge: EventBridge) -> None:
        self._bridges[network_id] = bridge

    def lookup(self, network_id: str) -> EventBridge:
        bridge = self._bridges.get(network_id)
        if bridge is None:
            raise DiscoveryError(f"no event bridge registered for {network_id!r}")
        return bridge
