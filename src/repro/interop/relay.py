"""The relay service.

"Deployed within, and acting on behalf of, each network is a relay
service ... [it] serves requests for authentic data from applications by
fetching the data along with verifiable proofs from remote networks"
(§3.2). Design points reproduced here:

- relays exchange only *serialized* protocol messages
  (:class:`repro.proto.RelayEnvelope` framing);
- a relay holds *pluggable network drivers* for the network(s) it fronts
  and a *pluggable discovery service* for finding remote relays;
- the architecture "assumes minimal trust in the relay": a relay never
  sees plaintext results or decryptable proofs in confidential mode;
- availability: rate limiting sheds DoS load, and destination-side lookup
  returns all redundant relays of a network so callers fail over (§5);
- cross-cutting concerns (rate limiting, metrics, logging, caching) are
  *composable interceptors* installed with :meth:`RelayService.use`
  rather than hardwired into the request path — see
  :mod:`repro.api.middleware` for the stock interceptors.

Batching: a :data:`~repro.proto.messages.MSG_KIND_BATCH_REQUEST` envelope
carries N queries to one target network in a single round-trip, sharing one
discovery lookup and one failover loop, with the serving driver fanning the
members concurrently (:meth:`NetworkDriver.execute_batch`).

All three §2 primitives ride the same machinery: transactions travel as
``MSG_KIND_TRANSACT_REQUEST`` envelopes (and as ``invocation`` -marked
batch members) routed to a transaction-capable driver, and event
subscriptions as ``MSG_KIND_EVENT_SUBSCRIBE`` / ``_PUBLISH`` /
``_UNSUBSCRIBE`` envelopes — the source relay taps its network's event hub
and pushes notifications to the subscriber's relay through the very same
discovery lookup and failover loop used for queries.

Asset exchange (the §6 extension) adds the ``MSG_KIND_ASSET_LOCK`` /
``_CLAIM`` / ``_UNLOCK`` / ``_STATUS`` family: hash-time-locked commands
routed to an asset-capable driver (:mod:`repro.assets.ports`) and
answered with ``MSG_KIND_ASSET_ACK``, again over the same path.

Concurrency: a relay may be served from many threads at once (a
:class:`repro.net.RelayServer` runs :meth:`RelayService.handle_request`
on a worker-thread executor), so all shared mutable state — the
idempotency record, stats counters, the lazily-built interceptor chain,
and the subscription/sink tables — is lock-guarded, and side-effecting
envelopes execute exactly once per ``request_id`` even when duplicates
collide on different serve threads. Drivers fronting substrates that
cannot take concurrent load install a
:class:`~repro.api.SerializingInterceptor`.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import OrderedDict, deque
from typing import Callable, Sequence

from repro.errors import (
    AccessDeniedError,
    DiscoveryError,
    DoSError,
    ProtocolError,
    RelayError,
    RelayUnavailableError,
    UnsupportedCapabilityError,
)
from repro.interop.discovery import DiscoveryService
from repro.interop.drivers.base import NetworkDriver
from repro.proto.messages import (
    ASSET_COMMAND_KINDS,
    ERROR_KIND_CAPABILITY,
    ERROR_KIND_HEADER,
    INVOCATION_TRANSACTION,
    MSG_KIND_ASSET_ACK,
    MSG_KIND_ASSET_CLAIM,
    MSG_KIND_ASSET_LOCK,
    MSG_KIND_ASSET_STATUS,
    MSG_KIND_ASSET_UNLOCK,
    MSG_KIND_BATCH_REQUEST,
    MSG_KIND_BATCH_RESPONSE,
    MSG_KIND_ERROR,
    MSG_KIND_EVENT_ACK,
    MSG_KIND_EVENT_PUBLISH,
    MSG_KIND_EVENT_SUBSCRIBE,
    MSG_KIND_EVENT_UNSUBSCRIBE,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    MSG_KIND_TRANSACT_REQUEST,
    MSG_KIND_TRANSACT_RESPONSE,
    PROTOCOL_VERSION,
    SIDE_EFFECTING_HEADER,
    SIDE_EFFECTING_KINDS,
    STATUS_ACCESS_DENIED,
    STATUS_ERROR,
    STATUS_OK,
    AssetAckMsg,
    AssetCommandMsg,
    BatchQueryRequest,
    BatchQueryResponse,
    EventAck,
    EventNotificationMsg,
    EventSubscribeRequest,
    EventUnsubscribeRequest,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
)
from repro.ops.trace import activate, ensure_trace, from_headers, inject, new_trace, reply_headers
from repro.store import MemoryStore, StateStore
from repro.utils.clock import Clock, SystemClock
from repro.utils.ids import random_id

#: :class:`~repro.store.StateStore` namespaces the relay owns.
NS_IDEMPOTENCY = "relay/idempotency"
NS_SUBSCRIPTIONS = "relay/subscriptions"

#: Structured relay-layer logging (see :mod:`repro.ops.logging`); the
#: active :class:`~repro.ops.trace.TraceContext` is stamped on every
#: record by the ops log filter.
logger = logging.getLogger("repro.relay")


class RateLimiter:
    """A sliding-window request limiter (the relay's DoS self-protection).

    "DoS protection can also be built into the relay service, protecting
    the peers themselves from such attacks" (§5).
    """

    def __init__(self, max_requests: int, window_seconds: float, clock: Clock | None = None) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._timestamps: deque[float] = deque()
        self.rejected = 0

    def allow(self) -> bool:
        now = self._clock.now()
        with self._lock:
            while self._timestamps and now - self._timestamps[0] > self.window_seconds:
                self._timestamps.popleft()
            if len(self._timestamps) >= self.max_requests:
                self.rejected += 1
                return False
            self._timestamps.append(now)
            return True


class RelayStats:
    """Operational counters for a relay.

    A concurrently-serving relay updates these from many threads, so all
    mutations go through :meth:`bump` (a read-modify-write under one
    lock); plain attribute reads stay cheap and are at worst one bump
    stale, which is fine for operational counters. Exporters read the
    whole set atomically through :meth:`snapshot`.
    """

    _COUNTER_NAMES = (
        "requests_served",
        "requests_rejected",
        "requests_failed",
        "queries_sent",
        "failovers",
        "batches_served",
        "batches_sent",
        "transactions_sent",
        "transactions_served",
        "subscriptions_opened",
        "subscriptions_served",
        "events_published",
        "events_delivered",
        "events_dropped",
        "asset_commands_sent",
        "asset_commands_served",
        "duplicates_suppressed",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_served = 0
        self.requests_rejected = 0
        self.requests_failed = 0
        self.queries_sent = 0
        self.failovers = 0
        self.batches_served = 0
        self.batches_sent = 0
        self.transactions_sent = 0
        self.transactions_served = 0
        self.subscriptions_opened = 0  # destination side: live remote subs
        self.subscriptions_served = 0  # source side: subs this relay feeds
        self.events_published = 0  # source side: notifications pushed out
        self.events_delivered = 0  # destination side: notifications sunk
        self.events_dropped = 0  # source side: undeliverable notifications
        self.asset_commands_sent = 0  # destination side: HTLC verbs issued
        self.asset_commands_served = 0  # source side: HTLC verbs executed
        #: Source side: side-effecting envelopes answered from the
        #: idempotency cache instead of being re-executed.
        self.duplicates_suppressed = 0

    def bump(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to the counter called ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict[str, int]:
        """All counters, read atomically (one lock acquisition)."""
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTER_NAMES}


class RelayContext:
    """One inbound request as it travels the interceptor chain.

    Interceptors see the raw serialized request plus a best-effort decoded
    view: :attr:`envelope` is the parsed :class:`RelayEnvelope` (or ``None``
    when the bytes do not decode), so even a request that is about to be
    shed can be answered with a correlatable ``request_id``.
    """

    _UNSET = object()

    def __init__(self, relay: "RelayService", raw: bytes) -> None:
        self.relay = relay
        self.raw = raw
        #: Scratch space for interceptors to pass notes down the chain.
        self.metadata: dict[str, object] = {}
        self._envelope: object = self._UNSET
        self.decode_error: Exception | None = None

    @property
    def envelope(self) -> RelayEnvelope | None:
        """The decoded request envelope, or ``None`` if undecodable."""
        if self._envelope is self._UNSET:
            try:
                self._envelope = RelayEnvelope.decode(self.raw)
            except Exception as exc:  # noqa: BLE001 - best-effort peek: undecodable bytes are recorded for _dispatch to answer
                self._envelope = None
                self.decode_error = exc
        return self._envelope  # type: ignore[return-value]

    @property
    def request_id(self) -> str:
        """The peeked request id ('' when the envelope is undecodable)."""
        envelope = self.envelope
        return envelope.request_id if envelope is not None else ""

    @property
    def kind(self) -> int:
        envelope = self.envelope
        return envelope.kind if envelope is not None else 0

    def error_reply(self, message: str, retryable: bool) -> bytes:
        """A serialized error envelope correlated to this request."""
        return self.relay._error_envelope(self.request_id, message, retryable)


# An interceptor wraps the rest of the chain: it receives the request
# context and a continuation, and returns serialized response bytes.
RelayHandler = Callable[[RelayContext], bytes]
RelayInterceptor = Callable[[RelayContext, RelayHandler], bytes]


class _ServedSubscription:
    """Source-side record of one remote subscription this relay feeds."""

    def __init__(
        self,
        subscription_id: str,
        subscriber_network: str,
        driver: NetworkDriver,
        tap: object | None = None,
    ) -> None:
        self.subscription_id = subscription_id
        self.subscriber_network = subscriber_network
        self.driver = driver
        self.tap = tap


class RateLimitInterceptor:
    """The relay's DoS self-protection as a chain interceptor.

    Sheds load before any further processing, but answers with an error
    envelope that carries the peeked ``request_id`` so the caller can
    correlate the rejection to its in-flight request.
    """

    def __init__(self, limiter: RateLimiter) -> None:
        self.limiter = limiter

    def __call__(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        if not self.limiter.allow():
            ctx.relay.stats.bump("requests_rejected")
            return ctx.error_reply("rate limit exceeded: request shed", retryable=True)
        return call_next(ctx)


class RelayService:
    """One network's relay: serves local apps and answers remote relays.

    Durability: every piece of state a restarted relay must remember
    lives behind the ``store`` seam (:class:`repro.store.StateStore`) —
    the exactly-once idempotency record and the served-subscription
    table. The default :class:`~repro.store.MemoryStore` preserves
    process-lifetime semantics; wiring a
    :class:`~repro.store.SqliteStore` makes a crashed relay answer
    replayed side-effecting envelopes from the durable record and
    (after :meth:`recover`) re-open its event taps.

    Bounded eviction: the idempotency record keeps at most
    ``idempotency_capacity`` replies, evicted strictly
    oldest-recorded-first (FIFO by a monotonic sequence number that is
    persisted with each reply, so the eviction order — and therefore
    *which* duplicates are still suppressed — is identical before and
    after a restart). An evicted request_id's replay re-routes to the
    driver like a fresh request; deploy the capacity above the
    adversary's replay window.
    """

    def __init__(
        self,
        network_id: str,
        discovery: DiscoveryService,
        clock: Clock | None = None,
        rate_limiter: RateLimiter | None = None,
        relay_id: str | None = None,
        store: StateStore | None = None,
        idempotency_capacity: int = 1024,
    ) -> None:
        if idempotency_capacity < 1:
            raise ValueError("idempotency_capacity must be >= 1")
        self.network_id = network_id
        self.relay_id = relay_id or f"relay-{network_id}"
        self._discovery = discovery
        self._clock = clock or SystemClock()
        self._rate_limiter = rate_limiter
        self._drivers: dict[str, NetworkDriver] = {}
        self._interceptors: list[RelayInterceptor] = []
        self._chain: RelayHandler | None = None
        #: Guards the lazy interceptor-chain build against concurrent
        #: first requests (and against a concurrent ``use()``).
        self._chain_lock = threading.Lock()
        #: Guards the subscription/sink tables below.
        self._subscriptions_lock = threading.RLock()
        #: Source side: live subscriptions this relay feeds, by id.
        self._served_subscriptions: dict[str, _ServedSubscription] = {}
        #: Destination side: local delivery callbacks for subscriptions
        #: opened by this relay's applications, by subscription id.
        self._event_sinks: dict[str, Callable[[EventNotificationMsg], None]] = {}
        #: Exactly-once execution for side-effecting envelopes: a duplicate
        #: delivery of the same ``request_id`` (relay retry, adversarial
        #: replay, network-level duplication) is answered with the original
        #: reply instead of re-executing the command. Bounded FIFO.
        self._idempotency: OrderedDict[str, bytes] = OrderedDict()
        #: Guards the idempotency record; ``_in_flight`` additionally
        #: maps request_ids being executed *right now* to an event their
        #: concurrent duplicates wait on — check-then-execute without it
        #: would let two simultaneous copies of one request both miss the
        #: record and both commit.
        self._idempotency_lock = threading.Lock()
        self._in_flight: dict[str, threading.Event] = {}
        #: Kept as a plain (mutable) attribute for operational tuning;
        #: the constructor parameter is the supported wiring path.
        self.idempotency_capacity = idempotency_capacity
        #: Durable home for the idempotency record and the subscription
        #: table; MemoryStore by default (state dies with the process).
        self._store = store if store is not None else MemoryStore()
        #: Monotonic recording order for idempotency entries; persisted
        #: with each reply so FIFO eviction survives a restart.
        self._idempotency_seq = 0
        self._load_durable_state()
        self.stats = RelayStats()
        self.available = True  # toggled by availability experiments
        if rate_limiter is not None:
            # Legacy shim: the constructor-injected limiter becomes the
            # first interceptor of the chain.
            self.use(RateLimitInterceptor(rate_limiter))

    def _load_durable_state(self) -> None:
        """Rebuild the in-memory idempotency record from the store.

        Entries are ordered by their persisted sequence number so the
        restarted relay's FIFO eviction continues exactly where the
        crashed one stopped; anything beyond capacity (a restart with a
        smaller capacity) is dropped oldest-first, from disk too.
        """
        entries: list[tuple[int, str, bytes]] = []
        for key, value in self._store.scan(NS_IDEMPOTENCY):
            if len(value) < 8:
                continue  # unreadable row: treat as evicted
            entries.append((int.from_bytes(value[:8], "big"), key, value[8:]))
        entries.sort()
        overflow = (
            entries[: -self.idempotency_capacity]
            if len(entries) > self.idempotency_capacity
            else []
        )
        with self._idempotency_lock:
            for _, key, reply in entries[len(overflow):]:
                self._idempotency[key] = reply
            if entries:
                self._idempotency_seq = entries[-1][0] + 1
        if overflow:
            with self._store.batch() as batch:
                for _, key, _ in overflow:
                    batch.delete(NS_IDEMPOTENCY, key)

    def recover(self) -> list[str]:
        """Re-open event taps for durably-recorded subscriptions.

        The idempotency record is reloaded at construction; what cannot
        be reloaded automatically are the *taps* — live hooks into a
        driver's event hub. Call this after the application has
        re-registered its drivers: each persisted served subscription
        whose target driver is event-capable again is re-tapped (the
        subscriber's sink callbacks live in *its* relay process and are
        untouched). Records whose driver is not registered yet stay
        durable for a later call; records that no longer decode or whose
        tap the source now denies are dropped. Returns the re-opened
        subscription ids.
        """
        restored: list[str] = []
        for subscription_id, raw in self._store.scan(NS_SUBSCRIPTIONS):
            try:
                persisted = json.loads(raw.decode("utf-8"))
                request = EventSubscribeRequest.decode(
                    bytes.fromhex(persisted["request"])
                )
                subscriber_network = persisted["subscriber_network"]
                target_network = persisted["target_network"]
            except Exception:  # noqa: BLE001 - one corrupt record is dropped, never fatal to the rest of recovery
                self._store.delete(NS_SUBSCRIPTIONS, subscription_id)
                continue
            driver = self._drivers.get(target_network)
            if driver is None or not driver.supports_events:
                continue  # left durable: the driver may register later
            record = _ServedSubscription(
                subscription_id=subscription_id,
                subscriber_network=subscriber_network,
                driver=driver,
            )
            with self._subscriptions_lock:
                if subscription_id in self._served_subscriptions:
                    continue  # already live (double recover())
                self._served_subscriptions[subscription_id] = record

            def push(notification, _record=record) -> None:
                self._publish_event(_record, notification)

            try:
                record.tap = driver.open_event_tap(request, push)
            except Exception:  # noqa: BLE001 - exposure rules may have changed since the crash: drop, don't half-restore
                self._release_claim(subscription_id, record)
                self._store.delete(NS_SUBSCRIPTIONS, subscription_id)
                continue
            restored.append(subscription_id)
        return restored

    @property
    def store(self) -> StateStore:
        return self._store

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def discovery(self) -> DiscoveryService:
        """The discovery service this relay resolves targets through
        (exporters read pool/counter state off it when present)."""
        return self._discovery

    @property
    def idempotency_size(self) -> int:
        """Entries currently held in the exactly-once record (exported
        as a gauge by :func:`repro.ops.exporters.register_relay`)."""
        with self._idempotency_lock:
            return len(self._idempotency)

    @property
    def driver_networks(self) -> tuple[str, ...]:
        """The network ids this relay holds drivers for (readiness)."""
        return tuple(self._drivers)

    def register_driver(self, driver: NetworkDriver) -> None:
        """Attach a driver for a network this relay fronts (usually its own)."""
        self._drivers[driver.network_id] = driver

    def driver_for(self, network_id: str) -> NetworkDriver | None:
        """The registered driver for ``network_id`` (``None`` if absent)."""
        return self._drivers.get(network_id)

    def _transaction_driver(self, target: str) -> NetworkDriver | None:
        """The transaction-capable driver for ``target``.

        Checks the plainly-registered driver first, then the legacy
        ``<target>#tx`` pseudo-network registration kept by
        :func:`~repro.interop.transactions.enable_remote_transactions`.
        """
        driver = self._drivers.get(target)
        if driver is not None and driver.supports_transactions:
            return driver
        driver = self._drivers.get(target + "#tx")
        if driver is not None and driver.supports_transactions:
            return driver
        return None

    # -- middleware chain ---------------------------------------------------------

    def use(self, *interceptors: RelayInterceptor) -> "RelayService":
        """Append interceptor(s) to the request chain; returns ``self``.

        Interceptors run in registration order (the first registered is the
        outermost); each receives ``(ctx, call_next)`` and must return
        serialized response bytes.
        """
        with self._chain_lock:
            self._interceptors.extend(interceptors)
            self._chain = None
        return self

    @property
    def interceptors(self) -> tuple[RelayInterceptor, ...]:
        return tuple(self._interceptors)

    def _handler_chain(self) -> RelayHandler:
        chain = self._chain
        if chain is None:
            with self._chain_lock:
                if self._chain is None:
                    handler: RelayHandler = self._dispatch
                    for interceptor in reversed(self._interceptors):
                        handler = self._bind(interceptor, handler)
                    self._chain = handler
                chain = self._chain
        return chain

    @staticmethod
    def _bind(interceptor: RelayInterceptor, call_next: RelayHandler) -> RelayHandler:
        def handler(ctx: RelayContext) -> bytes:
            return interceptor(ctx, call_next)

        return handler

    # -- source side: serve incoming requests -----------------------------------

    def _error_envelope(
        self,
        request_id: str,
        message: str,
        retryable: bool,
        error_kind: str = "",
    ) -> bytes:
        headers = {"retryable": "true" if retryable else "false"}
        # Even a rejection (rate-limit shed, undecodable request) carries
        # the caller's trace id back, so it correlates to the request.
        headers.update(reply_headers())
        if error_kind:
            headers[ERROR_KIND_HEADER] = error_kind
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ERROR,
            request_id=request_id,
            source_network=self.network_id,
            payload=message.encode("utf-8"),
            headers=headers,
        ).encode()

    def handle_request(self, data: bytes) -> bytes:
        """Serve one serialized request from a remote relay.

        The request runs through the interceptor chain and then the kind
        dispatcher. Always returns serialized bytes (an error envelope on
        failure) — a remote relay cannot catch our exceptions across the
        wire. Raises :class:`RelayUnavailableError` only to model a dead
        relay.

        Trace correlation: the envelope's trace headers (if the caller
        stamped any) are re-activated for the whole serve — interceptors,
        the dispatcher, and the driver all run (and log) under the
        caller's trace id; an untraced envelope gets a fresh root so the
        serve is still internally correlated.
        """
        if not self.available:
            raise RelayUnavailableError(f"relay {self.relay_id!r} is down")
        ctx = RelayContext(self, data)
        envelope = ctx.envelope  # decode once; interceptors reuse it
        inbound = from_headers(envelope.headers) if envelope is not None else None
        with activate(inbound or new_trace()):
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "serving inbound envelope",
                    extra={
                        "relay_id": self.relay_id,
                        "request_id": ctx.request_id,
                        "kind": ctx.kind,
                        "bytes_in": len(data),
                    },
                )
            return self._handler_chain()(ctx)

    @staticmethod
    def _is_side_effecting(envelope: RelayEnvelope) -> bool:
        """Does serving this envelope mutate source-network state?"""
        if envelope.kind in SIDE_EFFECTING_KINDS:
            return True
        return (
            envelope.kind == MSG_KIND_BATCH_REQUEST
            and envelope.headers.get(SIDE_EFFECTING_HEADER) == "true"
        )

    def _dispatch(self, ctx: RelayContext) -> bytes:
        """Terminal chain handler: dedup, then route the envelope by kind.

        Side-effecting envelopes are executed *exactly once per
        request_id*: the §4–§5 adversary model lets any party in the path
        duplicate a message (and the failover loop legitimately re-sends
        one after a lost reply), so a transact/asset/event command whose
        ``request_id`` was already served is answered with the recorded
        reply instead of committing again.

        Scope: the record is per-relay. Redundant paths *to one relay*
        (or replays at it) are fully deduplicated; independent relay
        instances fronting the same network do not share the record, so a
        crash-after-execute followed by failover to a *different* relay
        can still re-commit — deploy side-effecting traffic behind one
        logical relay, or give replicas shared storage for this map.
        """
        envelope = ctx.envelope  # one decode, shared with the interceptors
        if envelope is None:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                "", f"undecodable envelope: {ctx.decode_error}", False
            )
        if envelope.request_id and self._is_side_effecting(envelope):
            return self._dispatch_exactly_once(envelope)
        return self._route(envelope)

    def _dispatch_exactly_once(self, envelope: RelayEnvelope) -> bytes:
        """Serve a side-effecting envelope at most once per request_id.

        Concurrent serving adds a hazard the sequential relay never had:
        two byte-identical duplicates arriving on two serve threads can
        *both* miss the idempotency record and both commit. The record
        is therefore claimed under a lock before execution: the first
        thread installs an in-flight marker and executes; concurrent
        duplicates block on the marker and are answered with the
        recorded reply (counted as suppressed), exactly like duplicates
        arriving after completion.
        """
        request_id = envelope.request_id
        while True:
            with self._idempotency_lock:
                replay = self._idempotency.get(request_id)
                if replay is not None:
                    self.stats.bump("duplicates_suppressed")
                    return replay
                marker = self._in_flight.get(request_id)
                if marker is None:
                    marker = threading.Event()
                    self._in_flight[request_id] = marker
                    break
            # Another thread is executing this very request: wait for it
            # and re-check (its reply lands in the record before the
            # marker is set; a failed execution clears the marker so the
            # duplicate retries the execution itself).
            marker.wait()
        try:
            reply = self._route(envelope)
            with self._idempotency_lock:
                sequence = self._idempotency_seq
                self._idempotency_seq += 1
            # Durability point, deliberately outside the lock (the store
            # fsyncs): the reply must be on disk BEFORE any caller can
            # observe it, or a crash between answering and recording
            # would let the replay re-execute after restart.
            self._store.put(
                NS_IDEMPOTENCY,
                request_id,
                sequence.to_bytes(8, "big") + reply,
            )
        except BaseException:
            with self._idempotency_lock:
                self._in_flight.pop(request_id, None)
            marker.set()
            raise
        evicted: list[str] = []
        with self._idempotency_lock:
            self._idempotency[request_id] = reply
            while len(self._idempotency) > self.idempotency_capacity:
                evicted.append(self._idempotency.popitem(last=False)[0])
            self._in_flight.pop(request_id, None)
        marker.set()
        if evicted:
            # Mirror FIFO eviction to the store so a restart rebuilds the
            # same bounded window (never more than capacity on disk).
            with self._store.batch() as batch:
                for stale in evicted:
                    batch.delete(NS_IDEMPOTENCY, stale)
        return reply

    def _route(self, envelope: RelayEnvelope) -> bytes:
        if envelope.kind == MSG_KIND_QUERY_REQUEST:
            return self._serve_query(envelope)
        if envelope.kind == MSG_KIND_BATCH_REQUEST:
            return self._serve_batch(envelope)
        if envelope.kind == MSG_KIND_TRANSACT_REQUEST:
            return self._serve_transact(envelope)
        if envelope.kind == MSG_KIND_EVENT_SUBSCRIBE:
            return self._serve_event_subscribe(envelope)
        if envelope.kind == MSG_KIND_EVENT_PUBLISH:
            return self._serve_event_publish(envelope)
        if envelope.kind == MSG_KIND_EVENT_UNSUBSCRIBE:
            return self._serve_event_unsubscribe(envelope)
        if envelope.kind in ASSET_COMMAND_KINDS:
            return self._serve_asset(envelope)
        self.stats.bump("requests_failed")
        return self._error_envelope(
            envelope.request_id, f"unexpected message kind {envelope.kind}", False
        )

    def _serve_query(self, envelope: RelayEnvelope) -> bytes:
        try:
            query = NetworkQuery.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable query: {exc}", False
            )
        target = query.address.network if query.address else ""
        driver = self._drivers.get(target)
        if driver is None:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id,
                f"relay {self.relay_id!r} has no driver for network {target!r}",
                False,
            )
        response = driver.execute_query(query)
        self.stats.bump("requests_served")
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_QUERY_RESPONSE,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=response.encode(),
            headers=reply_headers(),
        ).encode()

    def _serve_batch(self, envelope: RelayEnvelope) -> bytes:
        """Serve a batch envelope with partial-failure semantics.

        Members are grouped per (driver, invocation) and fanned via
        :meth:`NetworkDriver.execute_batch` (queries, concurrent) or
        :meth:`NetworkDriver.execute_transaction_batch` (transactions,
        sequential — commit ordering); a member with no driver (or a
        failing member) is answered with an error *response* in its slot —
        only an undecodable batch fails as a whole.
        """
        try:
            batch = BatchQueryRequest.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable batch: {exc}", False
            )
        queries = list(batch.queries)
        responses: list[QueryResponse | None] = [None] * len(queries)
        groups: dict[tuple[str, bool], list[int]] = {}
        for position, query in enumerate(queries):
            target = query.address.network if query.address else ""
            is_transaction = query.invocation == INVOCATION_TRANSACTION
            groups.setdefault((target, is_transaction), []).append(position)
        for (target, is_transaction), positions in groups.items():
            driver = (
                self._transaction_driver(target)
                if is_transaction
                else self._drivers.get(target)
            )
            if driver is None:
                # Stat parity with the singleton path: a member this relay
                # cannot route counts as failed, not served.
                self.stats.bump("requests_failed", len(positions))
                capability = "transaction-capable driver" if is_transaction else "driver"
                for position in positions:
                    responses[position] = QueryResponse(
                        version=PROTOCOL_VERSION,
                        nonce=queries[position].nonce,
                        status=STATUS_ERROR,
                        error=(
                            f"relay {self.relay_id!r} has no {capability} for "
                            f"network {target!r}"
                        ),
                    )
                continue
            members = [queries[p] for p in positions]
            if is_transaction:
                served = driver.execute_transaction_batch(members)
                self.stats.bump("transactions_served", len(positions))
            else:
                served = driver.execute_batch(members)
            for position, response in zip(positions, served):
                responses[position] = response
            self.stats.bump("requests_served", len(positions))
        self.stats.bump("batches_served")
        reply = BatchQueryResponse(
            version=PROTOCOL_VERSION,
            responses=[r for r in responses if r is not None],
        )
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_BATCH_RESPONSE,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=reply.encode(),
            headers=reply_headers(),
        ).encode()

    def _serve_transact(self, envelope: RelayEnvelope) -> bytes:
        """Serve a cross-network transaction envelope (§5 extension).

        Routed to the network's transaction-capable driver, which submits
        under its designated local invoker identity and attests the
        *committed* outcome (tx id, block number, validation code).
        """
        try:
            query = NetworkQuery.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable transaction: {exc}", False
            )
        target = query.address.network if query.address else ""
        driver = self._transaction_driver(target)
        if driver is None:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id,
                f"relay {self.relay_id!r} has no transaction-capable driver "
                f"for network {target!r}",
                False,
                error_kind=ERROR_KIND_CAPABILITY,
            )
        response = driver._execute_transaction_guarded(query)
        self.stats.bump("requests_served")
        self.stats.bump("transactions_served")
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_TRANSACT_RESPONSE,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=response.encode(),
            headers=reply_headers(),
        ).encode()

    def _serve_asset(self, envelope: RelayEnvelope) -> bytes:
        """Serve one HTLC asset-command envelope (lock/claim/unlock/status).

        Routed to the network's asset-capable driver. Governance and
        contract-rule violations are answered with a non-OK
        :class:`AssetAckMsg` (not an error envelope), so the caller can
        distinguish an on-ledger refusal — which is final — from a
        transport failure worth failing over.
        """
        try:
            command = AssetCommandMsg.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable asset command: {exc}", False
            )
        target = command.address.network if command.address else ""
        driver = self._drivers.get(target)
        if driver is None or not driver.supports_assets:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id,
                f"relay {self.relay_id!r} has no asset-capable driver for "
                f"network {target!r}",
                False,
                error_kind=ERROR_KIND_CAPABILITY,
            )
        verbs = {
            MSG_KIND_ASSET_LOCK: driver.lock_asset,
            MSG_KIND_ASSET_CLAIM: driver.claim_asset,
            MSG_KIND_ASSET_UNLOCK: driver.unlock_asset,
            MSG_KIND_ASSET_STATUS: driver.asset_status,
        }
        try:
            ack = verbs[envelope.kind](command)
        except AccessDeniedError as exc:
            self.stats.bump("requests_failed")
            ack = AssetAckMsg(
                version=PROTOCOL_VERSION,
                nonce=command.nonce,
                status=STATUS_ACCESS_DENIED,
                error=str(exc),
                asset_id=command.asset_id,
            )
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            self.stats.bump("requests_failed")
            ack = AssetAckMsg(
                version=PROTOCOL_VERSION,
                nonce=command.nonce,
                status=STATUS_ERROR,
                error=str(exc),
                asset_id=command.asset_id,
            )
        else:
            self.stats.bump("requests_served")
            self.stats.bump("asset_commands_served")
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ASSET_ACK,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=ack.encode(),
            headers=reply_headers(),
        ).encode()

    # -- source side: event subscriptions ----------------------------------------

    def _event_ack(
        self,
        envelope: RelayEnvelope,
        subscription_id: str,
        status: int = STATUS_OK,
        error: str = "",
    ) -> bytes:
        ack = EventAck(
            version=PROTOCOL_VERSION,
            subscription_id=subscription_id,
            status=status,
            error=error,
        )
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_EVENT_ACK,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=ack.encode(),
            headers=reply_headers(),
        ).encode()

    def _serve_event_subscribe(self, envelope: RelayEnvelope) -> bytes:
        """Open a subscription: ECC-gate it, tap the hub, record the feed.

        The ack carries the assigned subscription id; exposure denial comes
        back as a ``STATUS_ACCESS_DENIED`` ack (not an error envelope) so
        the subscriber can distinguish governance denial from transport
        failure.
        """
        try:
            request = EventSubscribeRequest.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable subscription: {exc}", False
            )
        target = request.address.network if request.address else ""
        driver = self._drivers.get(target)
        if driver is None or not driver.supports_events:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id,
                f"relay {self.relay_id!r} has no event-capable driver for "
                f"network {target!r}",
                False,
                error_kind=ERROR_KIND_CAPABILITY,
            )
        subscription_id = request.subscription_id or random_id("sub-")
        subscriber_network = envelope.source_network
        record = _ServedSubscription(
            subscription_id=subscription_id,
            subscriber_network=subscriber_network,
            driver=driver,
        )
        # Claim the id under the lock *before* tapping: two concurrent
        # subscribes proposing one id must not both open taps.
        with self._subscriptions_lock:
            if subscription_id in self._served_subscriptions:
                self.stats.bump("requests_failed")
                return self._event_ack(
                    envelope,
                    "",
                    status=STATUS_ERROR,
                    error=f"subscription id {subscription_id!r} already in use",
                )
            self._served_subscriptions[subscription_id] = record

        def push(notification) -> None:
            self._publish_event(record, notification)

        try:
            record.tap = driver.open_event_tap(request, push)
        except AccessDeniedError as exc:
            self._release_claim(subscription_id, record)
            self.stats.bump("requests_failed")
            return self._event_ack(
                envelope, "", status=STATUS_ACCESS_DENIED, error=str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            self._release_claim(subscription_id, record)
            self.stats.bump("requests_failed")
            return self._event_ack(envelope, "", status=STATUS_ERROR, error=str(exc))
        # A concurrent unsubscribe (a duplicated/reordered frame is part
        # of the threat model) may have popped our record while the tap
        # was opening — its pop found no tap to close, so WE must close
        # the one we just opened or it would push events forever.
        with self._subscriptions_lock:
            still_ours = self._served_subscriptions.get(subscription_id) is record
        if not still_ours:
            driver.close_event_tap(record.tap)
            self.stats.bump("requests_failed")
            return self._event_ack(
                envelope,
                "",
                status=STATUS_ERROR,
                error=f"subscription {subscription_id!r} torn down concurrently",
            )
        self._persist_subscription(subscription_id, subscriber_network, request)
        self.stats.bump("requests_served")
        self.stats.bump("subscriptions_served")
        return self._event_ack(envelope, subscription_id)

    def _persist_subscription(
        self,
        subscription_id: str,
        subscriber_network: str,
        request: EventSubscribeRequest,
    ) -> None:
        """Record a served subscription so :meth:`recover` can re-tap it.

        The raw subscribe request is stored (with the assigned id) so
        recovery re-runs the driver's own exposure gate — a subscription
        the source would no longer permit is not silently resurrected.
        """
        request.subscription_id = subscription_id
        self._store.put(
            NS_SUBSCRIPTIONS,
            subscription_id,
            json.dumps(
                {
                    "subscriber_network": subscriber_network,
                    "target_network": request.address.network
                    if request.address
                    else "",
                    "request": request.encode().hex(),
                }
            ).encode("utf-8"),
        )

    def _release_claim(self, subscription_id: str, record: "_ServedSubscription") -> None:
        """Drop a claimed subscription id, but only if it is still ours —
        a concurrent unsubscribe-then-resubscribe may have replaced the
        record, and popping someone else's healthy subscription would
        orphan their tap."""
        with self._subscriptions_lock:
            if self._served_subscriptions.get(subscription_id) is record:
                del self._served_subscriptions[subscription_id]

    def _serve_event_unsubscribe(self, envelope: RelayEnvelope) -> bytes:
        try:
            request = EventUnsubscribeRequest.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable unsubscribe: {exc}", False
            )
        self._drop_served_subscription(request.subscription_id)
        self.stats.bump("requests_served")
        return self._event_ack(envelope, request.subscription_id)

    def _drop_served_subscription(self, subscription_id: str) -> None:
        with self._subscriptions_lock:
            record = self._served_subscriptions.pop(subscription_id, None)
        # Unconditional: an unsubscribe arriving before recover() re-taps
        # must still clear the durable row, or it would resurrect later.
        self._store.delete(NS_SUBSCRIPTIONS, subscription_id)
        if record is not None and record.tap is not None:
            record.driver.close_event_tap(record.tap)

    def _publish_event(self, record: "_ServedSubscription", notification) -> None:
        """Push one notification to the subscriber's network relay(s).

        Rides the same discovery lookup and failover loop as queries.
        Delivery is at-most-once by design: an undeliverable notification
        is counted and dropped (the subscriber reconciles by querying —
        notifications are hints, trusted data comes from proofs), and a
        sink that reports the subscription gone prunes it here.
        """
        message = EventNotificationMsg(
            version=PROTOCOL_VERSION,
            subscription_id=record.subscription_id,
            source_network=self.network_id,
            chaincode=notification.chaincode,
            name=notification.name,
            payload=notification.payload,
            block_number=notification.block_number,
            tx_id=notification.tx_id,
        )
        try:
            ack = self._exchange(
                record.subscriber_network,
                MSG_KIND_EVENT_PUBLISH,
                message.encode(),
                MSG_KIND_EVENT_ACK,
                EventAck.decode,
            )
        except (RelayError, DiscoveryError):
            self.stats.bump("events_dropped")
            return
        if ack.status != STATUS_OK:
            # The subscriber side no longer knows this subscription.
            self.stats.bump("events_dropped")
            self._drop_served_subscription(record.subscription_id)
            return
        self.stats.bump("events_published")

    # -- destination side: local event sinks --------------------------------------

    def register_event_sink(
        self,
        subscription_id: str,
        callback: Callable[[EventNotificationMsg], None],
    ) -> None:
        """Route inbound ``MSG_KIND_EVENT_PUBLISH`` for ``subscription_id``
        to ``callback`` (installed by :class:`repro.api.GatewaySession`)."""
        with self._subscriptions_lock:
            self._event_sinks[subscription_id] = callback

    def unregister_event_sink(self, subscription_id: str) -> None:
        with self._subscriptions_lock:
            self._event_sinks.pop(subscription_id, None)

    def _serve_event_publish(self, envelope: RelayEnvelope) -> bytes:
        try:
            message = EventNotificationMsg.decode(envelope.payload)
        except Exception as exc:
            self.stats.bump("requests_failed")
            return self._error_envelope(
                envelope.request_id, f"undecodable notification: {exc}", False
            )
        with self._subscriptions_lock:
            sink = self._event_sinks.get(message.subscription_id)
        if sink is None:
            # Answered with a non-OK ack (not an error envelope) so the
            # source relay prunes the dead subscription instead of failing
            # over to another relay of this network.
            self.stats.bump("requests_failed")
            return self._event_ack(
                envelope,
                message.subscription_id,
                status=STATUS_ERROR,
                error=(
                    f"relay {self.relay_id!r} has no sink for subscription "
                    f"{message.subscription_id!r}"
                ),
            )
        sink(message)
        self.stats.bump("requests_served")
        self.stats.bump("events_delivered")
        return self._event_ack(envelope, message.subscription_id)

    # -- destination side: query remote networks -----------------------------------

    def remote_query(self, query: NetworkQuery) -> QueryResponse:
        """Send a query to the target network's relay(s) and return the reply.

        Implements steps (2), (3) and (9) of the message flow: discovery
        lookup, serialized forwarding, and response return — with failover
        across redundant remote relays on transport failure or shedding.
        """
        target = self._require_target(query)
        self.stats.bump("queries_sent")
        return self._exchange(
            target,
            MSG_KIND_QUERY_REQUEST,
            query.encode(),
            MSG_KIND_QUERY_RESPONSE,
            QueryResponse.decode,
        )

    def remote_query_batch(self, queries: Sequence[NetworkQuery]) -> list[QueryResponse]:
        """Send N queries, batching the members that share a target network.

        Each distinct target costs one discovery lookup, one batch envelope
        round-trip, and one failover loop regardless of how many member
        queries address it. Responses come back positionally aligned with
        ``queries``. Raises like :meth:`remote_query` — but note that a
        transport-level failure only poisons the members of the affected
        target; query-level failures arrive as error *responses* in their
        slots.
        """
        queries = list(queries)
        if not queries:
            return []
        groups: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(self._require_target(query), []).append(position)
        responses: list[QueryResponse | None] = [None] * len(queries)
        for target, positions in groups.items():
            members = [queries[p] for p in positions]
            request = BatchQueryRequest(version=PROTOCOL_VERSION, queries=members)

            def decode_batch(payload: bytes, expected: int = len(members)) -> BatchQueryResponse:
                reply = BatchQueryResponse.decode(payload)
                if len(reply.responses) != expected:
                    raise ProtocolError(
                        f"batch reply carries {len(reply.responses)} responses, "
                        f"expected {expected}"
                    )
                return reply

            transactions = sum(
                1 for member in members
                if member.invocation == INVOCATION_TRANSACTION
            )
            self.stats.bump("queries_sent", len(members) - transactions)
            self.stats.bump("transactions_sent", transactions)
            self.stats.bump("batches_sent")
            # Mark envelopes carrying committed work so caching layers
            # (which route on the envelope alone) never replay them.
            headers = {SIDE_EFFECTING_HEADER: "true"} if transactions else None
            reply = self._exchange(
                target,
                MSG_KIND_BATCH_REQUEST,
                request.encode(),
                MSG_KIND_BATCH_RESPONSE,
                decode_batch,
                headers=headers,
            )
            for position, response in zip(positions, reply.responses):
                responses[position] = response
        return [response for response in responses if response is not None]

    def remote_transact(self, query: NetworkQuery) -> QueryResponse:
        """Send a cross-network transaction to the target network's relay(s).

        Same discovery, framing, and failover as :meth:`remote_query`, under
        the dedicated ``MSG_KIND_TRANSACT_REQUEST`` envelope kind — distinct
        on the wire because a replayed transaction re-commits, so caches and
        other intermediaries must be able to tell it apart without decoding
        the payload.
        """
        target = self._require_target(query)
        self.stats.bump("transactions_sent")
        return self._exchange(
            target,
            MSG_KIND_TRANSACT_REQUEST,
            query.encode(),
            MSG_KIND_TRANSACT_RESPONSE,
            QueryResponse.decode,
        )

    def remote_asset(self, kind: int, command: AssetCommandMsg) -> AssetAckMsg:
        """Send one HTLC asset command to the asset's network relay(s).

        ``kind`` selects the verb (one of :data:`ASSET_COMMAND_KINDS`);
        the command rides the same discovery lookup, interceptor chain,
        and failover loop as queries. Side-effecting verbs (everything but
        status) are header-marked so caching intermediaries never replay
        them. Returns the ack even when non-OK — the caller maps statuses
        to protocol decisions.
        """
        if kind not in ASSET_COMMAND_KINDS:
            raise ProtocolError(f"kind {kind} is not an asset command kind")
        target = command.address.network if command.address else ""
        if not target:
            raise ProtocolError("asset command has no target network address")
        self.stats.bump("asset_commands_sent")
        headers = (
            {SIDE_EFFECTING_HEADER: "true"}
            if kind != MSG_KIND_ASSET_STATUS
            else None
        )
        return self._exchange(
            target,
            kind,
            command.encode(),
            MSG_KIND_ASSET_ACK,
            AssetAckMsg.decode,
            headers=headers,
        )

    # -- destination side: subscribe to remote events ------------------------------

    def remote_subscribe(
        self,
        request: EventSubscribeRequest,
        sink: Callable[[EventNotificationMsg], None],
    ) -> str:
        """Open a subscription on the remote network; returns its id.

        The subscription id is proposed by this side and the sink installed
        *before* the subscribe round-trip, so there is no window in which
        the source's first push (which can race the ack in a concurrent
        deployment — the tap opens server-side before the ack travels
        back) finds no sink. Raises :class:`AccessDeniedError` on exposure
        denial and :class:`RelayError` / :class:`RelayUnavailableError`
        like a query.
        """
        target = request.address.network if request.address else ""
        if not target:
            raise ProtocolError("subscription has no target network address")
        if not request.subscription_id:
            request.subscription_id = random_id("sub-")
        with self._subscriptions_lock:
            self._event_sinks[request.subscription_id] = sink
        try:
            ack = self._exchange(
                target,
                MSG_KIND_EVENT_SUBSCRIBE,
                request.encode(),
                MSG_KIND_EVENT_ACK,
                EventAck.decode,
            )
            if ack.status == STATUS_ACCESS_DENIED:
                raise AccessDeniedError(ack.error)
            if ack.status != STATUS_OK or not ack.subscription_id:
                raise RelayError(
                    f"subscription to network {target!r} failed: {ack.error}"
                )
        except BaseException:
            with self._subscriptions_lock:
                self._event_sinks.pop(request.subscription_id, None)
            raise
        if ack.subscription_id != request.subscription_id:
            # A source predating subscriber-proposed ids assigned its own.
            with self._subscriptions_lock:
                self._event_sinks[ack.subscription_id] = self._event_sinks.pop(
                    request.subscription_id
                )
        self.stats.bump("subscriptions_opened")
        return ack.subscription_id

    def remote_unsubscribe(self, source_network: str, subscription_id: str) -> None:
        """Tear down a subscription on the source relay and drop the sink."""
        self.unregister_event_sink(subscription_id)
        request = EventUnsubscribeRequest(
            version=PROTOCOL_VERSION, subscription_id=subscription_id
        )
        try:
            self._exchange(
                source_network,
                MSG_KIND_EVENT_UNSUBSCRIBE,
                request.encode(),
                MSG_KIND_EVENT_ACK,
                EventAck.decode,
            )
        except (RelayError, DiscoveryError):
            # The source relay being unreachable leaves a dangling remote
            # subscription; its next push gets a no-sink ack and is pruned.
            pass

    def _require_target(self, query: NetworkQuery) -> str:
        if query.address is None or not query.address.network:
            raise ProtocolError("query has no target network address")
        return query.address.network

    def _exchange(
        self,
        target: str,
        kind: int,
        payload: bytes,
        expect_reply_kind: int,
        decode_reply: Callable[[bytes], object],
        headers: dict[str, str] | None = None,
    ):
        """One request/reply round with failover across redundant relays.

        Retryable failures (transport errors — including a dead endpoint's
        :class:`RelayUnavailableError` —, shed load, malformed or
        mis-correlated replies) advance to the next endpoint; a
        non-retryable error envelope raises :class:`RelayError`
        immediately.

        Trace correlation: runs under the caller's active trace (opening
        a fresh root when there is none — a bare ``remote_query`` is
        still correlated end to end) and stamps a per-hop child span into
        the outbound envelope headers, so the serving relay, its TCP
        server, and its driver all log the same trace id.

        Fleet-aware discovery: when the discovery service offers the
        optional ``lookup_for`` extension (see
        :class:`repro.net.balancer.BalancedDiscovery`), the request id
        and side-effecting flag are passed through so the pool can order
        candidates per request — load-spread for reads, consistent-hash
        sticky for side effects (idempotency replays must land on the
        replica holding their exactly-once record). The failover walk
        below is unchanged either way.
        """
        request_id = random_id("req-")
        side_effecting = kind in SIDE_EFFECTING_KINDS or bool(
            headers and headers.get(SIDE_EFFECTING_HEADER) == "true"
        )
        lookup_for = getattr(self._discovery, "lookup_for", None)
        if callable(lookup_for):
            endpoints = lookup_for(  # may raise DiscoveryError
                target, request_id=request_id, side_effecting=side_effecting
            )
        else:
            endpoints = self._discovery.lookup(target)  # may raise DiscoveryError
        with ensure_trace():
            envelope_bytes = RelayEnvelope(
                version=PROTOCOL_VERSION,
                kind=kind,
                request_id=request_id,
                source_network=self.network_id,
                destination_network=target,
                payload=payload,
                headers=inject(headers),
            ).encode()
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "forwarding envelope",
                    extra={
                        "relay_id": self.relay_id,
                        "request_id": request_id,
                        "kind": kind,
                        "target_network": target,
                        "endpoints": len(endpoints),
                    },
                )
            return self._exchange_over(
                endpoints, target, request_id, envelope_bytes, expect_reply_kind,
                decode_reply,
            )

    def _exchange_over(
        self,
        endpoints,
        target: str,
        request_id: str,
        envelope_bytes: bytes,
        expect_reply_kind: int,
        decode_reply: Callable[[bytes], object],
    ):
        failures: list[str] = []
        for position, endpoint in enumerate(endpoints):
            if position > 0:
                self.stats.bump("failovers")
            try:
                reply_bytes = endpoint.handle_request(envelope_bytes)
            except (RelayUnavailableError, DoSError, RelayError, DiscoveryError) as exc:
                failures.append(str(exc))
                continue
            try:
                reply = RelayEnvelope.decode(reply_bytes)
            except Exception as exc:  # noqa: BLE001 - adversarial reply bytes: any parse failure is a failover signal
                failures.append(f"undecodable reply envelope: {exc}")
                continue
            if reply.kind == MSG_KIND_ERROR:
                message = reply.payload.decode("utf-8", errors="replace")
                if reply.headers.get("retryable") == "true":
                    failures.append(message)
                    continue
                if reply.headers.get(ERROR_KIND_HEADER) == ERROR_KIND_CAPABILITY:
                    # Fail-closed capability refusal: the network has no
                    # driver for this verb, so no redundant relay can help.
                    raise UnsupportedCapabilityError(
                        f"network {target!r} does not support the requested "
                        f"verb: {message}"
                    )
                raise RelayError(
                    f"relay for network {target!r} rejected the request: {message}"
                )
            if reply.kind != expect_reply_kind:
                failures.append(f"unexpected reply kind {reply.kind}")
                continue
            if reply.request_id != request_id:
                failures.append(
                    f"reply correlates to {reply.request_id!r}, expected "
                    f"{request_id!r}"
                )
                continue
            try:
                return decode_reply(reply.payload)
            except Exception as exc:  # noqa: BLE001 - adversarial reply payload: any parse failure is a failover signal
                failures.append(f"undecodable reply payload: {exc}")
                continue
        raise RelayUnavailableError(
            f"all {len(endpoints)} relay(s) for network {target!r} failed: "
            + "; ".join(failures)
        )
