"""The relay service.

"Deployed within, and acting on behalf of, each network is a relay
service ... [it] serves requests for authentic data from applications by
fetching the data along with verifiable proofs from remote networks"
(§3.2). Design points reproduced here:

- relays exchange only *serialized* protocol messages
  (:class:`repro.proto.RelayEnvelope` framing);
- a relay holds *pluggable network drivers* for the network(s) it fronts
  and a *pluggable discovery service* for finding remote relays;
- the architecture "assumes minimal trust in the relay": a relay never
  sees plaintext results or decryptable proofs in confidential mode;
- availability: rate limiting sheds DoS load, and destination-side lookup
  returns all redundant relays of a network so callers fail over (§5);
- cross-cutting concerns (rate limiting, metrics, logging, caching) are
  *composable interceptors* installed with :meth:`RelayService.use`
  rather than hardwired into the request path — see
  :mod:`repro.api.middleware` for the stock interceptors.

Batching: a :data:`~repro.proto.messages.MSG_KIND_BATCH_REQUEST` envelope
carries N queries to one target network in a single round-trip, sharing one
discovery lookup and one failover loop, with the serving driver fanning the
members concurrently (:meth:`NetworkDriver.execute_batch`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

from repro.errors import (
    DiscoveryError,
    DoSError,
    ProtocolError,
    RelayError,
    RelayUnavailableError,
)
from repro.interop.discovery import DiscoveryService
from repro.interop.drivers.base import NetworkDriver
from repro.proto.messages import (
    MSG_KIND_BATCH_REQUEST,
    MSG_KIND_BATCH_RESPONSE,
    MSG_KIND_ERROR,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    PROTOCOL_VERSION,
    STATUS_ERROR,
    BatchQueryRequest,
    BatchQueryResponse,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
)
from repro.utils.clock import Clock, SystemClock
from repro.utils.ids import random_id


class RateLimiter:
    """A sliding-window request limiter (the relay's DoS self-protection).

    "DoS protection can also be built into the relay service, protecting
    the peers themselves from such attacks" (§5).
    """

    def __init__(self, max_requests: int, window_seconds: float, clock: Clock | None = None) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._clock = clock or SystemClock()
        self._timestamps: deque[float] = deque()
        self.rejected = 0

    def allow(self) -> bool:
        now = self._clock.now()
        while self._timestamps and now - self._timestamps[0] > self.window_seconds:
            self._timestamps.popleft()
        if len(self._timestamps) >= self.max_requests:
            self.rejected += 1
            return False
        self._timestamps.append(now)
        return True


class RelayStats:
    """Operational counters for a relay."""

    def __init__(self) -> None:
        self.requests_served = 0
        self.requests_rejected = 0
        self.requests_failed = 0
        self.queries_sent = 0
        self.failovers = 0
        self.batches_served = 0
        self.batches_sent = 0


class RelayContext:
    """One inbound request as it travels the interceptor chain.

    Interceptors see the raw serialized request plus a best-effort decoded
    view: :attr:`envelope` is the parsed :class:`RelayEnvelope` (or ``None``
    when the bytes do not decode), so even a request that is about to be
    shed can be answered with a correlatable ``request_id``.
    """

    _UNSET = object()

    def __init__(self, relay: "RelayService", raw: bytes) -> None:
        self.relay = relay
        self.raw = raw
        #: Scratch space for interceptors to pass notes down the chain.
        self.metadata: dict[str, object] = {}
        self._envelope: object = self._UNSET
        self.decode_error: Exception | None = None

    @property
    def envelope(self) -> RelayEnvelope | None:
        """The decoded request envelope, or ``None`` if undecodable."""
        if self._envelope is self._UNSET:
            try:
                self._envelope = RelayEnvelope.decode(self.raw)
            except Exception as exc:
                self._envelope = None
                self.decode_error = exc
        return self._envelope  # type: ignore[return-value]

    @property
    def request_id(self) -> str:
        """The peeked request id ('' when the envelope is undecodable)."""
        envelope = self.envelope
        return envelope.request_id if envelope is not None else ""

    @property
    def kind(self) -> int:
        envelope = self.envelope
        return envelope.kind if envelope is not None else 0

    def error_reply(self, message: str, retryable: bool) -> bytes:
        """A serialized error envelope correlated to this request."""
        return self.relay._error_envelope(self.request_id, message, retryable)


# An interceptor wraps the rest of the chain: it receives the request
# context and a continuation, and returns serialized response bytes.
RelayHandler = Callable[[RelayContext], bytes]
RelayInterceptor = Callable[[RelayContext, RelayHandler], bytes]


class RateLimitInterceptor:
    """The relay's DoS self-protection as a chain interceptor.

    Sheds load before any further processing, but answers with an error
    envelope that carries the peeked ``request_id`` so the caller can
    correlate the rejection to its in-flight request.
    """

    def __init__(self, limiter: RateLimiter) -> None:
        self.limiter = limiter

    def __call__(self, ctx: RelayContext, call_next: RelayHandler) -> bytes:
        if not self.limiter.allow():
            ctx.relay.stats.requests_rejected += 1
            return ctx.error_reply("rate limit exceeded: request shed", retryable=True)
        return call_next(ctx)


class RelayService:
    """One network's relay: serves local apps and answers remote relays."""

    def __init__(
        self,
        network_id: str,
        discovery: DiscoveryService,
        clock: Clock | None = None,
        rate_limiter: RateLimiter | None = None,
        relay_id: str | None = None,
    ) -> None:
        self.network_id = network_id
        self.relay_id = relay_id or f"relay-{network_id}"
        self._discovery = discovery
        self._clock = clock or SystemClock()
        self._rate_limiter = rate_limiter
        self._drivers: dict[str, NetworkDriver] = {}
        self._interceptors: list[RelayInterceptor] = []
        self._chain: RelayHandler | None = None
        self.stats = RelayStats()
        self.available = True  # toggled by availability experiments
        if rate_limiter is not None:
            # Legacy shim: the constructor-injected limiter becomes the
            # first interceptor of the chain.
            self.use(RateLimitInterceptor(rate_limiter))

    @property
    def clock(self) -> Clock:
        return self._clock

    def register_driver(self, driver: NetworkDriver) -> None:
        """Attach a driver for a network this relay fronts (usually its own)."""
        self._drivers[driver.network_id] = driver

    # -- middleware chain ---------------------------------------------------------

    def use(self, *interceptors: RelayInterceptor) -> "RelayService":
        """Append interceptor(s) to the request chain; returns ``self``.

        Interceptors run in registration order (the first registered is the
        outermost); each receives ``(ctx, call_next)`` and must return
        serialized response bytes.
        """
        self._interceptors.extend(interceptors)
        self._chain = None
        return self

    @property
    def interceptors(self) -> tuple[RelayInterceptor, ...]:
        return tuple(self._interceptors)

    def _handler_chain(self) -> RelayHandler:
        if self._chain is None:
            handler: RelayHandler = self._dispatch
            for interceptor in reversed(self._interceptors):
                handler = self._bind(interceptor, handler)
            self._chain = handler
        return self._chain

    @staticmethod
    def _bind(interceptor: RelayInterceptor, call_next: RelayHandler) -> RelayHandler:
        def handler(ctx: RelayContext) -> bytes:
            return interceptor(ctx, call_next)

        return handler

    # -- source side: serve incoming requests -----------------------------------

    def _error_envelope(self, request_id: str, message: str, retryable: bool) -> bytes:
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ERROR,
            request_id=request_id,
            source_network=self.network_id,
            payload=message.encode("utf-8"),
            headers={"retryable": "true" if retryable else "false"},
        ).encode()

    def handle_request(self, data: bytes) -> bytes:
        """Serve one serialized request from a remote relay.

        The request runs through the interceptor chain and then the kind
        dispatcher. Always returns serialized bytes (an error envelope on
        failure) — a remote relay cannot catch our exceptions across the
        wire. Raises :class:`RelayUnavailableError` only to model a dead
        relay.
        """
        if not self.available:
            raise RelayUnavailableError(f"relay {self.relay_id!r} is down")
        return self._handler_chain()(RelayContext(self, data))

    def _dispatch(self, ctx: RelayContext) -> bytes:
        """Terminal chain handler: route the context's envelope by kind."""
        envelope = ctx.envelope  # one decode, shared with the interceptors
        if envelope is None:
            self.stats.requests_failed += 1
            return self._error_envelope(
                "", f"undecodable envelope: {ctx.decode_error}", False
            )
        if envelope.kind == MSG_KIND_QUERY_REQUEST:
            return self._serve_query(envelope)
        if envelope.kind == MSG_KIND_BATCH_REQUEST:
            return self._serve_batch(envelope)
        self.stats.requests_failed += 1
        return self._error_envelope(
            envelope.request_id, f"unexpected message kind {envelope.kind}", False
        )

    def _serve_query(self, envelope: RelayEnvelope) -> bytes:
        try:
            query = NetworkQuery.decode(envelope.payload)
        except Exception as exc:
            self.stats.requests_failed += 1
            return self._error_envelope(
                envelope.request_id, f"undecodable query: {exc}", False
            )
        target = query.address.network if query.address else ""
        driver = self._drivers.get(target)
        if driver is None:
            self.stats.requests_failed += 1
            return self._error_envelope(
                envelope.request_id,
                f"relay {self.relay_id!r} has no driver for network {target!r}",
                False,
            )
        response = driver.execute_query(query)
        self.stats.requests_served += 1
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_QUERY_RESPONSE,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=response.encode(),
        ).encode()

    def _serve_batch(self, envelope: RelayEnvelope) -> bytes:
        """Serve a batch envelope with partial-failure semantics.

        Members are grouped per driver and fanned via
        :meth:`NetworkDriver.execute_batch`; a member with no driver (or a
        failing member) is answered with an error *response* in its slot —
        only an undecodable batch fails as a whole.
        """
        try:
            batch = BatchQueryRequest.decode(envelope.payload)
        except Exception as exc:
            self.stats.requests_failed += 1
            return self._error_envelope(
                envelope.request_id, f"undecodable batch: {exc}", False
            )
        queries = list(batch.queries)
        responses: list[QueryResponse | None] = [None] * len(queries)
        groups: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            target = query.address.network if query.address else ""
            groups.setdefault(target, []).append(position)
        for target, positions in groups.items():
            driver = self._drivers.get(target)
            if driver is None:
                # Stat parity with the singleton path: a member this relay
                # cannot route counts as failed, not served.
                self.stats.requests_failed += len(positions)
                for position in positions:
                    responses[position] = QueryResponse(
                        version=PROTOCOL_VERSION,
                        nonce=queries[position].nonce,
                        status=STATUS_ERROR,
                        error=(
                            f"relay {self.relay_id!r} has no driver for "
                            f"network {target!r}"
                        ),
                    )
                continue
            for position, response in zip(
                positions, driver.execute_batch([queries[p] for p in positions])
            ):
                responses[position] = response
            self.stats.requests_served += len(positions)
        self.stats.batches_served += 1
        reply = BatchQueryResponse(
            version=PROTOCOL_VERSION,
            responses=[r for r in responses if r is not None],
        )
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_BATCH_RESPONSE,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=reply.encode(),
        ).encode()

    # -- destination side: query remote networks -----------------------------------

    def remote_query(self, query: NetworkQuery) -> QueryResponse:
        """Send a query to the target network's relay(s) and return the reply.

        Implements steps (2), (3) and (9) of the message flow: discovery
        lookup, serialized forwarding, and response return — with failover
        across redundant remote relays on transport failure or shedding.
        """
        target = self._require_target(query)
        self.stats.queries_sent += 1
        return self._exchange(
            target,
            MSG_KIND_QUERY_REQUEST,
            query.encode(),
            MSG_KIND_QUERY_RESPONSE,
            QueryResponse.decode,
        )

    def remote_query_batch(self, queries: Sequence[NetworkQuery]) -> list[QueryResponse]:
        """Send N queries, batching the members that share a target network.

        Each distinct target costs one discovery lookup, one batch envelope
        round-trip, and one failover loop regardless of how many member
        queries address it. Responses come back positionally aligned with
        ``queries``. Raises like :meth:`remote_query` — but note that a
        transport-level failure only poisons the members of the affected
        target; query-level failures arrive as error *responses* in their
        slots.
        """
        queries = list(queries)
        if not queries:
            return []
        groups: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(self._require_target(query), []).append(position)
        responses: list[QueryResponse | None] = [None] * len(queries)
        for target, positions in groups.items():
            members = [queries[p] for p in positions]
            request = BatchQueryRequest(version=PROTOCOL_VERSION, queries=members)

            def decode_batch(payload: bytes, expected: int = len(members)) -> BatchQueryResponse:
                reply = BatchQueryResponse.decode(payload)
                if len(reply.responses) != expected:
                    raise ProtocolError(
                        f"batch reply carries {len(reply.responses)} responses, "
                        f"expected {expected}"
                    )
                return reply

            self.stats.queries_sent += len(members)
            self.stats.batches_sent += 1
            reply = self._exchange(
                target,
                MSG_KIND_BATCH_REQUEST,
                request.encode(),
                MSG_KIND_BATCH_RESPONSE,
                decode_batch,
            )
            for position, response in zip(positions, reply.responses):
                responses[position] = response
        return [response for response in responses if response is not None]

    def _require_target(self, query: NetworkQuery) -> str:
        if query.address is None or not query.address.network:
            raise ProtocolError("query has no target network address")
        return query.address.network

    def _exchange(
        self,
        target: str,
        kind: int,
        payload: bytes,
        expect_reply_kind: int,
        decode_reply: Callable[[bytes], object],
    ):
        """One request/reply round with failover across redundant relays.

        Retryable failures (transport errors — including a dead endpoint's
        :class:`RelayUnavailableError` —, shed load, malformed or
        mis-correlated replies) advance to the next endpoint; a
        non-retryable error envelope raises :class:`RelayError`
        immediately.
        """
        endpoints = self._discovery.lookup(target)  # may raise DiscoveryError
        request_id = random_id("req-")
        envelope_bytes = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=kind,
            request_id=request_id,
            source_network=self.network_id,
            destination_network=target,
            payload=payload,
        ).encode()
        failures: list[str] = []
        for position, endpoint in enumerate(endpoints):
            if position > 0:
                self.stats.failovers += 1
            try:
                reply_bytes = endpoint.handle_request(envelope_bytes)
            except (RelayUnavailableError, DoSError, RelayError, DiscoveryError) as exc:
                failures.append(str(exc))
                continue
            try:
                reply = RelayEnvelope.decode(reply_bytes)
            except Exception as exc:
                failures.append(f"undecodable reply envelope: {exc}")
                continue
            if reply.kind == MSG_KIND_ERROR:
                message = reply.payload.decode("utf-8", errors="replace")
                if reply.headers.get("retryable") == "true":
                    failures.append(message)
                    continue
                raise RelayError(
                    f"relay for network {target!r} rejected the request: {message}"
                )
            if reply.kind != expect_reply_kind:
                failures.append(f"unexpected reply kind {reply.kind}")
                continue
            if reply.request_id != request_id:
                failures.append(
                    f"reply correlates to {reply.request_id!r}, expected "
                    f"{request_id!r}"
                )
                continue
            try:
                return decode_reply(reply.payload)
            except Exception as exc:
                failures.append(f"undecodable reply payload: {exc}")
                continue
        raise RelayUnavailableError(
            f"all {len(endpoints)} relay(s) for network {target!r} failed: "
            + "; ".join(failures)
        )
