"""The relay service.

"Deployed within, and acting on behalf of, each network is a relay
service ... [it] serves requests for authentic data from applications by
fetching the data along with verifiable proofs from remote networks"
(§3.2). Design points reproduced here:

- relays exchange only *serialized* protocol messages
  (:class:`repro.proto.RelayEnvelope` framing);
- a relay holds *pluggable network drivers* for the network(s) it fronts
  and a *pluggable discovery service* for finding remote relays;
- the architecture "assumes minimal trust in the relay": a relay never
  sees plaintext results or decryptable proofs in confidential mode;
- availability: rate limiting sheds DoS load, and destination-side lookup
  returns all redundant relays of a network so callers fail over (§5).
"""

from __future__ import annotations

from collections import deque

from repro.errors import (
    DiscoveryError,
    DoSError,
    ProtocolError,
    RelayError,
    RelayUnavailableError,
)
from repro.interop.discovery import DiscoveryService, RelayEndpoint
from repro.interop.drivers.base import NetworkDriver
from repro.proto.messages import (
    MSG_KIND_ERROR,
    MSG_KIND_QUERY_REQUEST,
    MSG_KIND_QUERY_RESPONSE,
    PROTOCOL_VERSION,
    NetworkQuery,
    QueryResponse,
    RelayEnvelope,
)
from repro.utils.clock import Clock, SystemClock
from repro.utils.ids import random_id


class RateLimiter:
    """A sliding-window request limiter (the relay's DoS self-protection).

    "DoS protection can also be built into the relay service, protecting
    the peers themselves from such attacks" (§5).
    """

    def __init__(self, max_requests: int, window_seconds: float, clock: Clock | None = None) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._clock = clock or SystemClock()
        self._timestamps: deque[float] = deque()
        self.rejected = 0

    def allow(self) -> bool:
        now = self._clock.now()
        while self._timestamps and now - self._timestamps[0] > self.window_seconds:
            self._timestamps.popleft()
        if len(self._timestamps) >= self.max_requests:
            self.rejected += 1
            return False
        self._timestamps.append(now)
        return True


class RelayStats:
    """Operational counters for a relay."""

    def __init__(self) -> None:
        self.requests_served = 0
        self.requests_rejected = 0
        self.requests_failed = 0
        self.queries_sent = 0
        self.failovers = 0


class RelayService:
    """One network's relay: serves local apps and answers remote relays."""

    def __init__(
        self,
        network_id: str,
        discovery: DiscoveryService,
        clock: Clock | None = None,
        rate_limiter: RateLimiter | None = None,
        relay_id: str | None = None,
    ) -> None:
        self.network_id = network_id
        self.relay_id = relay_id or f"relay-{network_id}"
        self._discovery = discovery
        self._clock = clock or SystemClock()
        self._rate_limiter = rate_limiter
        self._drivers: dict[str, NetworkDriver] = {}
        self.stats = RelayStats()
        self.available = True  # toggled by availability experiments

    def register_driver(self, driver: NetworkDriver) -> None:
        """Attach a driver for a network this relay fronts (usually its own)."""
        self._drivers[driver.network_id] = driver

    # -- source side: serve incoming requests -----------------------------------

    def _error_envelope(self, request_id: str, message: str, retryable: bool) -> bytes:
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_ERROR,
            request_id=request_id,
            source_network=self.network_id,
            payload=message.encode("utf-8"),
            headers={"retryable": "true" if retryable else "false"},
        ).encode()

    def handle_request(self, data: bytes) -> bytes:
        """Serve one serialized request from a remote relay.

        Always returns serialized bytes (an error envelope on failure) —
        a remote relay cannot catch our exceptions across the wire.
        Raises :class:`RelayUnavailableError` only to model a dead relay.
        """
        if not self.available:
            raise RelayUnavailableError(f"relay {self.relay_id!r} is down")
        if self._rate_limiter is not None and not self._rate_limiter.allow():
            self.stats.requests_rejected += 1
            return self._error_envelope("", "rate limit exceeded: request shed", True)
        try:
            envelope = RelayEnvelope.decode(data)
        except Exception as exc:
            self.stats.requests_failed += 1
            return self._error_envelope("", f"undecodable envelope: {exc}", False)
        if envelope.kind != MSG_KIND_QUERY_REQUEST:
            self.stats.requests_failed += 1
            return self._error_envelope(
                envelope.request_id, f"unexpected message kind {envelope.kind}", False
            )
        try:
            query = NetworkQuery.decode(envelope.payload)
        except Exception as exc:
            self.stats.requests_failed += 1
            return self._error_envelope(
                envelope.request_id, f"undecodable query: {exc}", False
            )
        target = query.address.network if query.address else ""
        driver = self._drivers.get(target)
        if driver is None:
            self.stats.requests_failed += 1
            return self._error_envelope(
                envelope.request_id,
                f"relay {self.relay_id!r} has no driver for network {target!r}",
                False,
            )
        response = driver.execute_query(query)
        self.stats.requests_served += 1
        return RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_QUERY_RESPONSE,
            request_id=envelope.request_id,
            source_network=self.network_id,
            destination_network=envelope.source_network,
            payload=response.encode(),
        ).encode()

    # -- destination side: query remote networks -----------------------------------

    def remote_query(self, query: NetworkQuery) -> QueryResponse:
        """Send a query to the target network's relay(s) and return the reply.

        Implements steps (2), (3) and (9) of the message flow: discovery
        lookup, serialized forwarding, and response return — with failover
        across redundant remote relays on transport failure or shedding.
        """
        if query.address is None or not query.address.network:
            raise ProtocolError("query has no target network address")
        target = query.address.network
        endpoints = self._discovery.lookup(target)  # may raise DiscoveryError
        request_id = random_id("req-")
        envelope_bytes = RelayEnvelope(
            version=PROTOCOL_VERSION,
            kind=MSG_KIND_QUERY_REQUEST,
            request_id=request_id,
            source_network=self.network_id,
            destination_network=target,
            payload=query.encode(),
        ).encode()
        self.stats.queries_sent += 1
        failures: list[str] = []
        for position, endpoint in enumerate(endpoints):
            if position > 0:
                self.stats.failovers += 1
            try:
                reply_bytes = endpoint.handle_request(envelope_bytes)
            except (RelayError, DoSError, DiscoveryError) as exc:
                failures.append(str(exc))
                continue
            try:
                reply = RelayEnvelope.decode(reply_bytes)
            except Exception as exc:
                failures.append(f"undecodable reply envelope: {exc}")
                continue
            if reply.kind == MSG_KIND_ERROR:
                message = reply.payload.decode("utf-8", errors="replace")
                if reply.headers.get("retryable") == "true":
                    failures.append(message)
                    continue
                raise RelayError(
                    f"relay for network {target!r} rejected the request: {message}"
                )
            if reply.kind != MSG_KIND_QUERY_RESPONSE:
                failures.append(f"unexpected reply kind {reply.kind}")
                continue
            if reply.request_id != request_id:
                failures.append(
                    f"reply correlates to {reply.request_id!r}, expected "
                    f"{request_id!r}"
                )
                continue
            try:
                return QueryResponse.decode(reply.payload)
            except Exception as exc:
                failures.append(f"undecodable query response: {exc}")
                continue
        raise RelayUnavailableError(
            f"all {len(endpoints)} relay(s) for network {target!r} failed: "
            + "; ".join(failures)
        )
