"""Network discovery and relay lookup.

"The local relay, designed to support pluggable discovery services,
performs a lookup using such a service for the address of the destination
relay based on the remote network's name" (§3.3, step 2). Two services
are provided, matching the paper's PoC ("a local file-based registry was
plugged into the SWT Relay", §4.3):

- :class:`InMemoryRegistry` — direct network-id -> relay registration.
- :class:`FileRegistry` — a JSON file maps network ids to relay addresses;
  an :class:`AddressResolver` maps addresses to live relay endpoints
  through the pluggable transport seam (:mod:`repro.net.transport`):
  explicitly-bound addresses resolve in-process, and ``tcp://host:port``
  addresses dial a real :class:`~repro.net.RelayServer` socket.

A lookup returns *all* known relays for a network so callers can fail over
across redundant relays — the paper's DoS mitigation (§5).
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Protocol

from repro.errors import DiscoveryError

logger = logging.getLogger("repro.discovery")

#: Distinguishes temp files written by concurrent registrations within
#: one process; the pid in the name distinguishes across processes.
_TMP_COUNTER = itertools.count()


class RelayEndpoint(Protocol):
    """Anything that can serve a serialized relay request."""

    def handle_request(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...


class DiscoveryService(ABC):
    """Pluggable lookup of relay endpoints by network id."""

    @abstractmethod
    def lookup(self, network_id: str) -> list[RelayEndpoint]:
        """All known relay endpoints for ``network_id`` (raises
        :class:`DiscoveryError` when none are registered)."""


class InMemoryRegistry(DiscoveryService):
    """A process-local registry of relays.

    Thread-safe: concurrent relays (batch fan-out, event pushes, asset
    exchange legs running on different threads) share one registry, so
    reads and mutations serialize on an internal lock and ``lookup``
    returns a snapshot copy.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._relays: dict[str, list[RelayEndpoint]] = {}

    def register(self, network_id: str, relay: RelayEndpoint) -> None:
        with self._lock:
            self._relays.setdefault(network_id, []).append(relay)

    def unregister(self, network_id: str, relay: RelayEndpoint) -> None:
        with self._lock:
            endpoints = self._relays.get(network_id, [])
            if relay in endpoints:
                endpoints.remove(relay)

    def lookup(self, network_id: str) -> list[RelayEndpoint]:
        with self._lock:
            endpoints = self._relays.get(network_id)
            if not endpoints:
                raise DiscoveryError(
                    f"no relay registered for network {network_id!r}"
                )
            return list(endpoints)


class AddressResolver:
    """Resolves relay address strings to live endpoints via transports.

    The resolver is a routing table over the pluggable
    :class:`~repro.net.transport.RelayTransport` seam: explicit
    :meth:`bind`-ings (the historical in-process simulation contract,
    now a named :class:`~repro.net.LocalTransport`) are consulted first,
    then the address's URI scheme picks a registered transport — by
    default a :class:`~repro.net.TcpTransport`, so ``tcp://host:port``
    entries in a registry file resolve to live pooled socket endpoints
    with no further configuration. Deployments mount additional
    transports (or replace the defaults) with :meth:`register_transport`.
    """

    def __init__(self, transports: "list | None" = None) -> None:
        from repro.net.transport import LocalTransport, TcpTransport

        self._lock = threading.RLock()
        self._local = LocalTransport()
        self._transports: dict[str, object] = {}
        if transports is None:
            transports = [TcpTransport()]
        for transport in [self._local, *transports]:
            self.register_transport(transport)

    @property
    def local(self):
        """The in-process transport backing explicit :meth:`bind` calls."""
        return self._local

    def register_transport(self, transport) -> None:
        """Route the transport's declared schemes to it (latest wins)."""
        with self._lock:
            for scheme in transport.schemes:
                self._transports[scheme] = transport

    def bind(self, address: str, endpoint: RelayEndpoint) -> None:
        """Pin ``address`` to an in-process endpoint (overrides schemes)."""
        self._local.bind(address, endpoint)

    def resolve(self, address: str) -> RelayEndpoint:
        from repro.net.transport import address_scheme

        if self._local.known(address):
            return self._local.connect(address)
        scheme = address_scheme(address)
        with self._lock:
            transport = self._transports.get(scheme)
        if transport is None or transport is self._local:
            raise DiscoveryError(f"relay address {address!r} does not resolve")
        return transport.connect(address)


class FileRegistry(DiscoveryService):
    """A local file-based registry (as plugged into the paper's SWT relay).

    The file holds JSON of the form::

        {"stl": ["relay://stl-1", "relay://stl-2"], "swt": ["relay://swt-1"]}

    The file is re-read on every lookup, so operators can edit it while the
    relay is running. Registrations (read-modify-write of the file) and
    lookups serialize on an internal per-instance lock, so threads sharing
    one ``FileRegistry`` object never interleave partial writes. Distinct
    instances (or processes) pointing at the same file are NOT mutually
    protected — that would need OS file locking; share the instance, or
    treat the file as operator-edited configuration.
    """

    def __init__(self, path: str | Path, resolver: AddressResolver) -> None:
        self._lock = threading.RLock()
        self._path = Path(path)
        self._resolver = resolver
        #: Addresses skipped by :meth:`lookup` because they failed to
        #: resolve (exported by :mod:`repro.ops.exporters`).
        self.addresses_skipped = 0

    def _load(self) -> dict[str, list[str]]:
        try:
            raw = self._path.read_text(encoding="utf-8")
        except FileNotFoundError as exc:
            raise DiscoveryError(f"registry file {self._path} does not exist") from exc
        try:
            table = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise DiscoveryError(f"registry file {self._path} is not valid JSON") from exc
        if not isinstance(table, dict):
            raise DiscoveryError(f"registry file {self._path} must hold a JSON object")
        return table

    def register(self, network_id: str, address: str) -> None:
        """Append an address to the registry file (creating it if needed).

        The write is atomic: the new table goes to a temp file in the
        same directory and is ``os.replace``d over the registry, so a
        crash mid-write (or a concurrent reader process) can never
        observe partial JSON — the file is always the old table or the
        new one, never a torn mix.
        """
        with self._lock:
            table: dict[str, list[str]] = {}
            if self._path.exists():
                table = self._load()
            table.setdefault(network_id, [])
            if address not in table[network_id]:
                table[network_id].append(address)
            self._replace_file(json.dumps(table, indent=2, sort_keys=True))

    def _replace_file(self, payload: str) -> None:
        # Same directory as the target so os.replace stays a same-
        # filesystem rename (the atomicity guarantee).
        tmp = self._path.with_name(
            f".{self._path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self._path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def lookup(self, network_id: str) -> list[RelayEndpoint]:
        """Live endpoints for every *resolvable* registered address.

        A malformed or stale entry must not take down lookups for a
        network that still has healthy relays (that would defeat the
        paper's §5 redundancy story), so unresolvable addresses are
        skipped with a logged warning and counted in
        ``addresses_skipped``; :class:`DiscoveryError` is raised only
        when *no* address resolves.
        """
        with self._lock:
            table = self._load()
        addresses = table.get(network_id)
        if not addresses:
            raise DiscoveryError(
                f"network {network_id!r} not present in registry {self._path}"
            )
        endpoints: list[RelayEndpoint] = []
        failures: list[str] = []
        for address in addresses:
            try:
                endpoints.append(self._resolver.resolve(address))
            except DiscoveryError as exc:
                failures.append(f"{address!r}: {exc}")
                with self._lock:
                    self.addresses_skipped += 1
                logger.warning(
                    "skipping unresolvable relay address",
                    extra={
                        "network_id": network_id,
                        "address": address,
                        "error": str(exc),
                    },
                )
        if not endpoints:
            raise DiscoveryError(
                f"no relay address for network {network_id!r} resolves: "
                + "; ".join(failures)
            )
        return endpoints

    def counters(self) -> dict[str, int]:
        """Monotonic discovery counters (for metrics exporters)."""
        with self._lock:
            return {"addresses_skipped": self.addresses_skipped}
