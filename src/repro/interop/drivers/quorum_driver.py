"""Quorum driver: the network-neutral protocol against a Quorum-like network.

Queries address contract view functions; each selected peer executes the
view against its replica and returns a *signed query response* — the §5
peer augmentation — which the attestation proof scheme packages exactly as
for Fabric.
"""

from __future__ import annotations

from repro.crypto.certs import Certificate
from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, PolicyError, ReproError
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.base import NetworkDriver
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme
from repro.proto.address import CrossNetworkAddress
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    Attestation,
    NetworkQuery,
    QueryResponse,
)
from repro.quorum.contracts import CallContext
from repro.quorum.network import QuorumNetwork


class QuorumDriver(NetworkDriver):
    """Drives queries against an in-process :class:`QuorumNetwork`."""

    platform = "quorum"

    def __init__(self, network: QuorumNetwork, port: InteropPort) -> None:
        super().__init__(network.name)
        self._network = network
        self._port = port
        self._scheme = AttestationProofScheme()

    def enable_assets(self, invoker, contract: str | None = None) -> None:
        """Grant the asset capability: HTLC commands submit under ``invoker``.

        Exposure control and foreign-certificate authentication reuse this
        driver's :class:`InteropPort`; ``contract`` names the deployed
        vault contract (defaults to
        :data:`repro.assets.contracts.QUORUM_ASSET_CONTRACT`).
        """
        from repro.assets.contracts import QUORUM_ASSET_CONTRACT
        from repro.assets.ports import QuorumAssetLedgerPort

        self.attach_asset_port(
            QuorumAssetLedgerPort(
                self._network, self._port, invoker, contract or QUORUM_ASSET_CONTRACT
            )
        )

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        address_msg = query.address
        if address_msg is None:
            return self._error(query, "query has no address")
        address = CrossNetworkAddress(
            network=address_msg.network,
            ledger=address_msg.ledger,
            contract=address_msg.contract,
            function=address_msg.function,
        )
        try:
            policy = parse_verification_policy(query.policy.expression)
        except (PolicyError, AttributeError) as exc:
            return self._error(query, f"malformed verification policy: {exc}")

        available = [(peer.org, peer.peer_id) for peer in self._network.peers]
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query,
                f"policy {policy.expression()} cannot be satisfied by quorum "
                f"network {self.network_id!r}",
            )

        auth = query.auth
        try:
            creator = (
                Certificate.from_bytes(auth.certificate)
                if auth and auth.certificate
                else None
            )
            self._port.check_access(
                auth.requesting_network if auth else "",
                auth.requesting_org if auth else "",
                address.contract,
                address.function,
                creator,
            )
        except AccessDeniedError as exc:
            return self._denied(query, str(exc))
        except ReproError as exc:
            return self._error(query, str(exc))

        client_key = None
        if query.confidential:
            client_key = PublicKey.from_bytes(auth.public_key)

        requestor = auth.requestor if auth else "remote"
        attestations: list[Attestation] = []
        result_envelope = b""
        for org, peer_id in selection:
            peer = self._network.peer(peer_id)
            ctx = CallContext(
                sender=requestor,
                sender_org=auth.requesting_org if auth else "",
                timestamp=self._network.clock.now(),
            )
            try:
                plaintext = peer.view(
                    address.contract, address.function, list(query.args), ctx
                )
            except ReproError as exc:
                return self._error(query, f"peer {peer_id!r} query failed: {exc}")
            envelope = self._port.seal(plaintext, client_key, query.confidential)
            attestations.append(
                self._scheme.generate_attestation(
                    peer_identity=peer.identity,
                    network=self.network_id,
                    address=address,
                    args=list(query.args),
                    nonce=query.nonce,
                    result_envelope=envelope,
                    client_key=client_key,
                    confidential=query.confidential,
                    timestamp=self._network.clock.now(),
                )
            )
            if not result_envelope:
                result_envelope = envelope

        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response.result_cipher = result_envelope
        else:
            response.result_plain = result_envelope
        return response
