"""Driver interface: network-neutral protocol -> platform calls."""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.errors import UnsupportedCapabilityError
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_ACCESS_DENIED,
    STATUS_ERROR,
    EventSubscribeRequest,
    NetworkQuery,
    QueryResponse,
)

_logger = logging.getLogger("repro.driver")


class NetworkDriver(ABC):
    """Translates :class:`NetworkQuery` into calls on one concrete network.

    A driver runs *inside* the source network's trust domain (it is part of
    the relay deployment) but holds no signing keys of its own: proofs come
    from peers, so a compromised driver can deny service but cannot forge
    consensus-backed data.
    """

    platform: str = ""

    #: Upper bound on concurrent in-flight queries when serving a batch.
    #: Drivers fronting networks whose client stack is not thread-safe can
    #: set this to 1 to force sequential execution.
    batch_concurrency: int = 4

    #: Capability flags — the relay routes transact/subscribe/asset
    #: envelopes only to drivers that declare support (§2 lists query,
    #: transact, and publish/subscribe as the three interoperability
    #: primitives; hash-time-locked asset exchange is the §6 extension).
    supports_transactions: bool = False
    supports_events: bool = False
    supports_assets: bool = False

    def __init__(self, network_id: str) -> None:
        self.network_id = network_id
        self._asset_port = None

    @abstractmethod
    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        """Orchestrate proof collection for one query (§3.3 steps 5-7)."""

    # -- transaction capability ---------------------------------------------------

    def execute_transaction(self, query: NetworkQuery) -> QueryResponse:
        """Run one request through the network's commit pipeline (§5).

        The default declines: a driver opts in by setting
        :attr:`supports_transactions` and overriding this with an
        implementation whose attestations cover the *committed* outcome
        (tx id, block number, validation code).
        """
        return self._error(
            query,
            f"driver for network {self.network_id!r} does not support "
            f"cross-network transactions",
        )

    def execute_transaction_batch(
        self, queries: Sequence[NetworkQuery]
    ) -> list[QueryResponse]:
        """Serve a batch of transactions with partial-failure semantics.

        Unlike :meth:`execute_batch`, members run *sequentially*: commit
        ordering within one envelope is part of the contract (a batch of
        transactions replays deterministically), and concurrent submission
        would race MVCC validation for overlapping keys.
        """
        return [self._execute_transaction_guarded(query) for query in queries]

    def _execute_transaction_guarded(self, query: NetworkQuery) -> QueryResponse:
        if _logger.isEnabledFor(logging.DEBUG):
            _logger.debug(
                "driver executing transaction",
                extra={"network_id": self.network_id, "nonce": query.nonce},
            )
        try:
            return self.execute_transaction(query)
        except Exception as exc:  # noqa: BLE001 - a batch member must not escape
            return self._error(query, f"driver failed to execute the transaction: {exc}")

    # -- event capability ---------------------------------------------------------

    def open_event_tap(
        self,
        request: EventSubscribeRequest,
        listener: Callable[..., None],
    ) -> object:
        """Tap the network's event hub for one remote subscription.

        ``listener`` is called with a
        :class:`repro.interop.events.RemoteEventNotification` for each
        matching committed event. Returns an opaque tap handle for
        :meth:`close_event_tap`. Raises :class:`AccessDeniedError` when the
        source network's exposure control denies the subscription, and
        :class:`UnsupportedCapabilityError` when the driver has no event
        capability.
        """
        raise UnsupportedCapabilityError(
            f"driver for network {self.network_id!r} does not support "
            f"event subscriptions"
        )

    def close_event_tap(self, tap: object) -> None:
        """Deactivate a tap returned by :meth:`open_event_tap`."""

    # -- asset capability ---------------------------------------------------------

    def attach_asset_port(self, port) -> None:
        """Grant the asset capability by attaching an
        :class:`repro.assets.ports.AssetLedgerPort` for this driver's
        network; the relay then routes ``MSG_KIND_ASSET_*`` envelopes here.
        """
        self._asset_port = port
        self.supports_assets = True

    @property
    def asset_port(self):
        port = self._asset_port
        if port is None:
            raise UnsupportedCapabilityError(
                f"driver for network {self.network_id!r} does not support "
                f"asset operations (no asset ledger port attached)"
            )
        return port

    def lock_asset(self, command):
        """Escrow an asset under a hashlock + timelock (HTLC lock)."""
        return self.asset_port.lock_asset(command)

    def claim_asset(self, command):
        """Transfer a locked asset by revealing the preimage."""
        return self.asset_port.claim_asset(command)

    def unlock_asset(self, command):
        """Refund an expired lock back to the asset's owner."""
        return self.asset_port.unlock_asset(command)

    def asset_status(self, command):
        """Read an asset's current (unproven) lock record."""
        return self.asset_port.asset_status(command)

    def execute_batch(self, queries: Sequence[NetworkQuery]) -> list[QueryResponse]:
        """Serve every query of a batch, fanning across the driver.

        Partial-failure semantics: a member that raises is answered with a
        ``STATUS_ERROR`` response in its slot; the remaining members are
        unaffected. Responses are positional (``result[i]`` answers
        ``queries[i]``).
        """
        queries = list(queries)
        if not queries:
            return []
        workers = min(self.batch_concurrency, len(queries))
        if workers <= 1:
            return [self._execute_guarded(query) for query in queries]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"driver-{self.network_id}"
        ) as executor:
            return list(executor.map(self._execute_guarded, queries))

    def _execute_guarded(self, query: NetworkQuery) -> QueryResponse:
        try:
            return self.execute_query(query)
        except Exception as exc:  # noqa: BLE001 - a batch member must not escape
            return self._error(query, f"driver failed to execute the query: {exc}")

    # -- shared error helpers ---------------------------------------------------

    def _denied(self, query: NetworkQuery, message: str) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_ACCESS_DENIED,
            error=message,
        )

    def _error(self, query: NetworkQuery, message: str) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_ERROR,
            error=message,
        )
