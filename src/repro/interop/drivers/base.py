"""Driver interface: network-neutral protocol -> platform calls."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_ACCESS_DENIED,
    STATUS_ERROR,
    NetworkQuery,
    QueryResponse,
)


class NetworkDriver(ABC):
    """Translates :class:`NetworkQuery` into calls on one concrete network.

    A driver runs *inside* the source network's trust domain (it is part of
    the relay deployment) but holds no signing keys of its own: proofs come
    from peers, so a compromised driver can deny service but cannot forge
    consensus-backed data.
    """

    platform: str = ""

    def __init__(self, network_id: str) -> None:
        self.network_id = network_id

    @abstractmethod
    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        """Orchestrate proof collection for one query (§3.3 steps 5-7)."""

    # -- shared error helpers ---------------------------------------------------

    def _denied(self, query: NetworkQuery, message: str) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_ACCESS_DENIED,
            error=message,
        )

    def _error(self, query: NetworkQuery, message: str) -> QueryResponse:
        return QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_ERROR,
            error=message,
        )
