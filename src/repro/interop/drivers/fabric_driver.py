"""Fabric driver: proof orchestration against a Fabric-like network.

Implements §3.3 steps (5)-(7): "[the relay] uses the appropriate network
driver to orchestrate the query against the respective peers in the
network based on the specified verification policy. Each peer executing
the contract function refers to the Exposure Control contract ... The
results from each of the selected peers collectively form the proof
satisfying the verification policy."
"""

from __future__ import annotations

import logging

from repro.errors import PolicyError
from repro.fabric.network import FabricNetwork
from repro.fabric.peer import Proposal
from repro.interop.drivers.base import NetworkDriver
from repro.interop.policy import parse_verification_policy
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    Attestation,
    NetworkQuery,
    QueryResponse,
)
from repro.utils.encoding import canonical_json
from repro.utils.ids import random_id

INTEROP_TRANSIENT_KEY = "interop"
INTEROP_PLUGIN = "interop"

#: Driver-layer structured logging; records carry the serving relay's
#: active trace (driver code runs on the relay's serve thread).
logger = logging.getLogger("repro.driver")

_ACCESS_DENIED_MARKER = "AccessDeniedError"


def build_interop_context(query: NetworkQuery) -> bytes:
    """The transient payload that travels into chaincode with a relay query.

    Source chaincode uses it to detect "an incoming query is from a relay"
    (§4.3) and to learn the requestor's identity and encryption key; the
    interop endorsement plugin uses it to build and protect the proof
    metadata.
    """
    address = query.address
    auth = query.auth
    return canonical_json(
        {
            "address": {
                "network": address.network if address else "",
                "ledger": address.ledger if address else "",
                "contract": address.contract if address else "",
                "function": address.function if address else "",
            },
            "args": list(query.args),
            "nonce": query.nonce,
            "requesting_network": auth.requesting_network if auth else "",
            "requesting_org": auth.requesting_org if auth else "",
            "requestor": auth.requestor if auth else "",
            "client_pubkey": auth.public_key.hex() if auth else "",
            "confidential": query.confidential,
        }
    )


class FabricDriver(NetworkDriver):
    """Drives queries against an in-process :class:`FabricNetwork`."""

    platform = "fabric"

    def __init__(self, network: FabricNetwork, event_reader=None) -> None:
        super().__init__(network.name)
        self._network = network
        # Event capability is opt-in: subscribe-time ECC rule reads need a
        # designated local reader identity (see enable_relay_events).
        self._event_reader = event_reader
        self.supports_events = event_reader is not None

    def enable_events(self, reader) -> None:
        """Grant the event capability with ``reader`` for ECC rule reads."""
        self._event_reader = reader
        self.supports_events = True

    def enable_assets(self, invoker, contract: str | None = None) -> None:
        """Grant the asset capability: HTLC commands submit under ``invoker``.

        ``contract`` names the deployed asset chaincode (defaults to
        :data:`repro.assets.contracts.FABRIC_ASSET_CHAINCODE`).
        """
        from repro.assets.contracts import FABRIC_ASSET_CHAINCODE
        from repro.assets.ports import FabricAssetLedgerPort

        self.attach_asset_port(
            FabricAssetLedgerPort(
                self._network, invoker, contract or FABRIC_ASSET_CHAINCODE
            )
        )

    def open_event_tap(self, request, listener):
        """Exposure-check and tap the network's event hub (§2 primitive iii)."""
        from repro.errors import DriverError
        from repro.interop.events import check_event_exposure, open_hub_tap

        if self._event_reader is None:
            raise DriverError(
                f"driver for network {self.network_id!r} has no event "
                f"capability enabled (no ECC reader identity)"
            )
        auth = request.auth
        address = request.address
        check_event_exposure(
            self._network,
            self._event_reader,
            auth.requesting_network if auth else "",
            auth.requesting_org if auth else "",
            address.contract if address else "",
            request.event_name,
        )
        return open_hub_tap(
            self._network,
            address.contract if address else "",
            request.event_name,
            listener,
        )

    def close_event_tap(self, tap) -> None:
        tap.close()

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        address = query.address
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "driver executing query",
                extra={
                    "network_id": self.network_id,
                    "contract": address.contract if address else "",
                    "function": address.function if address else "",
                    "nonce": query.nonce,
                },
            )
        if address is None or address.ledger != self._network.channel:
            return self._error(
                query,
                f"network {self.network_id!r} has no ledger "
                f"{address.ledger if address else ''!r}",
            )
        if query.policy is None or not query.policy.expression:
            return self._error(query, "query carries no verification policy")
        try:
            policy = parse_verification_policy(query.policy.expression)
        except PolicyError as exc:
            return self._error(query, f"malformed verification policy: {exc}")

        available = [(peer.org, peer.peer_id) for peer in self._network.peers]
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query,
                f"verification policy {policy.expression()} cannot be satisfied "
                f"by the peers of network {self.network_id!r}",
            )

        transient = {INTEROP_TRANSIENT_KEY: build_interop_context(query)}
        creator = query.auth.certificate if query.auth else b""
        attestations: list[Attestation] = []
        result_envelope = b""
        for org, peer_id in selection:
            peer = self._network.peer(peer_id)
            proposal = Proposal(
                tx_id=random_id("interop-"),
                channel=self._network.channel,
                chaincode=address.contract,
                function=address.function,
                args=tuple(query.args),
                creator=creator,
                transient=transient,
                timestamp=self._network.clock.now(),
            )
            response = peer.endorse(proposal, plugin=INTEROP_PLUGIN)
            if not response.success:
                if response.message.startswith(_ACCESS_DENIED_MARKER):
                    return self._denied(query, response.message)
                return self._error(
                    query,
                    f"peer {peer_id!r} failed to execute the query: "
                    f"{response.message}",
                )
            assert response.endorsement is not None
            attestations.append(Attestation.decode(response.endorsement.signature))
            if not result_envelope:
                result_envelope = response.result

        response_msg = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response_msg.result_cipher = result_envelope
        else:
            response_msg.result_plain = result_envelope
        return response_msg
