"""Corda driver: the network-neutral protocol against a Corda-like network.

Queries address states in node vaults; proofs are attestations from the
nodes the verification policy selects — which may include the notary, as
§5 anticipates ("a verification policy can be specified to include
signatures from notaries").

The driver carries the full §2 capability surface:

- **transactions** (:meth:`CordaDriver.enable_transactions`): a remote
  invocation runs a registered *flow handler* on a designated local
  invoker node — the Corda analogue of Fabric's invoker identity — and
  the attestations cover the *finalized* outcome (transaction id and
  notarization order), each attester confirming the transaction is in its
  own vault history;
- **events** (:meth:`CordaDriver.enable_events`): a subscription taps the
  network's finality observers; each notarized transaction whose command
  matches the subscribed event name is pushed as a wire-shape
  notification, exposure-gated by the platform port under the same
  ``event:<name>`` rule objects as Fabric;
- **assets** (:meth:`CordaDriver.enable_assets`): the HTLC vault as
  notary-backed escrow — each asset is a linear state whose lock record
  evolves under the contract rules of
  :func:`repro.assets.contracts.register_corda_asset_contract`, with the
  notary's uniqueness check ruling out double claim/refund, and
  ``GetLock``/``GetAsset`` registered as proof-carrying query handlers so
  counterparties verify locks exactly as on Fabric/Quorum. Without
  enablement the relay keeps failing closed with a capability-marked
  error (:class:`repro.errors.UnsupportedCapabilityError`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.corda.network import CordaNetwork
from repro.corda.node import CordaNode
from repro.corda.states import LinearState
from repro.corda.transactions import CordaTransaction
from repro.crypto.certs import Certificate
from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, PolicyError, ReproError
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.base import NetworkDriver
from repro.interop.events import RemoteEventNotification
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme, seal_result
from repro.proto.address import CrossNetworkAddress
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    Attestation,
    EventSubscribeRequest,
    NetworkQuery,
    QueryResponse,
)
from repro.utils.encoding import canonical_json

# A query handler resolves (node, args) -> plaintext result bytes.
QueryHandler = Callable[[CordaNode, list[str]], bytes]

# A flow handler drives one remote invocation on the invoker node and
# returns (plaintext result bytes, the finalized transaction).
FlowHandler = Callable[[CordaNetwork, CordaNode, list[str]], tuple[bytes, CordaTransaction]]


def default_vault_query(node: CordaNode, args: list[str]) -> bytes:
    """Built-in handler ``vault/GetState``: fetch a state by linear id."""
    if len(args) != 1:
        raise ReproError("GetState expects exactly one argument (linear_id)")
    _, state = node.lookup(args[0])
    return json.dumps(
        {"linear_id": state.linear_id, "kind": state.kind, "data": state.data},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def default_record_state_flow(
    network: CordaNetwork, node: CordaNode, args: list[str]
) -> tuple[bytes, CordaTransaction]:
    """Built-in flow ``vault/RecordState``: issue a fresh linear state.

    Args: ``linear_id, kind, data_json[, participants_csv]`` — with no
    explicit participants every node of the network participates (so the
    state is visible to, and signable by, any attester a verification
    policy may select).
    """
    if len(args) < 3:
        raise ReproError(
            "RecordState expects linear_id, kind, data_json[, participants]"
        )
    linear_id, kind, data_json = args[0], args[1], args[2]
    if len(args) > 3 and args[3]:
        participants = tuple(part for part in args[3].split(",") if part)
    else:
        participants = tuple(peer.name for peer in network.nodes)
    state = LinearState(
        linear_id=linear_id,
        kind=kind,
        data=json.loads(data_json),
        participants=participants,
    )
    transaction = node.propose([], [state], "Record")
    result = json.dumps(
        {"linear_id": linear_id, "kind": kind, "tx_id": transaction.tx_id},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return result, transaction


@dataclass
class CordaEventTap:
    """A closeable listener on the network's finality observers.

    Closing flips a flag the observer closure checks *and* detaches the
    closure from the network (via :attr:`detach`), so subscription churn
    never accumulates dead observers.
    """

    network_id: str
    contract: str
    event_name: str
    active: bool = True
    delivered: int = field(default=0)
    #: Set by the driver: deregisters this tap's observer closure.
    detach: Callable[[], None] | None = None

    def close(self) -> None:
        self.active = False
        if self.detach is not None:
            self.detach()
            self.detach = None


class CordaDriver(NetworkDriver):
    """Drives queries against an in-process :class:`CordaNetwork`."""

    platform = "corda"

    def __init__(self, network: CordaNetwork, port: InteropPort) -> None:
        super().__init__(network.name)
        self._network = network
        self._port = port
        self._scheme = AttestationProofScheme()
        self._handlers: dict[tuple[str, str], QueryHandler] = {
            ("vault", "GetState"): default_vault_query,
        }
        self._flows: dict[tuple[str, str], FlowHandler] = {
            ("vault", "RecordState"): default_record_state_flow,
        }
        self._invoker_node: str | None = None

    def register_handler(
        self, contract: str, function: str, handler: QueryHandler
    ) -> None:
        self._handlers[(contract, function)] = handler

    def register_flow(
        self, contract: str, function: str, handler: FlowHandler
    ) -> None:
        """Expose ``contract/function`` as a remotely-invokable flow."""
        self._flows[(contract, function)] = handler

    # -- capability enablement ----------------------------------------------------

    def enable_transactions(self, invoker_node: str | CordaNode) -> None:
        """Grant the transaction capability.

        ``invoker_node`` is the designated local node that initiates flows
        on behalf of authenticated foreign requestors (a governance choice,
        mirroring Fabric's invoker identity — the foreign client is not a
        member of this network).
        """
        name = (
            invoker_node.name
            if isinstance(invoker_node, CordaNode)
            else invoker_node
        )
        self._network.node(name)  # fail fast on an unknown node
        self._invoker_node = name
        self.supports_transactions = True

    def enable_assets(
        self, invoker_node: str | CordaNode, contract: str | None = None
    ) -> None:
        """Grant the asset capability: HTLC flows propose under ``invoker_node``.

        Registers the vault's contract rules on the network (idempotent),
        attaches a :class:`repro.assets.ports.CordaAssetLedgerPort`, and
        exposes ``GetLock``/``GetAsset`` as query handlers under
        ``contract`` (default
        :data:`repro.assets.contracts.CORDA_ASSET_CONTRACT`) so remote
        coordinators can fetch proof-carrying lock records.
        """
        from repro.assets.contracts import (
            CORDA_ASSET_CONTRACT,
            register_corda_asset_contract,
        )
        from repro.assets.ports import CordaAssetLedgerPort

        name = (
            invoker_node.name
            if isinstance(invoker_node, CordaNode)
            else invoker_node
        )
        node = self._network.node(name)  # fail fast on an unknown node
        contract = contract or CORDA_ASSET_CONTRACT
        register_corda_asset_contract(self._network)
        port = CordaAssetLedgerPort(self._network, self._port, node, contract)
        self.attach_asset_port(port)
        self.register_handler(contract, "GetLock", port.get_lock_view)
        self.register_handler(contract, "GetAsset", port.get_asset_view)

    def enable_events(self) -> None:
        """Grant the event capability (subscriptions tap network finality).

        Needs no reader identity: the Corda port holds the exposure rules
        in node-attached service state, not on-ledger chaincode.
        """
        self.supports_events = True

    def _attesting_identity(self, peer_id: str):
        if peer_id == self._network.notary.identity.id:
            return self._network.notary.identity
        return self._network.node(peer_id.split(".", 1)[0]).identity

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        address_msg = query.address
        if address_msg is None:
            return self._error(query, "query has no address")
        address = CrossNetworkAddress(
            network=address_msg.network,
            ledger=address_msg.ledger,
            contract=address_msg.contract,
            function=address_msg.function,
        )
        handler = self._handlers.get((address.contract, address.function))
        if handler is None:
            return self._error(
                query,
                f"corda network {self.network_id!r} serves no query "
                f"{address.contract}/{address.function}",
            )
        try:
            policy = parse_verification_policy(query.policy.expression)
        except (PolicyError, AttributeError) as exc:
            return self._error(query, f"malformed verification policy: {exc}")

        available = [
            (node.org, node.identity.id) for node in self._network.nodes
        ]
        available.append(
            (self._network.notary.identity.org, self._network.notary.identity.id)
        )
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query,
                f"policy {policy.expression()} cannot be satisfied by corda "
                f"network {self.network_id!r}",
            )

        auth = query.auth
        try:
            creator = (
                Certificate.from_bytes(auth.certificate)
                if auth and auth.certificate
                else None
            )
            self._port.check_access(
                auth.requesting_network if auth else "",
                auth.requesting_org if auth else "",
                address.contract,
                address.function,
                creator,
            )
        except AccessDeniedError as exc:
            return self._denied(query, str(exc))
        except ReproError as exc:
            return self._error(query, str(exc))

        client_key = None
        if query.confidential:
            client_key = PublicKey.from_bytes(auth.public_key)

        attestations: list[Attestation] = []
        result_envelope = b""
        for org, peer_id in selection:
            identity = self._attesting_identity(peer_id)
            if peer_id == self._network.notary.identity.id:
                # The notary attests over the proposing node's view.
                source_node = self._network.nodes[0]
            else:
                source_node = self._network.node(identity.name)
            try:
                plaintext = handler(source_node, list(query.args))
            except ReproError as exc:
                return self._error(query, f"node {peer_id!r} query failed: {exc}")
            envelope = self._port.seal(plaintext, client_key, query.confidential)
            attestations.append(
                self._scheme.generate_attestation(
                    peer_identity=identity,
                    network=self.network_id,
                    address=address,
                    args=list(query.args),
                    nonce=query.nonce,
                    result_envelope=envelope,
                    client_key=client_key,
                    confidential=query.confidential,
                    timestamp=self._network.clock.now(),
                )
            )
            if not result_envelope:
                result_envelope = envelope

        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response.result_cipher = result_envelope
        else:
            response.result_plain = result_envelope
        return response

    # -- transaction capability ---------------------------------------------------

    def execute_transaction(self, query: NetworkQuery) -> QueryResponse:
        """Run one remote invocation through a registered flow (§5).

        The flow executes on the designated invoker node after the same
        exposure/authentication gate as queries; the attestations cover
        the finalized outcome — transaction id plus notarization order —
        and every attesting node (or the notary) confirms the transaction
        is in its *own* history before signing, mirroring the Fabric
        driver's per-replica commit check.
        """
        if not self.supports_transactions or self._invoker_node is None:
            return self._error(
                query,
                f"corda network {self.network_id!r} has no transaction "
                f"capability enabled",
            )
        address_msg = query.address
        if address_msg is None:
            return self._error(query, "transaction request has no address")
        address = CrossNetworkAddress(
            network=address_msg.network.removesuffix("#tx"),
            ledger=address_msg.ledger,
            contract=address_msg.contract,
            function=address_msg.function,
        )
        flow = self._flows.get((address.contract, address.function))
        if flow is None:
            return self._error(
                query,
                f"corda network {self.network_id!r} serves no flow "
                f"{address.contract}/{address.function}",
            )
        try:
            policy = parse_verification_policy(query.policy.expression)
        except (PolicyError, AttributeError) as exc:
            return self._error(query, f"malformed verification policy: {exc}")

        auth = query.auth
        try:
            creator = (
                Certificate.from_bytes(auth.certificate)
                if auth and auth.certificate
                else None
            )
            self._port.check_access(
                auth.requesting_network if auth else "",
                auth.requesting_org if auth else "",
                address.contract,
                address.function,
                creator,
            )
        except AccessDeniedError as exc:
            return self._denied(query, str(exc))
        except ReproError as exc:
            return self._error(query, str(exc))

        available = [
            (node.org, node.identity.id) for node in self._network.nodes
        ]
        available.append(
            (self._network.notary.identity.org, self._network.notary.identity.id)
        )
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query,
                f"policy {policy.expression()} cannot be satisfied by corda "
                f"network {self.network_id!r}",
            )

        invoker = self._network.node(self._invoker_node)
        try:
            result, transaction = flow(self._network, invoker, list(query.args))
        except ReproError as exc:
            return self._error(query, f"source transaction failed: {exc}")

        client_key = None
        if query.confidential:
            client_key = PublicKey.from_bytes(auth.public_key)
        outcome = canonical_json(
            {
                "result": result.hex(),
                "tx_id": transaction.tx_id,
                "block_number": self._network.sequence_of(transaction.tx_id),
                "validation_code": "VALID",
            }
        )
        envelope = seal_result(outcome, client_key, query.confidential)
        attestations: list[Attestation] = []
        for org, peer_id in selection:
            identity = self._attesting_identity(peer_id)
            if peer_id == self._network.notary.identity.id:
                # The notary attests over the network-wide record it
                # itself imposed the finality order on.
                committed = transaction.tx_id in self._network.transactions
            else:
                committed = (
                    transaction.tx_id
                    in self._network.node(identity.name).transactions
                )
            if not committed:
                return self._error(
                    query,
                    f"node {peer_id!r} has not finalized {transaction.tx_id!r}",
                )
            attestations.append(
                self._scheme.generate_attestation(
                    peer_identity=identity,
                    network=self.network_id,
                    address=address,
                    args=list(query.args),
                    nonce=query.nonce,
                    result_envelope=envelope,
                    client_key=client_key,
                    confidential=query.confidential,
                    timestamp=self._network.clock.now(),
                )
            )
        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response.result_cipher = envelope
        else:
            response.result_plain = envelope
        return response

    # -- event capability ---------------------------------------------------------

    def _check_event_exposure(
        self, request: EventSubscribeRequest, contract: str, event_name: str
    ) -> None:
        """Gate a subscription on the port's ``event:<name>`` rule objects."""
        auth = request.auth
        creator = (
            Certificate.from_bytes(auth.certificate)
            if auth and auth.certificate
            else None
        )
        denial: AccessDeniedError | None = None
        for rule_object in (f"event:{event_name}", "event:*"):
            try:
                self._port.check_access(
                    auth.requesting_network if auth else "",
                    auth.requesting_org if auth else "",
                    contract,
                    rule_object,
                    creator,
                )
                return
            except AccessDeniedError as exc:
                denial = exc
        raise denial if denial is not None else AccessDeniedError(
            "event subscription carries no authentication"
        )

    def open_event_tap(self, request, listener):
        """Exposure-check and tap network finality (§2 primitive iii).

        Every notarized transaction whose command matches the subscribed
        event name is normalized into a wire-shape notification: the
        payload is the first output state's linear id (the stable handle a
        subscriber feeds into its follow-up proof-carrying ``GetState``
        query), the block number its notarization order.
        """
        if not self.supports_events:
            from repro.errors import UnsupportedCapabilityError

            raise UnsupportedCapabilityError(
                f"corda network {self.network_id!r} has no event capability "
                f"enabled"
            )
        address = request.address
        contract = address.contract if address else ""
        event_name = request.event_name
        self._check_event_exposure(request, contract, event_name)
        tap = CordaEventTap(
            network_id=self.network_id, contract=contract, event_name=event_name
        )

        def _observe(transaction: CordaTransaction) -> None:
            if not tap.active:
                return
            if event_name not in ("*", transaction.command):
                return
            payload = (
                transaction.outputs[0].linear_id.encode("utf-8")
                if transaction.outputs
                else b""
            )
            tap.delivered += 1
            listener(
                RemoteEventNotification(
                    source_network=self.network_id,
                    chaincode=contract,
                    name=transaction.command,
                    payload=payload,
                    block_number=self._network.sequence_of(transaction.tx_id),
                    tx_id=transaction.tx_id,
                )
            )

        self._network.add_transaction_observer(_observe)
        tap.detach = lambda: self._network.remove_transaction_observer(_observe)
        return tap

    def close_event_tap(self, tap) -> None:
        tap.close()
