"""Corda driver: the network-neutral protocol against a Corda-like network.

Queries address states in node vaults; proofs are attestations from the
nodes the verification policy selects — which may include the notary, as
§5 anticipates ("a verification policy can be specified to include
signatures from notaries").
"""

from __future__ import annotations

import json
from typing import Callable

from repro.corda.network import CordaNetwork
from repro.corda.node import CordaNode
from repro.crypto.certs import Certificate
from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, PolicyError, ReproError
from repro.interop.contracts.ports import InteropPort
from repro.interop.drivers.base import NetworkDriver
from repro.interop.policy import parse_verification_policy
from repro.interop.proofs import AttestationProofScheme
from repro.proto.address import CrossNetworkAddress
from repro.proto.messages import (
    PROTOCOL_VERSION,
    STATUS_OK,
    Attestation,
    NetworkQuery,
    QueryResponse,
)

# A query handler resolves (node, args) -> plaintext result bytes.
QueryHandler = Callable[[CordaNode, list[str]], bytes]


def default_vault_query(node: CordaNode, args: list[str]) -> bytes:
    """Built-in handler ``vault/GetState``: fetch a state by linear id."""
    if len(args) != 1:
        raise ReproError("GetState expects exactly one argument (linear_id)")
    _, state = node.lookup(args[0])
    return json.dumps(
        {"linear_id": state.linear_id, "kind": state.kind, "data": state.data},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


class CordaDriver(NetworkDriver):
    """Drives queries against an in-process :class:`CordaNetwork`."""

    platform = "corda"

    def __init__(self, network: CordaNetwork, port: InteropPort) -> None:
        super().__init__(network.name)
        self._network = network
        self._port = port
        self._scheme = AttestationProofScheme()
        self._handlers: dict[tuple[str, str], QueryHandler] = {
            ("vault", "GetState"): default_vault_query,
        }

    def register_handler(
        self, contract: str, function: str, handler: QueryHandler
    ) -> None:
        self._handlers[(contract, function)] = handler

    def _attesting_identity(self, peer_id: str):
        if peer_id == self._network.notary.identity.id:
            return self._network.notary.identity
        return self._network.node(peer_id.split(".", 1)[0]).identity

    def execute_query(self, query: NetworkQuery) -> QueryResponse:
        address_msg = query.address
        if address_msg is None:
            return self._error(query, "query has no address")
        address = CrossNetworkAddress(
            network=address_msg.network,
            ledger=address_msg.ledger,
            contract=address_msg.contract,
            function=address_msg.function,
        )
        handler = self._handlers.get((address.contract, address.function))
        if handler is None:
            return self._error(
                query,
                f"corda network {self.network_id!r} serves no query "
                f"{address.contract}/{address.function}",
            )
        try:
            policy = parse_verification_policy(query.policy.expression)
        except (PolicyError, AttributeError) as exc:
            return self._error(query, f"malformed verification policy: {exc}")

        available = [
            (node.org, node.identity.id) for node in self._network.nodes
        ]
        available.append(
            (self._network.notary.identity.org, self._network.notary.identity.id)
        )
        selection = policy.select_attesters(available)
        if selection is None:
            return self._error(
                query,
                f"policy {policy.expression()} cannot be satisfied by corda "
                f"network {self.network_id!r}",
            )

        auth = query.auth
        try:
            creator = (
                Certificate.from_bytes(auth.certificate)
                if auth and auth.certificate
                else None
            )
            self._port.check_access(
                auth.requesting_network if auth else "",
                auth.requesting_org if auth else "",
                address.contract,
                address.function,
                creator,
            )
        except AccessDeniedError as exc:
            return self._denied(query, str(exc))
        except ReproError as exc:
            return self._error(query, str(exc))

        client_key = None
        if query.confidential:
            client_key = PublicKey.from_bytes(auth.public_key)

        attestations: list[Attestation] = []
        result_envelope = b""
        for org, peer_id in selection:
            identity = self._attesting_identity(peer_id)
            if peer_id == self._network.notary.identity.id:
                # The notary attests over the proposing node's view.
                source_node = self._network.nodes[0]
            else:
                source_node = self._network.node(identity.name)
            try:
                plaintext = handler(source_node, list(query.args))
            except ReproError as exc:
                return self._error(query, f"node {peer_id!r} query failed: {exc}")
            envelope = self._port.seal(plaintext, client_key, query.confidential)
            attestations.append(
                self._scheme.generate_attestation(
                    peer_identity=identity,
                    network=self.network_id,
                    address=address,
                    args=list(query.args),
                    nonce=query.nonce,
                    result_envelope=envelope,
                    client_key=client_key,
                    confidential=query.confidential,
                    timestamp=self._network.clock.now(),
                )
            )
            if not result_envelope:
                result_envelope = envelope

        response = QueryResponse(
            version=PROTOCOL_VERSION,
            nonce=query.nonce,
            status=STATUS_OK,
            attestations=attestations,
        )
        if query.confidential:
            response.result_cipher = result_envelope
        else:
            response.result_plain = result_envelope
        return response
