"""Pluggable network drivers.

"The relay also includes a set of pluggable network drivers that
translates the network-neutral protocol messages into calls to the
underlying network implementation" (§3.2). One driver per platform:

- :class:`~repro.interop.drivers.fabric_driver.FabricDriver`
- :class:`~repro.interop.drivers.corda_driver.CordaDriver`
- :class:`~repro.interop.drivers.quorum_driver.QuorumDriver`
"""

from repro.interop.drivers.base import NetworkDriver

__all__ = ["NetworkDriver"]
