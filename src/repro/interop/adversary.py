"""Deprecated location of the threat-model harness.

The adversarial endpoint/peer wrappers moved to
:mod:`repro.testing.adversary` (alongside the deterministic
fault-injection and conformance machinery of :mod:`repro.testing`).
This shim keeps the old import path working; new code should import from
``repro.testing``.
"""

from __future__ import annotations

import warnings

from repro.testing.adversary import (  # noqa: F401 - re-exports
    TAMPER_BOTH,
    TAMPER_PROOF,
    TAMPER_RESULT,
    ByzantinePeerProxy,
    CapturedExchange,
    DroppingRelay,
    EavesdroppingRelay,
    FloodReport,
    TamperingRelay,
    corrupt_network_peer,
    flip_bytes,
    flood_relay,
    restore_network_peer,
)

# Kept for callers that reached into the old private helper.
_flip_bytes = flip_bytes

warnings.warn(
    "repro.interop.adversary has moved to repro.testing.adversary; "
    "import the attack wrappers from repro.testing instead",
    DeprecationWarning,
    stacklevel=2,
)
